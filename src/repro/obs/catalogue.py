"""The instrument catalogue: every metric the library may emit.

One central, literal declaration per instrument keeps the telemetry
surface reviewable (docs/observability.md renders this table) and makes
it machine-checkable: the OBS001 lint rule parses this module's
``INSTRUMENTS`` dict and rejects any ``counter("...")`` / ``gauge("...")``
/ ``histogram("...")`` emit site whose literal name is not declared here.
The registry enforces the same membership at runtime.

Units follow the paper's currency: ``blocks`` are block-level accesses,
``seconds`` are cost-model seconds (counted accesses weighted with the
Sec. 6.1 access times), never wall-clock time.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["InstrumentSpec", "INSTRUMENTS", "SPANS", "COUNT_BUCKETS", "SECONDS_BUCKETS"]


class InstrumentSpec(NamedTuple):
    kind: str  # "counter" | "gauge" | "histogram"
    description: str
    unit: str = ""


#: Bucket boundaries for count-valued histograms (|C|, Psi, blocks).
COUNT_BUCKETS: tuple[float, ...] = (
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
)

#: Bucket boundaries for cost-model-second histograms.
SECONDS_BUCKETS: tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0,
)


INSTRUMENTS: dict[str, InstrumentSpec] = {
    # -- maintenance lifecycle (SampleMaintainer, baselines) ----------------
    "maintenance.inserts": InstrumentSpec(
        "counter", "insertions processed by the maintenance front door"
    ),
    "maintenance.accepted": InstrumentSpec(
        "counter", "acceptance tests that admitted the element as a candidate"
    ),
    "maintenance.rejected": InstrumentSpec(
        "counter", "acceptance tests that discarded the element"
    ),
    "maintenance.inserts_skipped": InstrumentSpec(
        "counter",
        "elements the skip-based batch path rejected without per-element "
        "work (batch path only; scalar inserts leave it at zero)",
    ),
    "maintenance.refreshes": InstrumentSpec(
        "counter", "deferred refresh cycles completed"
    ),
    "maintenance.displaced": InstrumentSpec(
        "counter", "sample elements overwritten by final candidates (sum of Psi)"
    ),
    # -- staleness / candidate-log growth -----------------------------------
    "sample.pending_log_elements": InstrumentSpec(
        "gauge", "logged elements not yet folded into the sample (staleness)",
        "elements",
    ),
    "log.appended_elements": InstrumentSpec(
        "counter", "elements appended to the log across all generations",
        "elements",
    ),
    "log.blocks": InstrumentSpec(
        "gauge", "blocks the current log generation occupies", "blocks"
    ),
    # -- refresh outcomes ----------------------------------------------------
    "refresh.candidates": InstrumentSpec(
        "histogram", "candidate count |C| per refresh", "elements"
    ),
    "refresh.displaced": InstrumentSpec(
        "histogram", "displaced count Psi per refresh", "elements"
    ),
    "refresh.cost_seconds": InstrumentSpec(
        "histogram", "cost-model seconds per refresh cycle", "seconds"
    ),
    # -- per-device access telemetry ----------------------------------------
    "device.accesses": InstrumentSpec(
        "counter",
        "block accesses, labelled device= kind=read|write pattern=seq|random",
        "blocks",
    ),
    "device.crashes": InstrumentSpec(
        "counter", "injected crashes fired, labelled device=", "crashes"
    ),
    # -- buffer-pool page cache (repro.storage.bufferpool) -------------------
    "storage.pool.hits": InstrumentSpec(
        "counter", "charged reads served from a resident frame, labelled device=",
        "blocks",
    ),
    "storage.pool.misses": InstrumentSpec(
        "counter", "charged reads that went to the device, labelled device=",
        "blocks",
    ),
    "storage.pool.readahead_blocks": InstrumentSpec(
        "counter",
        "blocks prefetched inside a declared scan window, labelled device=",
        "blocks",
    ),
    "storage.pool.evictions": InstrumentSpec(
        "counter", "frames evicted to make room (LRU), labelled device=", "blocks"
    ),
    "storage.pool.flushed_blocks": InstrumentSpec(
        "counter",
        "dirty frames written back at a flush barrier or eviction, "
        "labelled device=",
        "blocks",
    ),
    "storage.pool.coalesced_writes": InstrumentSpec(
        "counter",
        "buffered writes absorbed by an already-dirty frame, labelled device=",
        "blocks",
    ),
    # -- geometric-file baseline --------------------------------------------
    "gf.flushes": InstrumentSpec(
        "counter", "geometric-file buffer flushes (segment creations)"
    ),
    "gf.buffered_elements": InstrumentSpec(
        "gauge", "candidates held in the geometric file's in-memory buffer",
        "elements",
    ),
    # -- serving layer (repro.serve) ----------------------------------------
    "serve.queries": InstrumentSpec(
        "counter", "queries admitted and answered by the sample server"
    ),
    "serve.shed": InstrumentSpec(
        "counter", "queries rejected by admission control (backpressure)"
    ),
    "serve.deferred": InstrumentSpec(
        "counter", "queries deferred past the operation holding the device"
    ),
    "serve.refresh_jobs": InstrumentSpec(
        "counter", "refresh jobs executed by the deterministic scheduler"
    ),
    "serve.forced_refreshes": InstrumentSpec(
        "counter",
        "refreshes forced on the read path by bounded_staleness/refresh_on_read",
    ),
    "serve.ingest_batches": InstrumentSpec(
        "counter", "ingest batches applied to the catalog by the scheduler"
    ),
    "serve.query_latency_seconds": InstrumentSpec(
        "histogram",
        "cost-model seconds from query arrival to answer (wait + service)",
        "seconds",
    ),
    "serve.query_staleness": InstrumentSpec(
        "histogram",
        "pending log elements of the target sample at answer time",
        "elements",
    ),
    "serve.queue_depth": InstrumentSpec(
        "gauge", "events waiting behind the device at the last admission check"
    ),
    "serve.catalog_samples": InstrumentSpec(
        "gauge", "samples registered in the serving catalog"
    ),
    # -- replication link + replica site (repro.replication) ----------------
    "replication.lag_seconds": InstrumentSpec(
        "gauge",
        "cost-seconds the last shipped commit batch waited in the outbox",
        "seconds",
    ),
    "replication.shipped_batches": InstrumentSpec(
        "counter", "commit batches shipped to the replica"
    ),
    "replication.shipped_bytes": InstrumentSpec(
        "counter", "block payload bytes shipped to the replica", "bytes"
    ),
    "replication.backlog_batches": InstrumentSpec(
        "gauge", "sealed commit batches waiting in the primary's outbox"
    ),
    # -- sharded fleet catalog (repro.fleet) ---------------------------------
    "fleet.shards": InstrumentSpec(
        "gauge", "shards on the fleet's placement ring"
    ),
    "fleet.quota_admitted": InstrumentSpec(
        "counter", "requests admitted by a front-door tenant token bucket"
    ),
    "fleet.quota_shed": InstrumentSpec(
        "counter", "requests shed at the front door by tenant quotas"
    ),
    "fleet.fanout_queries": InstrumentSpec(
        "counter", "cross-shard fan-out queries presented to the router"
    ),
    "fleet.fanout_subqueries": InstrumentSpec(
        "counter", "per-shard sub-queries dispatched for fan-out queries"
    ),
    "fleet.hedges_issued": InstrumentSpec(
        "counter", "sub-queries past the hedge deadline (hedged re-read issued)"
    ),
    "fleet.hedges_won": InstrumentSpec(
        "counter", "hedged re-reads that beat the straggler's completion"
    ),
    "fleet.straggler_latency_seconds": InstrumentSpec(
        "histogram",
        "slowest-shard (pre-hedge) latency of each answered fan-out query",
        "seconds",
    ),
    # -- vectorised experiment engine ---------------------------------------
    "engine.candidates": InstrumentSpec(
        "counter", "candidates realised by the vectorised engine", "elements"
    ),
    "engine.refreshes": InstrumentSpec(
        "counter", "refresh periods simulated by the vectorised engine"
    ),
    "engine.online_seconds": InstrumentSpec(
        "gauge", "simulated online cost of the last engine run", "seconds"
    ),
    "engine.offline_seconds": InstrumentSpec(
        "gauge", "simulated offline cost of the last engine run", "seconds"
    ),
}


#: The trace-span catalogue: every span name the library may open.
#:
#: Like ``INSTRUMENTS``, this is one central literal declaration so the
#: tracing surface stays reviewable and machine-checkable: OBS001 parses
#: this dict and rejects any ``span("...")`` / ``maybe_span(obs, "...")``
#: site under serve/ or storage/ whose literal name is not declared here.
#: Parent-child relationships are recorded per span instance (span_id /
#: parent_id), not here -- the same span name can appear under different
#: parents (e.g. ``refresh`` under ``serve.refresh_job`` vs.
#: ``session.refresh_forced``).
SPANS: dict[str, str] = {
    # -- maintenance core (repro.core.maintenance, baselines) ---------------
    "insert": "one scalar insertion through the maintenance front door",
    "batch_insert": "one skip-based batch insertion (attrs: offered)",
    "insert.sample_write": "sample-slot overwrite during immediate refresh",
    "insert.log_append": "candidate append to the current log generation",
    "refresh": "one deferred refresh cycle (attrs: candidates, displaced)",
    "refresh.log_flush": "log flush/truncate at the end of a refresh",
    "refresh.precompute": "offline precompute phase of a refresh",
    "refresh.write": "sequential write pass of a refresh",
    "gf.flush": "geometric-file buffer flush (segment creation)",
    "maintenance.checkpoint": "durable checkpoint capture of maintainer state",
    # -- serving layer (repro.serve) ----------------------------------------
    "serve.event": "one scheduler event, root of the per-request trace tree",
    "serve.admit": "admission-control decision for a query arrival",
    "serve.ingest": "ingest batch applied to a catalog sample",
    "serve.query": "admitted query from dispatch to answer",
    "serve.shed": "query rejected by admission control",
    "serve.refresh_job": "background refresh job run by the scheduler",
    "session.read": "QuerySession read path (freshness check + scan + estimate)",
    "session.refresh_forced": "refresh forced on the read path by a contract",
    "session.scan": "full sample scan feeding the estimator",
    # -- sharded fleet catalog (repro.fleet) ---------------------------------
    "fleet.place": "consistent-hash placement of the catalog onto shards",
    "fleet.shard_run": "one shard's full scheduler run (attrs: shard, events)",
    "fleet.fanout": "one fan-out query's merge (attrs: width, status, straggler)",
    # -- replication (repro.replication) -------------------------------------
    "replication.ship": "one commit batch shipped to the replica (attrs: lag)",
    "replication.apply": "one commit batch replayed onto replica devices",
    # -- storage engine (repro.storage), deep-trace mode only ----------------
    "storage.pool.read": "buffer-pool read (attrs: hit) -- trace_storage only",
    "storage.pool.write": "buffer-pool buffered write -- trace_storage only",
    "storage.pool.flush": "buffer-pool flush barrier -- trace_storage only",
    "storage.device.read": "block-device read charge -- trace_storage only",
    "storage.device.write": "block-device write charge -- trace_storage only",
    "storage.group_commit": (
        "multi-device group commit barrier (flush + replication seal) -- "
        "trace_storage only"
    ),
}
