"""Instrument primitives: counters, gauges and histograms.

Instruments are pure in-memory accumulators: recording never touches a
block device or a cost model, which is what makes instrumentation
side-effect-free with respect to the paper's block-access accounting
(the "zero-overhead" property the integration tests pin down).

Instrument *names* are lowercase dotted identifiers (``maintenance.inserts``)
declared centrally in :mod:`repro.obs.catalogue`; the OBS001 lint rule
rejects emit sites that invent names outside the catalogue.  *Labels*
(``device="sample"``, ``pattern="random"``) distinguish streams of the
same instrument, mirroring how the paper keys its access tables by
device and access pattern.
"""

from __future__ import annotations

import re
from typing import Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "DEFAULT_BUCKETS",
    "INSTRUMENT_NAME_RE",
    "validate_instrument_name",
    "canonical_labels",
]

#: Lowercase dotted identifier with at least two segments.
INSTRUMENT_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Default histogram buckets, tuned for cost-model seconds (the dominant
#: observed quantity); counts-valued histograms pass their own boundaries.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0,
)


def validate_instrument_name(name: str) -> str:
    """Return *name* if it is a valid instrument name, else raise."""
    if not INSTRUMENT_NAME_RE.match(name):
        raise ValueError(
            f"instrument name {name!r} must be a lowercase dotted identifier "
            "(e.g. 'maintenance.inserts')"
        )
    return name


def canonical_labels(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    """Normalise a label mapping to a hashable, sorted tuple of pairs."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Instrument:
    """Base: a named, optionally labelled accumulator."""

    kind = "instrument"

    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: Mapping[str, str] | None = None) -> None:
        self.name = validate_instrument_name(name)
        self.labels = canonical_labels(labels)

    @property
    def key(self) -> tuple[str, tuple[tuple[str, str], ...]]:
        return (self.name, self.labels)

    def __repr__(self) -> str:
        labels = ", ".join(f"{k}={v!r}" for k, v in self.labels)
        return f"{type(self).__name__}({self.name!r}{', ' + labels if labels else ''})"


class Counter(Instrument):
    """Monotonically increasing count (inserts, accesses, crashes)."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, name: str, labels: Mapping[str, str] | None = None) -> None:
        super().__init__(name, labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        self.value += amount

    def restore(self, value: int) -> None:
        """Reset the running total, e.g. when resuming from a checkpoint.

        This is the one sanctioned non-monotonic mutation: recovery
        re-establishes the pre-crash totals so post-recovery series
        continue where the crashed process stopped.
        """
        if value < 0:
            raise ValueError("counter value must be non-negative")
        self.value = value


class Gauge(Instrument):
    """Point-in-time value (pending log elements, buffered candidates)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self, name: str, labels: Mapping[str, str] | None = None) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram(Instrument):
    """Distribution with fixed bucket boundaries (phase costs, |C|, Psi).

    ``bucket_counts[i]`` counts observations ``<= boundaries[i]``
    (cumulative, Prometheus-style); one implicit ``+Inf`` bucket equals
    ``count``.
    """

    kind = "histogram"

    __slots__ = ("boundaries", "bucket_counts", "count", "sum")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        boundaries = tuple(float(b) for b in buckets)
        if not boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        if list(boundaries) != sorted(boundaries):
            raise ValueError("bucket boundaries must be sorted ascending")
        self.boundaries = boundaries
        self.bucket_counts = [0] * len(boundaries)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        for idx, bound in enumerate(self.boundaries):
            if value <= bound:
                self.bucket_counts[idx] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0
