"""SLO engine: freshness contracts and targets as error budgets.

The serve layer enforces freshness contracts mechanically (a
``bounded_staleness:k`` query triggers a refresh rather than answer
over-bound), but enforcement alone hides *margin*: an operator needs to
know whether the contract was comfortably met or the system spent its
whole error budget shedding load to keep it.  This module turns declared
objectives into budgets with burn-rate accounting, entirely in
cost-model arithmetic:

* ``latency:T:O`` -- fraction of answered queries with cost-clock
  latency <= ``T`` seconds must be at least ``O``;
* ``staleness:K:O`` -- fraction of answered queries observing staleness
  <= ``K`` rows must be at least ``O``;
* ``shed_rate:C`` -- at most fraction ``C`` of query arrivals may be
  shed (an availability objective: compliance is the admission rate);
* ``freshness`` (always on) -- zero-budget contract check that no
  bounded query was ever answered over its own declared bound.  The
  serve layer makes violations impossible by construction, so this
  objective doubles as an invariant monitor: any consumption signals a
  scheduler bug, not an operational incident.

The error budget for an objective ``O`` over ``n`` events is
``(1 - O) * n`` events; burn rate is consumed/budget (``None`` when the
budget is zero, i.e. the objective tolerates nothing).  All summaries
use sorted keys and pre-rounded floats, so the report's ``slo`` section
is byte-identical across same-seed runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["SLO", "SLOTracker", "parse_slos"]

_KINDS = ("latency", "staleness", "shed_rate", "freshness")


def _round(value: float, digits: int = 9) -> float:
    return round(value, digits)


@dataclass(frozen=True)
class SLO:
    """One declared objective.

    ``threshold`` is the per-event pass condition (seconds for latency,
    rows for staleness, unused for shed_rate/freshness); ``objective``
    is the required compliant fraction.
    """

    kind: str
    threshold: float = 0.0
    objective: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r} (expected one of {_KINDS})"
            )
        if not 0.0 <= self.objective <= 1.0:
            raise ValueError(f"SLO objective must be in [0, 1]: {self.objective}")
        if self.threshold < 0:
            raise ValueError(f"SLO threshold must be >= 0: {self.threshold}")

    @property
    def name(self) -> str:
        if self.kind == "latency":
            return f"latency:{self.threshold:g}:{self.objective:g}"
        if self.kind == "staleness":
            return f"staleness:{self.threshold:g}:{self.objective:g}"
        if self.kind == "shed_rate":
            return f"shed_rate:{self.threshold:g}"
        return "freshness"

    @classmethod
    def parse(cls, spec: str) -> "SLO":
        """Parse a CLI spec: ``latency:0.05:0.99``, ``staleness:256:0.95``,
        ``shed_rate:0.01``, or ``freshness``."""
        parts = spec.split(":")
        kind = parts[0]
        try:
            if kind in ("latency", "staleness"):
                if len(parts) != 3:
                    raise ValueError
                return cls(kind=kind, threshold=float(parts[1]), objective=float(parts[2]))
            if kind == "shed_rate":
                if len(parts) != 2:
                    raise ValueError
                ceiling = float(parts[1])
                return cls(kind=kind, threshold=ceiling, objective=1.0 - ceiling)
            if kind == "freshness":
                if len(parts) != 1:
                    raise ValueError
                return cls(kind=kind, objective=1.0)
        except ValueError:
            pass
        raise ValueError(
            f"bad SLO spec {spec!r} (expected latency:SECONDS:OBJECTIVE, "
            "staleness:ROWS:OBJECTIVE, shed_rate:CEILING, or freshness)"
        )


def parse_slos(specs: list[str] | tuple[str, ...]) -> list[SLO]:
    """Parse CLI specs, appending the always-on freshness contract check."""
    slos = [SLO.parse(spec) for spec in specs]
    if not any(s.kind == "freshness" for s in slos):
        slos.append(SLO(kind="freshness"))
    return slos


class _Ledger:
    """Event/violation counts for one objective, optionally per window."""

    def __init__(self, interval: float) -> None:
        self.interval = interval
        self.events = 0
        self.violations = 0
        self._windows: dict[int, list[int]] = {}  # index -> [events, violations]

    def record(self, t: float, violated: bool) -> None:
        self.events += 1
        if violated:
            self.violations += 1
        if self.interval > 0:
            cell = self._windows.setdefault(int(t // self.interval), [0, 0])
            cell[0] += 1
            if violated:
                cell[1] += 1

    def windows_dict(self, objective: float) -> list[dict[str, Any]]:
        out = []
        for index in sorted(self._windows):
            events, violations = self._windows[index]
            budget = (1.0 - objective) * events
            out.append(
                {
                    "window": index,
                    "start": _round(index * self.interval),
                    "events": events,
                    "violations": violations,
                    "burn_rate": _round(violations / budget) if budget > 0 else None,
                }
            )
        return out


class SLOTracker:
    """Accumulates per-query outcomes against declared objectives.

    The scheduler calls :meth:`record_query` for every answered query
    and :meth:`record_shed` for every shed arrival; :meth:`to_dict`
    renders the ``slo`` report section.  ``window_interval`` > 0 adds
    per-window burn rates on the same grid as the time-series store.
    """

    def __init__(self, slos: list[SLO], window_interval: float = 0.0) -> None:
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO objectives: {names}")
        self._slos = list(slos)
        self._ledgers = {slo.name: _Ledger(window_interval) for slo in slos}

    @property
    def slos(self) -> list[SLO]:
        return list(self._slos)

    def record_query(
        self,
        t: float,
        latency_seconds: float,
        staleness: int,
        bound: int | None,
    ) -> None:
        """One answered query: ``bound`` is the bounded_staleness limit it
        declared, or None for serve_stale (freshness trivially met)."""
        for slo in self._slos:
            ledger = self._ledgers[slo.name]
            if slo.kind == "latency":
                ledger.record(t, latency_seconds > slo.threshold)
            elif slo.kind == "staleness":
                ledger.record(t, staleness > slo.threshold)
            elif slo.kind == "shed_rate":
                ledger.record(t, False)
            elif slo.kind == "freshness":
                ledger.record(t, bound is not None and staleness > bound)

    def record_shed(self, t: float) -> None:
        """One shed arrival: counts against shed_rate objectives only."""
        for slo in self._slos:
            if slo.kind == "shed_rate":
                self._ledgers[slo.name].record(t, True)

    def to_dict(self) -> dict[str, Any]:
        """The report's ``slo`` section: one entry per objective plus a
        rollup ``met`` flag for the gate."""
        objectives: dict[str, Any] = {}
        all_met = True
        for slo in self._slos:
            ledger = self._ledgers[slo.name]
            events = ledger.events
            violations = ledger.violations
            compliance = 1.0 if events == 0 else 1.0 - violations / events
            budget_total = (1.0 - slo.objective) * events
            remaining = budget_total - violations
            met = violations <= budget_total if events else True
            all_met = all_met and met
            entry: dict[str, Any] = {
                "kind": slo.kind,
                "objective": _round(slo.objective),
                "threshold": _round(slo.threshold),
                "events": events,
                "violations": violations,
                "compliance": _round(compliance),
                "error_budget": {
                    "total": _round(budget_total),
                    "consumed": violations,
                    "remaining": _round(remaining),
                },
                "burn_rate": (
                    _round(violations / budget_total) if budget_total > 0 else None
                ),
                "met": met,
            }
            if ledger.interval > 0:
                entry["windows"] = ledger.windows_dict(slo.objective)
            objectives[slo.name] = entry
        return {"met": all_met, "objectives": objectives}
