"""Span files: streaming JSONL export, loading, and tree analysis.

The serve simulator exports every finished span as one JSON line (sorted
keys, floats pre-rounded by :meth:`Span.to_dict`), so two runs from the
same seed produce **byte-identical** trace files.  This module owns both
ends of that artifact:

* :class:`SpanSinkJsonl` -- a tracer sink that writes each span as it
  finishes, independent of the tracer's in-memory retention cap;
* :func:`read_spans_jsonl` -- load a span file back into plain dicts;
* :func:`build_forest` / :func:`self_times` / :func:`critical_path` --
  reconstruct the parent-linked span trees and attribute cost;
* :func:`chrome_trace_dict` -- convert to Chrome trace-event JSON
  (the ``"ph": "X"`` complete-event form), viewable in Perfetto.

All durations remain cost-model seconds; the Chrome export maps them to
microseconds only because the trace-event format requires ``ts``/``dur``
in that unit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Any, Iterable

from repro.obs.trace import Span, Tracer

__all__ = [
    "SpanNode",
    "SpanSinkJsonl",
    "build_forest",
    "chrome_trace_dict",
    "critical_path",
    "read_spans_jsonl",
    "self_times",
    "span_dicts_from_tracer",
    "write_spans_jsonl_stream",
]


class SpanSinkJsonl:
    """Tracer sink writing each finished span as one sorted-key JSON line.

    Attach with ``tracer.add_span_sink(sink)``; every span is written the
    moment it finishes, so the export sees the full run even when the
    tracer's ``max_spans`` retention window has long since rolled over.
    """

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream
        self.count = 0

    def __call__(self, span: Span) -> None:
        self._stream.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        self.count += 1


def span_dicts_from_tracer(tracer: Tracer) -> list[dict[str, Any]]:
    """The tracer's retained spans as plain dicts (oldest first)."""
    return [span.to_dict() for span in tracer.finished]


def write_spans_jsonl_stream(spans: Iterable[dict[str, Any]], stream: IO[str]) -> int:
    """Write span dicts as sorted-key JSONL; returns the line count."""
    count = 0
    for record in spans:
        stream.write(json.dumps(record, sort_keys=True) + "\n")
        count += 1
    return count


def read_spans_jsonl(stream: IO[str]) -> list[dict[str, Any]]:
    """Load a spans JSONL file (blank lines tolerated) into dicts."""
    spans: list[dict[str, Any]] = []
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON: {exc}") from exc
        if not isinstance(record, dict) or "span" not in record:
            raise ValueError(f"line {lineno}: not a span record")
        spans.append(record)
    return spans


@dataclass
class SpanNode:
    """One span dict plus its resolved children, ordered by start time."""

    record: dict[str, Any]
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return str(self.record.get("span", ""))

    @property
    def span_id(self) -> int:
        return int(self.record.get("span_id", 0))

    @property
    def trace_id(self) -> str | None:
        value = self.record.get("trace_id")
        return None if value is None else str(value)

    @property
    def start(self) -> float:
        return float(self.record.get("start", 0.0))

    @property
    def duration(self) -> float:
        return float(self.record.get("cost_seconds", 0.0))

    @property
    def self_time(self) -> float:
        """Duration minus children's durations, floored at zero.

        The floor absorbs rounding: child durations are independently
        rounded to 9 decimals, so their sum can exceed the parent's
        rounded duration by an ulp.
        """
        return max(0.0, self.duration - sum(c.duration for c in self.children))


def build_forest(spans: list[dict[str, Any]]) -> list[SpanNode]:
    """Reconstruct parent-linked span trees; returns roots in start order.

    A span whose ``parent_id`` is missing from the file (e.g. the parent
    fell outside a truncated export) becomes a root rather than being
    dropped, so partial traces still render.
    """
    nodes = {int(s["span_id"]): SpanNode(record=s) for s in spans if "span_id" in s}
    roots: list[SpanNode] = []
    for span in spans:
        if "span_id" not in span:
            roots.append(SpanNode(record=span))
            continue
        node = nodes[int(span["span_id"])]
        parent_id = span.get("parent_id")
        parent = nodes.get(int(parent_id)) if parent_id is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda c: (c.start, c.span_id))
    roots.sort(key=lambda r: (r.start, r.span_id))
    return roots


def _walk(roots: list[SpanNode]) -> Iterable[SpanNode]:
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def self_times(roots: list[SpanNode]) -> dict[str, dict[str, float]]:
    """Aggregate per-span-name totals: count, total duration, self time."""
    totals: dict[str, dict[str, float]] = {}
    for node in _walk(roots):
        entry = totals.setdefault(
            node.name, {"count": 0, "cost_seconds": 0.0, "self_seconds": 0.0}
        )
        entry["count"] += 1
        entry["cost_seconds"] += node.duration
        entry["self_seconds"] += node.self_time
    return totals


def critical_path(root: SpanNode) -> list[SpanNode]:
    """The chain of maximum-duration children from ``root`` to a leaf.

    In the single-server cost model children execute sequentially, so
    the longest child *is* the step that dominated the request: the path
    tells you where a slow query's cost-clock time actually went.
    """
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda c: (c.duration, -c.span_id))
        path.append(node)
    return path


def chrome_trace_dict(spans: list[dict[str, Any]]) -> dict[str, Any]:
    """Convert span dicts to Chrome trace-event JSON (Perfetto-viewable).

    Each span becomes a complete event (``"ph": "X"``) with ``ts``/``dur``
    in microseconds of cost-clock time.  Spans sharing a ``trace_id``
    share a ``tid`` lane (assigned in first-seen order) so one query's
    waterfall reads as one track; context-free spans land on lane 0.
    """
    lanes: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for span in spans:
        trace_id = span.get("trace_id")
        if trace_id is None:
            tid = 0
        else:
            tid = lanes.setdefault(str(trace_id), len(lanes) + 1)
        args = {
            k: v
            for k, v in span.items()
            if k not in ("span", "parent", "start", "cost_seconds")
        }
        events.append(
            {
                "name": str(span.get("span", "")),
                "ph": "X",
                "ts": round(float(span.get("start", 0.0)) * 1e6, 3),
                "dur": round(float(span.get("cost_seconds", 0.0)) * 1e6, 3),
                "pid": 0,
                "tid": tid,
                "cat": "cost",
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
