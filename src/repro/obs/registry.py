"""The metrics registry: named instruments, created once, shared by key.

``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` are
create-or-get: the first call for a ``(name, labels)`` pair creates the
instrument, later calls return the same object, so hot paths can cache
the instrument and pay one attribute increment per event.

By default the registry is *strict*: names must appear in the
:mod:`repro.obs.catalogue` (the same invariant OBS001 enforces
statically at emit sites).  ``MetricsRegistry(strict=False)`` lifts the
membership check -- shape validation always applies -- for scratch
registries in tests and exploratory tooling.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.obs.catalogue import INSTRUMENTS
from repro.obs.instruments import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    Instrument,
    canonical_labels,
    validate_instrument_name,
)

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Holds every live instrument, keyed by ``(name, labels)``."""

    def __init__(self, strict: bool = True) -> None:
        self._strict = strict
        self._instruments: dict[tuple, Instrument] = {}

    # -- factories ---------------------------------------------------------

    def counter(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Counter:
        return self._get_or_create(Counter, "counter", name, labels)

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        return self._get_or_create(Gauge, "gauge", name, labels)

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        key = (validate_instrument_name(name), canonical_labels(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            self._check_kind(existing, "histogram")
            return existing  # type: ignore[return-value]
        self._check_catalogue(name, "histogram")
        instrument = Histogram(name, labels, buckets=buckets)
        self._instruments[key] = instrument
        return instrument

    # -- introspection -----------------------------------------------------

    def get(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Instrument | None:
        """The live instrument for ``(name, labels)``, or None."""
        return self._instruments.get((name, canonical_labels(labels)))

    def __iter__(self) -> Iterator[Instrument]:
        return iter(sorted(self._instruments.values(), key=lambda i: i.key))

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict:
        """JSON-ready view of every instrument's current state."""
        out: list[dict] = []
        for instrument in self:
            entry: dict = {
                "name": instrument.name,
                "kind": instrument.kind,
                "labels": dict(instrument.labels),
            }
            if isinstance(instrument, Histogram):
                entry["count"] = instrument.count
                entry["sum"] = instrument.sum
                entry["buckets"] = {
                    str(bound): count
                    for bound, count in zip(
                        instrument.boundaries, instrument.bucket_counts
                    )
                }
            else:
                entry["value"] = instrument.value
            out.append(entry)
        return {"instruments": out}

    # -- internals ---------------------------------------------------------

    def _get_or_create(
        self, cls, kind: str, name: str, labels: Mapping[str, str] | None
    ):
        key = (validate_instrument_name(name), canonical_labels(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            self._check_kind(existing, kind)
            return existing
        self._check_catalogue(name, kind)
        instrument = cls(name, labels)
        self._instruments[key] = instrument
        return instrument

    def _check_catalogue(self, name: str, kind: str) -> None:
        if not self._strict:
            return
        spec = INSTRUMENTS.get(name)
        if spec is None:
            raise KeyError(
                f"instrument {name!r} is not declared in repro.obs.catalogue "
                "(add it there, or use MetricsRegistry(strict=False))"
            )
        if spec.kind != kind:
            raise TypeError(
                f"instrument {name!r} is catalogued as a {spec.kind}, "
                f"requested as a {kind}"
            )

    @staticmethod
    def _check_kind(existing: Instrument, kind: str) -> None:
        if existing.kind != kind:
            raise TypeError(
                f"instrument {existing.name!r} already exists as a "
                f"{existing.kind}, requested as a {kind}"
            )
