"""The ``repro stats`` subcommand.

Runs one instrumented maintenance cycle (insert window + deferred
refresh) at a configurable small scale and prints the collected
telemetry -- per-phase trace spans in cost-model seconds and block
counts, the instrument snapshot, the per-device sequential/random access
table -- in a choice of formats.  ``--catalogue`` prints the declared
instrument surface instead of running anything.

Self-contained so :mod:`repro.cli` only needs two hooks:
:func:`add_stats_parser` and :func:`run_stats_command`.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.api import Instrumentation
from repro.obs.catalogue import INSTRUMENTS
from repro.obs.exporters import prometheus_text, snapshot_json, write_spans_jsonl

__all__ = [
    "add_stats_parser",
    "print_span_table",
    "run_stats_command",
    "run_instrumented_cycle",
]

_ALGORITHMS = ("array", "stack", "nomem", "naive")
_STRATEGIES = ("candidate", "full", "immediate")


def add_stats_parser(sub: argparse._SubParsersAction) -> argparse.ArgumentParser:
    stats = sub.add_parser(
        "stats",
        help="run one instrumented maintenance cycle and print its telemetry",
        description=(
            "Observability demo and export: runs insert + refresh under the "
            "repro.obs instrumentation layer and prints trace spans "
            "(cost-model seconds, never wall clocks), metrics and per-device "
            "access counts. See docs/observability.md."
        ),
    )
    stats.add_argument(
        "--strategy", default="candidate", choices=_STRATEGIES,
        help="maintenance strategy to run",
    )
    stats.add_argument(
        "--algorithm", default="array", choices=_ALGORITHMS,
        help="deferred refresh algorithm (ignored for strategy=immediate)",
    )
    stats.add_argument("--sample-size", type=int, default=256, help="M")
    stats.add_argument(
        "--inserts", type=int, default=2000, help="insertions before the refresh"
    )
    stats.add_argument("--seed", type=int, default=0, help="random seed")
    stats.add_argument(
        "--trace-inserts", action="store_true",
        help="open a trace span per insert (verbose; off by default)",
    )
    stats.add_argument(
        "--format", default="summary",
        choices=("summary", "json", "prometheus", "spans"),
        help=(
            "summary = human-readable tables, json = full snapshot, "
            "prometheus = text exposition format, spans = one JSON line per span"
        ),
    )
    stats.add_argument(
        "--catalogue", action="store_true",
        help="print the declared instrument catalogue and exit",
    )
    stats.add_argument(
        "--spans-file", metavar="PATH", default=None,
        help=(
            "print the span summary for an exported spans JSONL file "
            "(e.g. from serve-sim --trace) instead of running a cycle"
        ),
    )
    return stats


def run_instrumented_cycle(
    strategy: str = "candidate",
    algorithm: str = "array",
    sample_size: int = 256,
    inserts: int = 2000,
    seed: int = 0,
    trace_inserts: bool = False,
) -> Instrumentation:
    """One maintenance cycle under instrumentation; returns the facade.

    The imports live here (not module level) so ``repro stats --help``
    stays instant and the obs package never hard-depends on core.
    """
    from repro.core.maintenance import SampleMaintainer
    from repro.core.refresh.array import ArrayRefresh
    from repro.core.refresh.naive import NaiveCandidateRefresh
    from repro.core.refresh.nomem import NomemRefresh
    from repro.core.refresh.stack import StackRefresh
    from repro.core.reservoir import build_reservoir
    from repro.rng.random_source import RandomSource
    from repro.storage.block_device import SimulatedBlockDevice
    from repro.storage.cost_model import CostModel
    from repro.storage.files import LogFile, SampleFile
    from repro.storage.records import IntRecordCodec

    algorithms = {
        "array": ArrayRefresh,
        "stack": StackRefresh,
        "nomem": NomemRefresh,
        "naive": NaiveCandidateRefresh,
    }
    cost_model = CostModel()
    instrumentation = Instrumentation(
        cost_model=cost_model, trace_inserts=trace_inserts
    )
    codec = IntRecordCodec()
    rng = RandomSource(seed)
    initial_dataset = max(2 * sample_size, sample_size + 1)
    values, seen = build_reservoir(range(initial_dataset), sample_size, rng)
    sample = SampleFile(
        SimulatedBlockDevice(cost_model, "sample-disk", instrumentation),
        codec,
        sample_size,
    )
    sample.initialize(values)
    log = None
    algorithm_obj = None
    if strategy != "immediate":
        log = LogFile(
            SimulatedBlockDevice(cost_model, "log-disk", instrumentation), codec
        )
        algorithm_obj = algorithms[algorithm]()
    maintainer = SampleMaintainer(
        sample,
        rng,
        strategy=strategy,
        initial_dataset_size=seen,
        log=log,
        algorithm=algorithm_obj,
        cost_model=cost_model,
        instrumentation=instrumentation,
    )
    maintainer.insert_many(range(initial_dataset, initial_dataset + inserts))
    maintainer.refresh()
    return instrumentation


def _print_catalogue() -> None:
    width = max(len(name) for name in INSTRUMENTS)
    print(f"{'instrument':<{width}}  kind       unit      description")
    for name, spec in INSTRUMENTS.items():
        unit = spec.unit or "-"
        print(f"{name:<{width}}  {spec.kind:<9}  {unit:<8}  {spec.description}")


#: Span-dict keys that are structure, not user attributes.
_SPAN_FIELDS = frozenset(
    ("span", "parent", "span_id", "parent_id", "trace_id", "start",
     "cost_seconds", "blocks")
)


def print_span_table(records: list[dict]) -> None:
    """The span summary table, from span dicts (in-process or a file).

    One row per span in completion order -- identical output whether the
    dicts came from a live tracer or an exported JSONL file.
    """
    print("trace spans (cost-model seconds; blocks = seq/random x read/write):")
    for record in records:
        indent = "  " if record.get("parent") is None else "    "
        io = record.get("blocks")
        blocks = (
            f"sr={io['seq_reads']} sw={io['seq_writes']} "
            f"rr={io['random_reads']} rw={io['random_writes']}"
            if io is not None
            else "-"
        )
        attrs = " ".join(
            f"{k}={v}" for k, v in record.items() if k not in _SPAN_FIELDS
        )
        print(
            f"{indent}{record['span']:<20} {record['cost_seconds']:>12.6f}s  "
            f"[{blocks}]{'  ' + attrs if attrs else ''}"
        )


def _print_summary(instrumentation: Instrumentation) -> None:
    print_span_table([span.to_dict() for span in instrumentation.tracer.finished])
    print()
    print("per-device block accesses (kind x pattern):")
    rows = [
        (dict(c.labels), c.value)
        for c in instrumentation.registry
        if c.name == "device.accesses"
    ]
    for labels, value in sorted(rows, key=lambda r: sorted(r[0].items())):
        print(
            f"  {labels.get('device', '?'):<12} {labels.get('kind', '?'):<6} "
            f"{labels.get('pattern', '?'):<7} {value:>8}"
        )
    print()
    print("instruments:")
    for instrument in instrumentation.registry:
        if instrument.name == "device.accesses":
            continue
        labels = " ".join(f"{k}={v}" for k, v in instrument.labels)
        if instrument.kind == "histogram":
            value = f"count={instrument.count} sum={instrument.sum:g}"
        else:
            value = f"{instrument.value:g}"
        print(
            f"  {instrument.name:<28} {labels:<20} {value}"
        )


def run_stats_command(args: argparse.Namespace) -> int:
    if args.catalogue:
        _print_catalogue()
        return 0
    if args.spans_file:
        from repro.obs.tracefile import read_spans_jsonl

        try:
            with open(args.spans_file, "r", encoding="utf-8") as handle:
                records = read_spans_jsonl(handle)
        except (OSError, ValueError) as exc:
            print(f"repro stats: {args.spans_file}: {exc}", file=sys.stderr)
            return 2
        print_span_table(records)
        return 0
    if args.sample_size <= 0 or args.inserts < 0:
        print("repro stats: sample size must be positive, inserts non-negative",
              file=sys.stderr)
        return 2
    instrumentation = run_instrumented_cycle(
        strategy=args.strategy,
        algorithm=args.algorithm,
        sample_size=args.sample_size,
        inserts=args.inserts,
        seed=args.seed,
        trace_inserts=args.trace_inserts,
    )
    if args.format == "json":
        print(
            snapshot_json(instrumentation.registry, instrumentation.tracer),
            end="",
        )
    elif args.format == "prometheus":
        print(prometheus_text(instrumentation.registry), end="")
    elif args.format == "spans":
        write_spans_jsonl(instrumentation.tracer, sys.stdout)
    else:
        _print_summary(instrumentation)
    return 0
