"""Observability: metrics, trace spans and events for the maintenance core.

The paper's argument is quantitative -- deferred refresh wins because of
*where* block accesses land (sequential vs. random, online vs. offline).
This package makes that visible while it happens instead of only as
after-the-fact :class:`~repro.storage.cost_model.AccessStats` totals:

* :class:`Instrumentation` -- the facade components accept (optionally);
* :class:`MetricsRegistry` + :class:`Counter`/:class:`Gauge`/:class:`Histogram`
  -- named instruments declared in :mod:`repro.obs.catalogue`;
* :class:`Tracer`/:class:`Span` -- per-phase spans whose "duration" is
  cost-model seconds and block counts, never wall clocks (TIME001 holds
  by construction; a :class:`Clock` protocol covers the real-disk path);
* :class:`EventBus`/:class:`Event` -- structured occurrences (crash
  injections, span ends) with a no-op fast path;
* exporters -- JSONL event log, Prometheus text, JSON snapshot.

See docs/observability.md for the instrument catalogue and formats.
"""

from repro.obs.api import Instrumentation, maybe_span
from repro.obs.catalogue import (
    COUNT_BUCKETS,
    INSTRUMENTS,
    InstrumentSpec,
    SECONDS_BUCKETS,
    SPANS,
)
from repro.obs.events import Event, EventBus
from repro.obs.exporters import (
    JsonlEventSink,
    prometheus_text,
    snapshot,
    snapshot_json,
    write_spans_jsonl,
)
from repro.obs.slo import SLO, SLOTracker, parse_slos
from repro.obs.timeseries import TimeSeriesStore, quantile_nearest_rank
from repro.obs.tracefile import (
    SpanNode,
    SpanSinkJsonl,
    build_forest,
    chrome_trace_dict,
    critical_path,
    read_spans_jsonl,
    self_times,
)
from repro.obs.instruments import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    INSTRUMENT_NAME_RE,
    Instrument,
    canonical_labels,
    validate_instrument_name,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Clock, CostClock, NullClock, Span, Tracer

__all__ = [
    "Instrumentation",
    "maybe_span",
    # instruments
    "Instrument",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "INSTRUMENT_NAME_RE",
    "validate_instrument_name",
    "canonical_labels",
    # catalogue
    "INSTRUMENTS",
    "InstrumentSpec",
    "SPANS",
    "COUNT_BUCKETS",
    "SECONDS_BUCKETS",
    # events
    "Event",
    "EventBus",
    # tracing
    "Clock",
    "CostClock",
    "NullClock",
    "Span",
    "Tracer",
    # trace files
    "SpanNode",
    "SpanSinkJsonl",
    "build_forest",
    "chrome_trace_dict",
    "critical_path",
    "read_spans_jsonl",
    "self_times",
    # time series + SLOs
    "TimeSeriesStore",
    "quantile_nearest_rank",
    "SLO",
    "SLOTracker",
    "parse_slos",
    # exporters
    "JsonlEventSink",
    "prometheus_text",
    "snapshot",
    "snapshot_json",
    "write_spans_jsonl",
]
