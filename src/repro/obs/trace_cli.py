"""The ``repro trace`` subcommand: inspect exported span files.

Reads a spans JSONL file (``repro serve-sim --trace``) and answers the
questions an end-of-run aggregate cannot: where did one query's
cost-clock time actually go?

* default -- summary: span/trace counts plus the top-K span names by
  total **self time** (duration minus children, i.e. cost attributable
  to the span itself rather than what it called);
* ``--query TRACE_ID`` -- per-request waterfall: the parent-linked span
  tree of one trace id, indented, with offsets relative to its root;
* ``--critical-path`` -- the chain of maximum-duration spans from root
  to leaf (of the slowest root, or of ``--query``'s root);
* ``--format chrome`` -- Chrome trace-event JSON for Perfetto.

Self-contained on the pattern of :mod:`repro.obs.cli`: the main CLI
calls :func:`add_trace_parser` at build time and
:func:`run_trace_command` on dispatch.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.tracefile import (
    SpanNode,
    build_forest,
    chrome_trace_dict,
    critical_path,
    read_spans_jsonl,
    self_times,
)

__all__ = ["add_trace_parser", "run_trace_command"]


def add_trace_parser(sub: argparse._SubParsersAction) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "trace",
        help="analyse an exported spans JSONL file (waterfall, critical path)",
        description=(
            "Reconstruct per-request span trees from a spans JSONL file "
            "(serve-sim --trace) and report self-time rankings, per-query "
            "waterfalls, critical paths, or a Perfetto-viewable Chrome "
            "trace. See docs/observability.md."
        ),
    )
    parser.add_argument("spans", help="spans JSONL file to analyse")
    parser.add_argument(
        "--query",
        metavar="TRACE_ID",
        default=None,
        help="show the waterfall of one trace id (e.g. 00000007:000012)",
    )
    parser.add_argument(
        "--critical-path",
        action="store_true",
        help="show the maximum-duration root-to-leaf chain",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="rows in the self-time ranking"
    )
    parser.add_argument(
        "--format",
        default="text",
        choices=("text", "chrome"),
        help="text = human-readable, chrome = Chrome trace-event JSON",
    )
    parser.add_argument(
        "--output",
        "-o",
        metavar="PATH",
        default=None,
        help="write chrome output to PATH instead of stdout",
    )
    return parser


def _print_waterfall(node: SpanNode, origin: float, depth: int = 0) -> None:
    offset = node.start - origin
    print(
        f"  {'  ' * depth}{node.name:<24} +{offset:>11.6f}s  "
        f"dur={node.duration:>11.6f}s  self={node.self_time:>11.6f}s"
    )
    for child in node.children:
        _print_waterfall(child, origin, depth + 1)


def _print_critical_path(root: SpanNode) -> None:
    path = critical_path(root)
    print(
        f"critical path of trace {root.trace_id or '-'} "
        f"({root.duration:.6f}s total):"
    )
    for node in path:
        share = node.duration / root.duration if root.duration > 0 else 0.0
        print(
            f"  {node.name:<24} dur={node.duration:>11.6f}s "
            f"({share:>6.1%})  self={node.self_time:>11.6f}s"
        )


def run_trace_command(args: argparse.Namespace) -> int:
    try:
        with open(args.spans, "r", encoding="utf-8") as handle:
            spans = read_spans_jsonl(handle)
    except (OSError, ValueError) as exc:
        print(f"repro trace: {args.spans}: {exc}", file=sys.stderr)
        return 2
    if not spans:
        print(f"repro trace: {args.spans}: no spans", file=sys.stderr)
        return 2

    if args.format == "chrome":
        payload = json.dumps(chrome_trace_dict(spans), sort_keys=True)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"chrome trace written to {args.output} (open in Perfetto)")
        else:
            print(payload)
        return 0

    roots = build_forest(spans)
    if args.query is not None:
        selected = [r for r in roots if r.trace_id == args.query]
        if not selected:
            known = sorted({r.trace_id for r in roots if r.trace_id})
            hint = f"; ids look like {known[0]}" if known else ""
            print(
                f"repro trace: no spans with trace id {args.query!r}{hint}",
                file=sys.stderr,
            )
            return 2
        if args.critical_path:
            for root in selected:
                _print_critical_path(root)
            return 0
        origin = selected[0].start
        print(f"waterfall of trace {args.query} ({len(selected)} root span(s)):")
        for root in selected:
            _print_waterfall(root, origin)
        return 0

    if args.critical_path:
        slowest = max(roots, key=lambda r: (r.duration, -r.span_id))
        _print_critical_path(slowest)
        return 0

    traces = {s.get("trace_id") for s in spans if s.get("trace_id") is not None}
    totals = self_times(roots)
    grand_self = sum(entry["self_seconds"] for entry in totals.values())
    print(
        f"{len(spans)} spans, {len(traces)} traces, "
        f"{len(totals)} span names, {grand_self:.6f}s total self time"
    )
    print(f"top {args.top} span names by total self time:")
    width = max(len(name) for name in totals)
    ranked = sorted(
        totals.items(), key=lambda item: (-item[1]["self_seconds"], item[0])
    )
    for name, entry in ranked[: args.top]:
        share = entry["self_seconds"] / grand_self if grand_self > 0 else 0.0
        print(
            f"  {name:<{width}}  count={int(entry['count']):>6}  "
            f"self={entry['self_seconds']:>11.6f}s ({share:>6.1%})  "
            f"total={entry['cost_seconds']:>11.6f}s"
        )
    return 0
