"""Structured event bus with a no-op fast path.

Events are discrete occurrences -- a refresh completing, an injected
crash firing -- as opposed to the continuous accumulators in
:mod:`repro.obs.instruments`.  The bus is deliberately minimal:
``emit()`` returns immediately when nobody subscribed, so instrumented
code paths cost one attribute read plus one truth test when telemetry
is off, and event construction happens only when a sink will see it.

Event "time" is the emitting context's cost-clock reading (cost-model
seconds), never a wall clock -- see :mod:`repro.obs.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.instruments import validate_instrument_name

__all__ = ["Event", "EventBus"]


@dataclass(frozen=True)
class Event:
    """One structured occurrence."""

    name: str
    seq: int
    cost_seconds: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "event": self.name,
            "seq": self.seq,
            "cost_seconds": self.cost_seconds,
            **self.attrs,
        }


class EventBus:
    """Fan-out of events to zero or more subscriber callables."""

    def __init__(self) -> None:
        self._subscribers: list[Callable[[Event], None]] = []
        self._seq = 0

    @property
    def active(self) -> bool:
        """True when at least one subscriber is attached."""
        return bool(self._subscribers)

    def subscribe(self, sink: Callable[[Event], None]) -> Callable[[], None]:
        """Attach *sink*; returns a zero-argument unsubscribe callable."""
        self._subscribers.append(sink)

        def unsubscribe() -> None:
            if sink in self._subscribers:
                self._subscribers.remove(sink)

        return unsubscribe

    def emit(
        self, name: str, cost_seconds: float = 0.0, **attrs: Any
    ) -> Event | None:
        """Deliver an event to every subscriber; no-op when none exist."""
        if not self._subscribers:
            return None
        validate_instrument_name(name)
        self._seq += 1
        event = Event(
            name=name, seq=self._seq, cost_seconds=cost_seconds, attrs=attrs
        )
        for sink in list(self._subscribers):
            sink(event)
        return event
