"""Windowed time-series sampling of serve metrics, in cost-clock time.

End-of-run aggregates hide *when* cost was paid -- the whole point of
deferred maintenance is that refresh I/O moves in time relative to the
queries that observe its staleness.  :class:`TimeSeriesStore` buckets
observations into fixed windows of cost-model seconds so a run's report
can show latency, staleness-at-read, queue depth and pool hit rate *per
window*, with deterministic nearest-rank quantiles.

Three series kinds:

* **dist** (:meth:`observe`) -- per-window distributions summarised as
  count/mean/min/max and nearest-rank p50/p90/p99;
* **gauge** (:meth:`set_gauge`) -- per-window last/min/max of a sampled
  level (queue depth);
* **total** (:meth:`record_total`) -- per-window snapshots of cumulative
  counters, summarised as the windowed delta (pool hits, device
  accesses), so rates read directly off the report.

Everything is plain arithmetic over recorded floats: no wall clocks, no
RNG, no allocation on the hot path beyond appending to lists -- and the
store is only ever consulted when explicitly enabled, preserving the
zero-overhead contract.

Method names are deliberately *not* ``counter``/``gauge``/``histogram``:
those attribute names are the OBS001 lint's emit-site markers, and a
time-series sample site is not a registry emit site.
"""

from __future__ import annotations

from typing import Any

__all__ = ["TimeSeriesStore", "quantile_nearest_rank"]


def quantile_nearest_rank(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an already sorted, non-empty list.

    Deterministic (no interpolation) so summaries are byte-stable.
    """
    if not sorted_values:
        raise ValueError("quantile of empty list")
    rank = max(1, -(-int(q * 100) * len(sorted_values) // 100))  # ceil
    return sorted_values[min(rank, len(sorted_values)) - 1]


class TimeSeriesStore:
    """Fixed-window buckets over the cost clock.

    ``interval`` is the window width in cost-model seconds; an
    observation at time ``t`` lands in window ``int(t // interval)``.
    Windows are materialised lazily (sparse runs stay sparse) and the
    summary lists them in ascending order.
    """

    def __init__(self, interval: float) -> None:
        if interval <= 0:
            raise ValueError("time-series interval must be > 0")
        self.interval = float(interval)
        # name -> window index -> list of observations
        self._dists: dict[str, dict[int, list[float]]] = {}
        # name -> window index -> [last, min, max]
        self._gauges: dict[str, dict[int, list[float]]] = {}
        # name -> window index -> last cumulative total seen in window
        self._totals: dict[str, dict[int, float]] = {}

    def _window(self, t: float) -> int:
        return int(t // self.interval)

    def observe(self, name: str, t: float, value: float) -> None:
        """Record one sample of a distribution series at cost time ``t``."""
        self._dists.setdefault(name, {}).setdefault(self._window(t), []).append(
            float(value)
        )

    def set_gauge(self, name: str, t: float, value: float) -> None:
        """Record the current level of a gauge series at cost time ``t``."""
        window = self._window(t)
        series = self._gauges.setdefault(name, {})
        cell = series.get(window)
        value = float(value)
        if cell is None:
            series[window] = [value, value, value]
        else:
            cell[0] = value
            cell[1] = min(cell[1], value)
            cell[2] = max(cell[2], value)

    def record_total(self, name: str, t: float, total: float) -> None:
        """Snapshot a cumulative counter; summaries report window deltas."""
        self._totals.setdefault(name, {})[self._window(t)] = float(total)

    def to_dict(self) -> dict[str, Any]:
        """Deterministic summary: series sorted by name, windows ascending."""
        series: dict[str, Any] = {}
        for name in sorted(self._dists):
            windows = []
            for index in sorted(self._dists[name]):
                values = sorted(self._dists[name][index])
                windows.append(
                    {
                        "window": index,
                        "start": round(index * self.interval, 9),
                        "count": len(values),
                        "mean": round(sum(values) / len(values), 9),
                        "min": round(values[0], 9),
                        "max": round(values[-1], 9),
                        "p50": round(quantile_nearest_rank(values, 0.50), 9),
                        "p90": round(quantile_nearest_rank(values, 0.90), 9),
                        "p99": round(quantile_nearest_rank(values, 0.99), 9),
                    }
                )
            series[name] = {"kind": "dist", "windows": windows}
        for name in sorted(self._gauges):
            windows = []
            for index in sorted(self._gauges[name]):
                last, low, high = self._gauges[name][index]
                windows.append(
                    {
                        "window": index,
                        "start": round(index * self.interval, 9),
                        "last": round(last, 9),
                        "min": round(low, 9),
                        "max": round(high, 9),
                    }
                )
            series[name] = {"kind": "gauge", "windows": windows}
        for name in sorted(self._totals):
            windows = []
            previous = 0.0
            for index in sorted(self._totals[name]):
                total = self._totals[name][index]
                windows.append(
                    {
                        "window": index,
                        "start": round(index * self.interval, 9),
                        "total": round(total, 9),
                        "delta": round(total - previous, 9),
                    }
                )
                previous = total
            series[name] = {"kind": "total", "windows": windows}
        return {"interval_seconds": round(self.interval, 9), "series": series}
