"""Trace spans measured in cost-model seconds and block counts.

A span brackets one lifecycle step -- an insert, a refresh, a refresh
*phase* (precomputation vs. write pass) -- and records what that step
cost.  Crucially, "duration" here is **not wall-clock time**: it is the
delta of the shared :class:`~repro.storage.cost_model.CostModel` across
the span, i.e. counted block accesses weighted with the paper's Sec. 6.1
access times, plus the categorised block counts themselves.  That keeps
the TIME001 invariant (no wall clocks in cost-accounted paths) true *by
construction*: tracing an algorithm cannot smuggle hardware timing into
its reported numbers.

The one legitimate exception is running the reference algorithms against
a real file system, where elapsed time is the measurement.  For that,
span timing is pluggable via the :class:`Clock` protocol; the sanctioned
wall clock lives in :mod:`repro.storage.real_disk` (the calibration
module that is TIME001-exempt by design), not here.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Protocol

from repro.storage.cost_model import AccessStats, CostModel

__all__ = ["Clock", "CostClock", "NullClock", "Span", "Tracer"]


class Clock(Protocol):
    """Injectable time source for span durations."""

    def now(self) -> float:  # pragma: no cover - protocol
        ...


class CostClock:
    """The default clock: reads the cost model's accumulated seconds."""

    def __init__(self, cost_model: CostModel) -> None:
        self._cost_model = cost_model

    def now(self) -> float:
        return self._cost_model.cost_seconds()


class NullClock:
    """Clock for tracers without a cost model: every reading is zero."""

    def now(self) -> float:
        return 0.0


@dataclass
class Span:
    """One completed (or in-flight) traced step.

    Beyond the legacy ``parent`` *name*, every span carries explicit
    identity: a ``span_id`` unique within its tracer, the ``span_id`` of
    its parent (``parent_id``), and the ``trace_id`` of the request it
    belongs to (None outside any trace context).  All three are assigned
    deterministically -- span ids are a simple counter, trace ids are
    derived by the caller from seed + event index -- so two runs from the
    same seed export byte-identical span files.
    """

    name: str
    parent: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    start_seconds: float = 0.0
    end_seconds: float | None = None
    io: AccessStats | None = None
    span_id: int = 0
    parent_id: int | None = None
    trace_id: str | None = None

    @property
    def duration_seconds(self) -> float:
        """Cost-model seconds spent inside the span (0 while in flight)."""
        if self.end_seconds is None:
            return 0.0
        return self.end_seconds - self.start_seconds

    @property
    def blocks(self) -> int:
        """Total block accesses charged inside the span."""
        return self.io.total_accesses if self.io is not None else 0

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def to_dict(self) -> dict:
        out: dict[str, Any] = {
            "span": self.name,
            "parent": self.parent,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start": round(self.start_seconds, 9),
            "cost_seconds": round(self.duration_seconds, 9),
            **self.attrs,
        }
        if self.io is not None:
            out["blocks"] = {
                "seq_reads": self.io.seq_reads,
                "seq_writes": self.io.seq_writes,
                "random_reads": self.io.random_reads,
                "random_writes": self.io.random_writes,
            }
        return out


class Tracer:
    """Produces and retains spans; nests them via an explicit stack.

    ``max_spans`` bounds retention (oldest finished spans are dropped
    first) so long instrumented runs cannot grow memory without bound.
    Streaming consumers that must see *every* span regardless of the
    retention cap (e.g. the serve-sim ``--trace`` JSONL exporter) attach
    a sink via :meth:`add_span_sink` and receive each span as it
    finishes, in completion order.

    The tracer also carries the current **trace context**: while inside
    :meth:`trace_context`, every span opened is stamped with that trace
    id, linking all work done on behalf of one request -- scheduler
    event, admission decision, session read, triggered refresh, buffer
    pool and device I/O -- into one tree.
    """

    def __init__(
        self,
        cost_model: CostModel | None = None,
        clock: Clock | None = None,
        max_spans: int = 10_000,
        event_bus=None,
    ) -> None:
        self._cost_model = cost_model
        if clock is None:
            clock = CostClock(cost_model) if cost_model is not None else NullClock()
        self._clock = clock
        self._stack: list[Span] = []
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self._events = event_bus
        self._next_span_id = 1
        self._trace_id: str | None = None
        self._sinks: list[Callable[[Span], None]] = []
        #: Seed-derived run identifier; callers (run_simulation) set it so
        #: trace ids minted from this tracer are stable across runs.
        self.run_id: str = ""

    @property
    def finished(self) -> list[Span]:
        """Completed spans, oldest first."""
        return list(self._finished)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def current_trace_id(self) -> str | None:
        return self._trace_id

    def clear(self) -> None:
        self._finished.clear()

    def add_span_sink(self, sink: Callable[[Span], None]) -> Callable[[], None]:
        """Register ``sink`` to receive every finished span; returns an
        unsubscribe callable."""
        self._sinks.append(sink)

        def unsubscribe() -> None:
            if sink in self._sinks:
                self._sinks.remove(sink)

        return unsubscribe

    @contextmanager
    def trace_context(self, trace_id: str) -> Iterator[str]:
        """Stamp every span opened inside the block with ``trace_id``.

        Contexts nest by save/restore, so a refresh job traced under its
        own id inside a query's context reverts cleanly on exit.
        """
        previous = self._trace_id
        self._trace_id = trace_id
        try:
            yield trace_id
        finally:
            self._trace_id = previous

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span; closes (and records) it when the block exits.

        The span is recorded even when the block raises, so a crash mid
        refresh still leaves the partially accrued cost visible -- the
        failure-analysis case the fault-injection tests exercise.
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            parent=parent.name if parent is not None else None,
            attrs=dict(attrs),
            span_id=self._next_span_id,
            parent_id=parent.span_id if parent is not None else None,
            trace_id=self._trace_id,
        )
        self._next_span_id += 1
        span.start_seconds = self._clock.now()
        checkpoint = (
            self._cost_model.checkpoint() if self._cost_model is not None else None
        )
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end_seconds = self._clock.now()
            if checkpoint is not None:
                span.io = self._cost_model.since(checkpoint)
            self._finished.append(span)
            for sink in self._sinks:
                sink(span)
            if self._events is not None:
                self._events.emit(
                    "trace.span_end",
                    cost_seconds=span.duration_seconds,
                    span=span.name,
                    parent=span.parent,
                    blocks=span.blocks,
                )
