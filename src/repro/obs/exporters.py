"""Exporters: JSONL event log, Prometheus-style text, JSON snapshot.

Three views of the same telemetry:

* :class:`JsonlEventSink` -- a live subscriber writing one JSON object
  per event (and, via :func:`write_spans_jsonl`, per span) to a stream;
* :func:`prometheus_text` -- the registry's current state in the
  Prometheus text exposition format (dots become underscores);
* :func:`snapshot` / :func:`snapshot_json` -- a single JSON document
  with every instrument and (optionally) every retained span, which is
  what ``repro stats`` prints and experiment reports attach.
"""

from __future__ import annotations

import json
from typing import IO

from repro.obs.catalogue import INSTRUMENTS
from repro.obs.events import Event
from repro.obs.instruments import Histogram
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "JsonlEventSink",
    "write_spans_jsonl",
    "prometheus_text",
    "snapshot",
    "snapshot_json",
]


class JsonlEventSink:
    """Event-bus subscriber appending one JSON line per event."""

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream
        self.events_written = 0

    def __call__(self, event: Event) -> None:
        json.dump(event.to_dict(), self._stream, sort_keys=True)
        self._stream.write("\n")
        self.events_written += 1


def write_spans_jsonl(tracer: Tracer, stream: IO[str]) -> int:
    """Append every retained span as one JSON line; returns the count."""
    spans = tracer.finished
    for span in spans:
        json.dump(span.to_dict(), stream, sort_keys=True)
        stream.write("\n")
    return len(spans)


def _prom_name(name: str) -> str:
    return name.replace(".", "_")


def _prom_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for instrument in registry:
        prom = _prom_name(instrument.name)
        if prom not in seen_headers:
            seen_headers.add(prom)
            spec = INSTRUMENTS.get(instrument.name)
            help_text = spec.description if spec else instrument.name
            lines.append(f"# HELP {prom} {help_text}")
            lines.append(f"# TYPE {prom} {instrument.kind}")
        if isinstance(instrument, Histogram):
            cumulative = dict(zip(instrument.boundaries, instrument.bucket_counts))
            for bound, count in cumulative.items():
                labels = _prom_labels(instrument.labels, f'le="{bound:g}"')
                lines.append(f"{prom}_bucket{labels} {count}")
            inf_labels = _prom_labels(instrument.labels, 'le="+Inf"')
            lines.append(f"{prom}_bucket{inf_labels} {instrument.count}")
            base = _prom_labels(instrument.labels)
            lines.append(f"{prom}_sum{base} {instrument.sum:g}")
            lines.append(f"{prom}_count{base} {instrument.count}")
        else:
            labels = _prom_labels(instrument.labels)
            value = instrument.value
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"{prom}{labels} {rendered}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot(registry: MetricsRegistry, tracer: Tracer | None = None) -> dict:
    """One JSON-ready document: all instruments plus retained spans."""
    doc = registry.snapshot()
    if tracer is not None:
        doc["spans"] = [span.to_dict() for span in tracer.finished]
    return doc


def snapshot_json(registry: MetricsRegistry, tracer: Tracer | None = None) -> str:
    return json.dumps(snapshot(registry, tracer), indent=2, sort_keys=True) + "\n"
