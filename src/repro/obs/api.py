"""The :class:`Instrumentation` facade wired through the library.

One object bundles the three telemetry primitives -- metrics registry,
tracer, event bus -- plus the cost model that prices span durations.
Every instrumented component (:class:`~repro.core.maintenance.SampleMaintainer`,
the refresh algorithms, the block devices, the baselines) takes an
optional ``instrumentation`` argument; ``None`` (the default) means the
component carries not a single extra branch beyond one ``is None`` test,
and recorded :class:`~repro.storage.cost_model.AccessStats` are
bit-identical with and without telemetry attached (the zero-overhead
property the integration tests assert).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Mapping, Sequence

from repro.obs.events import EventBus
from repro.obs.exporters import snapshot as _snapshot
from repro.obs.instruments import Counter, DEFAULT_BUCKETS, Gauge, Histogram
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Clock, Tracer
from repro.storage.cost_model import CostModel

__all__ = ["Instrumentation", "maybe_span"]


def maybe_span(instrumentation: "Instrumentation | None", name: str, **attrs: Any):
    """A span when instrumented, a free ``nullcontext`` otherwise.

    The standard guard for optional tracing in hot paths::

        with maybe_span(self.instrumentation, "refresh.write") as span:
            ...
            if span is not None:
                span.set("displaced", displaced)
    """
    if instrumentation is None:
        return nullcontext()
    return instrumentation.span(name, **attrs)


class Instrumentation:
    """Aggregates a metrics registry, a tracer and an event bus.

    Parameters
    ----------
    cost_model:
        The cost model that span durations and event timestamps read
        their cost-clock from.  Without it spans still nest and count,
        but report zero seconds and no block deltas.
    trace_inserts:
        When True, every ``insert()`` opens an ``insert`` span (with
        acceptance outcome and log-append attributes).  Off by default:
        insert volume dwarfs refresh volume, and counters/gauges cover
        the online phase more cheaply.
    trace_storage:
        When True, the buffer pool and block devices open per-block
        ``storage.pool.*`` / ``storage.device.*`` spans, extending each
        request's trace tree down to individual I/O charges.  Off by
        default for the same volume reason as ``trace_inserts``; the
        serve simulator turns it on when exporting a ``--trace`` file.
    clock:
        Override the span time source (see :class:`repro.obs.trace.Clock`);
        the real-disk path injects the wall clock that lives in
        :mod:`repro.storage.real_disk`.
    """

    def __init__(
        self,
        cost_model: CostModel | None = None,
        registry: MetricsRegistry | None = None,
        events: EventBus | None = None,
        tracer: Tracer | None = None,
        trace_inserts: bool = False,
        trace_storage: bool = False,
        max_spans: int = 10_000,
        clock: Clock | None = None,
    ) -> None:
        self.cost_model = cost_model
        self.registry = registry if registry is not None else MetricsRegistry()
        self.events = events if events is not None else EventBus()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(
                cost_model=cost_model,
                clock=clock,
                max_spans=max_spans,
                event_bus=self.events,
            )
        )
        self.trace_inserts = trace_inserts
        self.trace_storage = trace_storage
        self._device_counters: dict[tuple[str, str, bool], Counter] = {}

    # -- instrument passthrough -------------------------------------------

    def counter(self, name: str, labels: Mapping[str, str] | None = None) -> Counter:
        return self.registry.counter(name, labels)

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        return self.registry.gauge(name, labels)

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self.registry.histogram(name, labels, buckets=buckets)

    # -- tracing / events --------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a trace span (context manager); see :class:`Tracer`."""
        return self.tracer.span(name, **attrs)

    def emit(self, name: str, **attrs: Any) -> None:
        """Emit a structured event; free when nobody subscribed."""
        if not self.events.active:
            return
        cost_seconds = (
            self.cost_model.cost_seconds() if self.cost_model is not None else 0.0
        )
        self.events.emit(name, cost_seconds=cost_seconds, **attrs)

    # -- device telemetry --------------------------------------------------

    def record_device_access(
        self, device: str, kind: str, sequential: bool, count: int = 1
    ) -> None:
        """Count one (or ``count``) block accesses for a named device.

        Backed by ``device.accesses`` counters labelled
        ``device= kind=read|write pattern=seq|random`` -- the per-device
        sequential/random histogram of the paper's Sec. 6.1 accounting.
        The per-device counter object is cached, so the per-access cost
        is one dict probe and one integer add.
        """
        key = (device, kind, sequential)
        counter = self._device_counters.get(key)
        if counter is None:
            counter = self.counter(
                "device.accesses",
                labels={
                    "device": device or "unnamed",
                    "kind": kind,
                    "pattern": "seq" if sequential else "random",
                },
            )
            self._device_counters[key] = counter
        counter.inc(count)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Instruments plus retained spans, JSON-ready."""
        return _snapshot(self.registry, self.tracer)
