"""A minimal keyed table with change notifications.

Just enough DBMS to host the Sec. 5 scenario: rows are ``(key, value)``
pairs, mutated through insert/update/delete, and every change is pushed to
subscribers (the staging table, and through it the sample view).  The
sampling machinery never reads the table directly -- the paper's standing
assumption ("access to the base data is disallowed at any time") is
enforced by simply not offering the sample view a handle to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["Row", "Table"]


@dataclass(frozen=True)
class Row:
    """One table row."""

    key: int
    value: int


class Table:
    """Insert/update/delete over keyed rows, with change callbacks."""

    def __init__(self, name: str = "R") -> None:
        self._name = name
        self._rows: dict[int, int] = {}
        self._subscribers: list[Callable] = []

    @property
    def name(self) -> str:
        return self._name

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: int) -> bool:
        return key in self._rows

    def subscribe(self, callback: Callable) -> None:
        """Register ``callback(kind, row)`` for every change.

        ``kind`` is ``"insert"``, ``"update"`` or ``"delete"``; ``row`` is
        the post-image for inserts/updates and the pre-image for deletes.
        """
        self._subscribers.append(callback)

    def insert(self, key: int, value: int) -> None:
        if key in self._rows:
            raise KeyError(f"duplicate key {key} in table {self._name}")
        self._rows[key] = value
        self._notify("insert", Row(key, value))

    def update(self, key: int, value: int) -> None:
        if key not in self._rows:
            raise KeyError(f"update of missing key {key} in table {self._name}")
        self._rows[key] = value
        self._notify("update", Row(key, value))

    def delete(self, key: int) -> None:
        if key not in self._rows:
            raise KeyError(f"delete of missing key {key} in table {self._name}")
        value = self._rows.pop(key)
        self._notify("delete", Row(key, value))

    def get(self, key: int) -> int | None:
        return self._rows.get(key)

    def rows(self) -> Iterator[Row]:
        """Full scan -- for verification only; samplers must not call this."""
        for key, value in self._rows.items():
            yield Row(key, value)

    def _notify(self, kind: str, row: Row) -> None:
        for callback in self._subscribers:
            callback(kind, row)
