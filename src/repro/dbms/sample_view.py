"""The sample as a deferred materialized view (Sec. 5).

:class:`SampleView` subscribes to a :class:`~repro.dbms.table.Table` and
maintains a disk-based uniform random sample of it with deferred refresh,
covering all three change kinds the paper discusses:

* **inserts** drive the normal log-then-refresh machinery -- candidate
  logging when the workload is insert-only, full logging when deletions
  may occur ("it is not possible to maintain a candidate log since
  insertions after a deletion are included in the sample with a different
  probability than assumed during candidate logging");
* **updates** go to a separate update log and are applied to the sample
  after each refresh ("we store all updates in a separate log file and
  apply all these updates after each refresh");
* **deletes** (full-log mode only) are conducted first at refresh time:
  deleted members leave the sample, the sample shrinks, and the insert
  log is then processed against the smaller sample size ("we first
  conduct all the deletions and afterwards process the full log ...
  using a potentially smaller sample size").

The paper assumes insertions and deletions within one refresh window are
*disjunctive* (a window never deletes a key it inserted); the view makes
this true by force -- deleting a freshly inserted key triggers an
implicit refresh that closes the window first.

Base-data independence: after construction (a materialized view is
naturally populated by one scan at creation), the view never touches the
table again -- it only sees the change stream.
"""

from __future__ import annotations

import struct

from repro.core.logs import CandidateLogSource, FullLogSource
from repro.core.policies import ManualPolicy, RefreshPolicy
from repro.core.refresh.base import RefreshAlgorithm
from repro.core.reservoir import ReservoirSampler, build_reservoir
from repro.dbms.table import Row, Table
from repro.rng.random_source import RandomSource
from repro.storage.cost_model import CostModel
from repro.storage.block_device import SimulatedBlockDevice
from repro.storage.files import LogFile, SampleFile

__all__ = ["RowRecordCodec", "SampleView"]


class RowRecordCodec:
    """Packs a ``Row`` (two 64-bit integers) into one fixed-size record."""

    def __init__(self, record_size: int = 32) -> None:
        if record_size < 16:
            raise ValueError("record_size must hold two 8-byte integers")
        self._record_size = record_size
        self._padding = b"\x00" * (record_size - 16)

    @property
    def record_size(self) -> int:
        return self._record_size

    def encode(self, row: Row) -> bytes:
        return struct.pack("<qq", row.key, row.value) + self._padding

    def decode(self, record: bytes) -> Row:
        if len(record) != self._record_size:
            raise ValueError(
                f"record has {len(record)} bytes, expected {self._record_size}"
            )
        key, value = struct.unpack_from("<qq", record)
        return Row(key, value)


class SampleView:
    """Deferred-maintenance random sample of a table.

    Parameters
    ----------
    table:
        The base table; scanned once at construction to build the initial
        sample, then only observed through its change stream.
    sample_size:
        ``M``.  The table must already hold at least ``M`` rows.
    allow_deletes:
        ``False`` (default) uses candidate logging and refuses deletions;
        ``True`` switches to full logging so deletions are supported.
    """

    def __init__(
        self,
        table: Table,
        sample_size: int,
        rng: RandomSource,
        algorithm: RefreshAlgorithm,
        cost_model: CostModel,
        policy: RefreshPolicy | None = None,
        allow_deletes: bool = False,
        record_size: int = 32,
    ) -> None:
        if len(table) < sample_size:
            raise ValueError(
                f"table holds {len(table)} rows; cannot sample {sample_size}"
            )
        self._rng = rng
        self._algorithm = algorithm
        self._cost = cost_model
        self._policy = policy if policy is not None else ManualPolicy()
        self._allow_deletes = allow_deletes
        self._codec = RowRecordCodec(record_size)

        # Populate the view: one creation-time scan, like any materialized view.
        initial, dataset_size = build_reservoir(table.rows(), sample_size, rng)
        self._capacity = sample_size
        self._sample = SampleFile(
            SimulatedBlockDevice(cost_model, "view-sample"), self._codec, sample_size
        )
        self._sample.initialize(initial)
        self._dataset_size = dataset_size
        self._dataset_size_at_refresh = dataset_size

        self._insert_log = LogFile(
            SimulatedBlockDevice(cost_model, "view-insert-log"), self._codec
        )
        self._update_log = LogFile(
            SimulatedBlockDevice(cost_model, "view-update-log"), self._codec
        )
        self._delete_log = LogFile(
            SimulatedBlockDevice(cost_model, "view-delete-log"), self._codec
        )
        if not allow_deletes:
            self._acceptor = ReservoirSampler(
                sample_size, rng, initial_size=dataset_size
            )
        else:
            self._acceptor = None
        self._window_inserted_keys: set[int] = set()
        self._ops_since_refresh = 0
        self.refreshes = 0

        table.subscribe(self._on_change)

    # -- observable state -------------------------------------------------------

    @property
    def sample_size(self) -> int:
        """Current (possibly shrunk) sample size."""
        return self._sample.size

    @property
    def dataset_size(self) -> int:
        return self._dataset_size

    def rows(self) -> list[Row]:
        """Current sample contents, with pending updates NOT yet applied."""
        return self._sample.peek_all()

    # -- change stream -----------------------------------------------------------

    def _on_change(self, kind: str, row: Row) -> None:
        if kind == "insert":
            self._on_insert(row)
        elif kind == "update":
            self._update_log.append(row)
        elif kind == "delete":
            self._on_delete(row)
        else:
            raise ValueError(f"unknown change kind: {kind!r}")
        self._ops_since_refresh += 1
        if self._policy.should_refresh(
            self._ops_since_refresh, len(self._insert_log)
        ):
            self.refresh()

    def _on_insert(self, row: Row) -> None:
        self._window_inserted_keys.add(row.key)
        if self._acceptor is not None:
            # Candidate logging.
            if self._acceptor.test(row):
                self._insert_log.append(row)
            self._dataset_size += 1
        else:
            self._insert_log.append(row)
            self._dataset_size += 1

    def _on_delete(self, row: Row) -> None:
        if not self._allow_deletes:
            raise RuntimeError(
                "this SampleView was built with allow_deletes=False "
                "(candidate logging cannot absorb deletions; see Sec. 5)"
            )
        if row.key in self._window_inserted_keys:
            # The paper's deletion handling "assume[s] (or make[s] sure)
            # that the insertions and deletions are disjunctive": make it
            # sure by closing the current window before logging the delete.
            self.refresh()
        self._delete_log.append(row)
        self._dataset_size -= 1

    # -- the refresh --------------------------------------------------------------

    def refresh(self) -> None:
        """Run the full Sec. 5 refresh: deletions, insertions, then updates."""
        deleted = self._apply_deletions()
        self._apply_insertions(deleted)
        self._apply_updates()
        self._window_inserted_keys.clear()
        self._ops_since_refresh = 0
        self._dataset_size_at_refresh = self._dataset_size
        self.refreshes += 1
        self._policy.notify_refresh()

    def _apply_deletions(self) -> int:
        """Remove deleted members, compact, shrink; returns #deletes logged."""
        if len(self._delete_log) == 0:
            return 0
        deletes = self._delete_log.scan_all()
        self._delete_log.truncate()
        deleted_keys = {row.key for row in deletes}
        survivors = [
            row for row in self._sample_scan() if row.key not in deleted_keys
        ]
        removed = self._sample.size - len(survivors)
        if removed:
            if not survivors:
                raise RuntimeError("deletions emptied the sample entirely")
            # Compact: rewrite from position 0 (sequential), then shrink.
            self._sample.write_sequential(enumerate(survivors))
            self._sample.resize(len(survivors))
        return len(deletes)

    def _apply_insertions(self, deletes_applied: int) -> None:
        if len(self._insert_log) == 0:
            return
        if self._acceptor is not None:
            source = CandidateLogSource(self._insert_log)
            self._algorithm.refresh(self._sample, source, self._rng)
        else:
            # Deletions are conducted first; the insert log is processed
            # against the (possibly smaller) sample and the post-deletion
            # dataset size.
            base = self._dataset_size_at_refresh - deletes_applied
            source = FullLogSource(
                self._insert_log, self._sample.size, base, self._rng
            )
            self._algorithm.refresh(self._sample, source, self._rng)
        self._insert_log.truncate()

    def _apply_updates(self) -> None:
        if len(self._update_log) == 0:
            return
        updates = self._update_log.scan_all()
        self._update_log.truncate()
        new_values = {row.key: row.value for row in updates}
        patches = []
        for position, row in enumerate(self._sample_scan()):
            if row.key in new_values and row.value != new_values[row.key]:
                patches.append((position, Row(row.key, new_values[row.key])))
        if patches:
            self._sample.write_sequential(patches)

    def _sample_scan(self) -> list[Row]:
        """One charged sequential scan of the sample."""
        return list(self._sample.scan())
