"""Staging table: the DBMS-maintained full change log (Sec. 5).

"The transaction log of a database system may already contain all the
information we need ... IBM DB2 makes use of a staging table and the
Oracle RDBMS uses a materialized view log."  The staging table captures
every change to the base table as a fixed-size record on the same kind of
block-aligned log file the sampler uses, so the Sec. 5 claim -- candidate
refresh straight off the DBMS's own full log -- is exercised for real.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.dbms.table import Row, Table
from repro.storage.files import LogFile

__all__ = ["ChangeKind", "Change", "ChangeRecordCodec", "StagingTable"]


class ChangeKind(enum.IntEnum):
    INSERT = 1
    UPDATE = 2
    DELETE = 3


@dataclass(frozen=True)
class Change:
    """One logged change: kind plus the affected row image."""

    kind: ChangeKind
    row: Row


class ChangeRecordCodec:
    """Packs ``(kind, key, value)`` into one fixed-size record."""

    def __init__(self, record_size: int = 32) -> None:
        if record_size < 17:
            raise ValueError("record_size must hold kind + two 8-byte integers")
        self._record_size = record_size
        self._padding = b"\x00" * (record_size - 17)

    @property
    def record_size(self) -> int:
        return self._record_size

    def encode(self, change: Change) -> bytes:
        return (
            struct.pack("<Bqq", int(change.kind), change.row.key, change.row.value)
            + self._padding
        )

    def decode(self, record: bytes) -> Change:
        if len(record) != self._record_size:
            raise ValueError(
                f"record has {len(record)} bytes, expected {self._record_size}"
            )
        kind, key, value = struct.unpack_from("<Bqq", record)
        return Change(ChangeKind(kind), Row(key, value))


class StagingTable:
    """Subscribes to a table and logs every change to a block-aligned file.

    Tracks per-kind counts since the last drain so the sample view can
    decide which Sec. 5 path applies (pure inserts vs. updates vs.
    deletions present).
    """

    def __init__(self, table: Table, log: LogFile) -> None:
        if log.elements_per_block < 1:
            raise ValueError("log block too small for change records")
        self._log = log
        self.inserts = 0
        self.updates = 0
        self.deletes = 0
        table.subscribe(self._on_change)

    @property
    def log(self) -> LogFile:
        return self._log

    def __len__(self) -> int:
        return len(self._log)

    def pending(self) -> tuple[int, int, int]:
        """(inserts, updates, deletes) since the last drain."""
        return self.inserts, self.updates, self.deletes

    def drain(self) -> list[Change]:
        """Read all pending changes sequentially and reset the log."""
        changes = self._log.scan_all()
        self._log.truncate()
        self.inserts = 0
        self.updates = 0
        self.deletes = 0
        return changes

    def _on_change(self, kind: str, row: Row) -> None:
        change_kind = ChangeKind[kind.upper()]
        self._log.append(Change(change_kind, row))
        if change_kind is ChangeKind.INSERT:
            self.inserts += 1
        elif change_kind is ChangeKind.UPDATE:
            self.updates += 1
        else:
            self.deletes += 1
