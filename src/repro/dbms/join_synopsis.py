"""Join synopses with deferred maintenance (Sec. 2's extendability claim).

Acharya et al.'s *join synopses* (SIGMOD 1999, [10] in the paper) exploit
a foreign-key fact: for a fact table ``F`` whose every row matches exactly
one row of a dimension table ``D``, a uniform sample of ``F``, with each
sampled row *joined to its dimension row*, is a uniform sample of the join
``F JOIN D``.  The scheme is reservoir-based, so -- as the paper claims for
this whole family -- it extends natively to deferred disk maintenance:

* fact-table inserts run the ordinary candidate test; an accepted row is
  joined with its dimension row **at log time** (the dimension row must
  exist then -- it is a foreign key) and the *joined* record goes to the
  candidate log;
* any deferred refresh algorithm applies the log to the on-disk synopsis;
* dimension updates reuse the Sec. 5 update-log pattern: they queue in a
  separate log and patch matching synopsis rows after each refresh, so
  the synopsis reflects slowly-changing dimensions without ever
  re-sampling.

Fact deletions would require full logging exactly as in Sec. 5 and are
out of this synopsis's scope (as in the original AQUA system, which
assumed an append-mostly warehouse); the class refuses them loudly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.logs import CandidateLogSource
from repro.core.policies import ManualPolicy, RefreshPolicy
from repro.core.refresh.base import RefreshAlgorithm
from repro.core.reservoir import ReservoirSampler, build_reservoir
from repro.dbms.table import Row, Table
from repro.rng.random_source import RandomSource
from repro.storage.block_device import SimulatedBlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.files import LogFile, SampleFile

__all__ = ["JoinedRow", "JoinedRowCodec", "JoinSynopsis"]


@dataclass(frozen=True)
class JoinedRow:
    """One synopsis record: a fact row joined with its dimension row.

    ``fact_value`` doubles as the foreign key (the mini-DBMS's rows are
    ``(key, value)`` pairs; a fact row's value references a dimension key).
    """

    fact_key: int
    fact_value: int
    dim_value: int


class JoinedRowCodec:
    """Packs a :class:`JoinedRow` (three 64-bit ints) into one record."""

    def __init__(self, record_size: int = 32) -> None:
        if record_size < 24:
            raise ValueError("record_size must hold three 8-byte integers")
        self._record_size = record_size
        self._padding = b"\x00" * (record_size - 24)

    @property
    def record_size(self) -> int:
        return self._record_size

    def encode(self, row: JoinedRow) -> bytes:
        return (
            struct.pack("<qqq", row.fact_key, row.fact_value, row.dim_value)
            + self._padding
        )

    def decode(self, record: bytes) -> JoinedRow:
        if len(record) != self._record_size:
            raise ValueError(
                f"record has {len(record)} bytes, expected {self._record_size}"
            )
        fact_key, fact_value, dim_value = struct.unpack_from("<qqq", record)
        return JoinedRow(fact_key, fact_value, dim_value)


class JoinSynopsis:
    """Uniform sample of ``fact JOIN dimension``, maintained deferredly.

    The fact table's row values are foreign keys into the dimension
    table.  The synopsis is populated by one creation-time pass over the
    fact table (like any materialized view) and afterwards sees only the
    change streams of both tables.
    """

    def __init__(
        self,
        fact: Table,
        dimension: Table,
        sample_size: int,
        rng: RandomSource,
        algorithm: RefreshAlgorithm,
        cost_model: CostModel,
        policy: RefreshPolicy | None = None,
        record_size: int = 32,
    ) -> None:
        if len(fact) < sample_size:
            raise ValueError(
                f"fact table holds {len(fact)} rows; cannot sample {sample_size}"
            )
        self._dimension = dimension
        self._rng = rng
        self._algorithm = algorithm
        self._policy = policy if policy is not None else ManualPolicy()
        self._codec = JoinedRowCodec(record_size)

        initial_rows, dataset_size = build_reservoir(
            fact.rows(), sample_size, rng
        )
        self._sample = SampleFile(
            SimulatedBlockDevice(cost_model, "join-synopsis"),
            self._codec,
            sample_size,
        )
        self._sample.initialize([self._join(row) for row in initial_rows])
        self._dataset_size = dataset_size

        self._log = LogFile(
            SimulatedBlockDevice(cost_model, "join-synopsis-log"), self._codec
        )
        self._dim_update_log = LogFile(
            SimulatedBlockDevice(cost_model, "join-dim-update-log"), self._codec
        )
        self._acceptor = ReservoirSampler(
            sample_size, rng, initial_size=dataset_size
        )
        self._ops_since_refresh = 0
        self.refreshes = 0

        fact.subscribe(self._on_fact_change)
        dimension.subscribe(self._on_dimension_change)

    # -- observable state -------------------------------------------------------

    @property
    def sample_size(self) -> int:
        return self._sample.size

    @property
    def fact_table_size(self) -> int:
        return self._dataset_size

    def rows(self) -> list[JoinedRow]:
        """Current synopsis contents (pending updates not yet applied)."""
        return self._sample.peek_all()

    # -- change streams -----------------------------------------------------------

    def _on_fact_change(self, kind: str, row: Row) -> None:
        if kind == "insert":
            if self._acceptor.test(row):
                self._log.append(self._join(row))
            self._dataset_size += 1
        elif kind == "delete":
            raise RuntimeError(
                "JoinSynopsis does not support fact deletions (candidate "
                "logging; see Sec. 5 for the full-log deletion path)"
            )
        else:  # update of a fact row's foreign key: out of AQUA's model too
            raise RuntimeError(
                "JoinSynopsis does not support fact-row updates (a changed "
                "foreign key re-links the join; re-create the synopsis)"
            )
        self._bump()

    def _on_dimension_change(self, kind: str, row: Row) -> None:
        if kind == "update":
            # Queue a patch: every synopsis row whose fk == row.key gets
            # the new dimension value after the next refresh.
            self._dim_update_log.append(JoinedRow(0, row.key, row.value))
        elif kind == "delete":
            raise RuntimeError(
                "dimension deletions would orphan fact rows (foreign key); "
                "refusing"
            )
        # Dimension inserts need no action: no fact row references them yet.
        self._bump()

    def _bump(self) -> None:
        self._ops_since_refresh += 1
        if self._policy.should_refresh(self._ops_since_refresh, len(self._log)):
            self.refresh()

    # -- the refresh ----------------------------------------------------------------

    def refresh(self) -> None:
        """Apply the candidate log, then pending dimension updates."""
        if len(self._log):
            source = CandidateLogSource(self._log)
            self._algorithm.refresh(self._sample, source, self._rng)
            self._log.truncate()
        self._apply_dimension_updates()
        self._ops_since_refresh = 0
        self.refreshes += 1
        self._policy.notify_refresh()

    def _apply_dimension_updates(self) -> None:
        if len(self._dim_update_log) == 0:
            return
        updates = self._dim_update_log.scan_all()
        self._dim_update_log.truncate()
        new_values = {u.fact_value: u.dim_value for u in updates}
        patches = []
        for position, row in enumerate(self._sample.scan()):
            if row.fact_value in new_values:
                replacement = new_values[row.fact_value]
                if replacement != row.dim_value:
                    patches.append(
                        (position,
                         JoinedRow(row.fact_key, row.fact_value, replacement))
                    )
        if patches:
            self._sample.write_sequential(patches)

    # -- estimation --------------------------------------------------------------------

    def estimate_join_sum(self, value_of) -> float:
        """Horvitz-Thompson estimate of ``sum(value_of)`` over the join."""
        rows = self.rows()
        if not rows:
            return 0.0
        return sum(value_of(r) for r in rows) * (self._dataset_size / len(rows))

    def estimate_join_mean(self, value_of) -> float:
        rows = self.rows()
        if not rows:
            raise ValueError("empty synopsis")
        return sum(value_of(r) for r in rows) / len(rows)

    # -- internals -----------------------------------------------------------------------

    def _join(self, fact_row: Row) -> JoinedRow:
        dim_value = self._dimension.get(fact_row.value)
        if dim_value is None:
            raise KeyError(
                f"fact row {fact_row.key} references missing dimension key "
                f"{fact_row.value} (foreign-key violation)"
            )
        return JoinedRow(fact_row.key, fact_row.value, dim_value)
