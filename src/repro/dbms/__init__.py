"""Section 5 environment: deferred sample maintenance inside a DBMS.

The paper argues its refresh algorithms drop into a database system whose
deferred materialized-view machinery already maintains a full change log
(IBM DB2's staging tables, Oracle's materialized view logs).  This
subpackage builds that environment:

* :mod:`~repro.dbms.table` -- a minimal keyed table with
  insert/update/delete and change notifications;
* :mod:`~repro.dbms.staging` -- a staging table: the DBMS-maintained full
  log of changes, stored block-aligned like everything else;
* :mod:`~repro.dbms.sample_view` -- the sample as a deferred materialized
  view: insertions refresh through the full-log adapter, updates are
  applied from a separate update log after each refresh, deletions shrink
  the sample before the insert log is processed (all per Sec. 5).
"""

from repro.dbms.table import Row, Table
from repro.dbms.staging import StagingTable, ChangeKind, Change
from repro.dbms.staged_source import StagingLogSource
from repro.dbms.join_synopsis import JoinedRow, JoinSynopsis
from repro.dbms.sample_view import SampleView

__all__ = [
    "Table",
    "Row",
    "StagingTable",
    "StagingLogSource",
    "Change",
    "ChangeKind",
    "SampleView",
    "JoinSynopsis",
    "JoinedRow",
]
