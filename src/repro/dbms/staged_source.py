"""Candidate refresh directly off the DBMS's staging table (Sec. 5).

"The transaction log of a database system may already contain all the
information we need" -- when a staging table (DB2) or materialized-view
log (Oracle) already records every change, the sampler does not need its
own log at all.  :class:`StagingLogSource` lets any candidate refresh
algorithm run over the *mixed* staging log of an insert-only window:

* the insert count comes from the staging table's own bookkeeping (a real
  staging table tracks per-kind counts), so no counting pass is needed;
* Vitter skips are replayed from a saved PRNG state exactly as in
  :class:`~repro.core.logs.FullLogSource` to find which inserts are
  candidates;
* the read pass walks the staging log forward, skipping non-insert
  change records, and reads each block at most once -- the change records
  interleaved with the inserts mean *more* blocks are touched than with a
  dedicated insert log, which is precisely the Sec. 5 trade-off ("the
  tuples selected for the sample are further apart from each other, so
  that the number of blocks read from disk increases").

Deletions in the window invalidate candidate selection over the staging
log for the same reason they invalidate candidate logging; the source
refuses to operate if the pending window contains any (updates are fine:
they do not change the acceptance probabilities, and the sample view
applies them after the refresh).
"""

from __future__ import annotations

from repro.dbms.staging import ChangeKind, StagingTable
from repro.dbms.table import Row
from repro.rng.random_source import RandomSource

__all__ = ["StagingLogSource"]


class StagingLogSource:
    """Exposes a staging table's pending inserts as a candidate sequence."""

    def __init__(
        self,
        staging: StagingTable,
        sample_size: int,
        dataset_size_before: int,
        rng: RandomSource,
        skip_method: str = "auto",
    ) -> None:
        if dataset_size_before < sample_size:
            raise ValueError(
                "refresh requires an existing sample: dataset size "
                f"{dataset_size_before} < sample size {sample_size}"
            )
        inserts, updates, deletes = staging.pending()
        if deletes:
            raise ValueError(
                "staging window contains deletions; candidate selection over "
                "the staging log is only valid for insert/update windows "
                "(Sec. 5: conduct deletions first, then process the log)"
            )
        self._staging = staging
        self._inserts = inserts
        self._sample_size = sample_size
        self._dataset_size_before = dataset_size_before
        self._skip_rng = rng.spawn("staging-skips")
        self._skip_method = skip_method
        self._replay_state = self._skip_rng.snapshot()
        self._count: int | None = None

    def count(self) -> int:
        """Number of candidates among the pending inserts.

        Computed by replaying Vitter skips against the staging table's own
        insert counter -- no log scan needed.
        """
        if self._count is None:
            self._skip_rng.restore(self._replay_state)
            candidates = 0
            for _ in self._iter_insert_ordinals():
                candidates += 1
            self._count = candidates
        return self._count

    def open_reader(self) -> "_StagingCandidateReader":
        self.count()
        self._skip_rng.restore(self._replay_state)
        return _StagingCandidateReader(
            self._staging.log.open_sequential_reader(),
            len(self._staging.log),
            self._iter_insert_ordinals(),
        )

    def _iter_insert_ordinals(self):
        """Yield 1-based ordinals (among inserts) of the candidates."""
        seen = self._dataset_size_before
        end = self._dataset_size_before + self._inserts
        while True:
            skip = self._skip_rng.reservoir_skip(
                self._sample_size, seen, method=self._skip_method
            )
            seen += skip + 1
            if seen > end:
                return
            yield seen - self._dataset_size_before


class _StagingCandidateReader:
    """Walks the mixed change log forward, resolving candidate ordinals.

    Candidate ordinal -> n-th *insert* change record -> its row payload.
    """

    __slots__ = ("_reader", "_log_length", "_ordinals", "_next_ordinal",
                 "_position", "_inserts_passed")

    def __init__(self, reader, log_length: int, ordinals) -> None:
        self._reader = reader
        self._log_length = log_length
        self._ordinals = ordinals
        self._next_ordinal = 1
        self._position = 0       # next log position to examine
        self._inserts_passed = 0  # insert records consumed so far

    def read(self, ordinal: int) -> Row:
        if ordinal < self._next_ordinal:
            raise ValueError(
                f"staging candidate reader is forward-only "
                f"(ordinal {ordinal} after {self._next_ordinal - 1})"
            )
        target_insert = -1
        while self._next_ordinal <= ordinal:
            target_insert = next(self._ordinals)
            self._next_ordinal += 1
        while self._position < self._log_length:
            change = self._reader.read(self._position)
            self._position += 1
            if change.kind is ChangeKind.INSERT:
                self._inserts_passed += 1
                if self._inserts_passed == target_insert:
                    return change.row
        raise RuntimeError(
            f"staging log ended before insert #{target_insert}; the staging "
            "table's insert counter disagrees with the log contents"
        )
