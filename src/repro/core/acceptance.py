"""Pluggable acceptance tests, including biased reservoir sampling.

Footnote 3 of the paper: "We are free to use any other acceptance test.
For example, the biased reservoir sampling scheme in [7] is more suitable
for data stream sampling."  The candidate log is agnostic to *which*
acceptance law selected its entries -- the refresh algorithms only need
candidates in arrival order, each destined for a uniformly random slot.

This module makes the acceptance test a first-class, swappable strategy:

* :class:`UniformAcceptance` -- the classic reservoir law ``M/(|R|+1)``
  (what :class:`~repro.core.reservoir.ReservoirSampler` implements; kept
  here for symmetry and for maintainers built via ``acceptance=``);
* :class:`BiasedAcceptance` -- constant-probability acceptance, which
  biases the sample exponentially toward recent elements: element ``i``
  of a stream of ``n`` survives in the sample with probability
  proportional to ``(1 - p/M)^(n-i)``.  This is the memoryless bias the
  stream-sampling literature uses for sliding relevance windows; it keeps
  the candidate-log machinery intact because each accepted element still
  replaces a uniformly random slot;
* :class:`BernoulliAcceptance` -- fixed-rate subsampling (no bounded
  sample size; useful for load shedding where only the *rate* matters).

All tests expose ``accept(rng) -> bool`` plus bookkeeping hooks, so a
:class:`BiasedCandidateLogger` can drive any of them in front of the same
log file and refresh algorithms.
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.rng.random_source import RandomSource
from repro.storage.files import LogFile

__all__ = [
    "AcceptanceTest",
    "UniformAcceptance",
    "BiasedAcceptance",
    "BernoulliAcceptance",
    "BiasedCandidateLogger",
]


class AcceptanceTest(Protocol):
    """Decides, per arriving element, whether it becomes a candidate."""

    def accept(self, rng: RandomSource) -> bool:
        """Advance the stream by one element; True if it is a candidate."""
        ...  # pragma: no cover - protocol

    @property
    def expected_rate(self) -> float:
        """Current per-element acceptance probability (for diagnostics)."""
        ...  # pragma: no cover - protocol


class UniformAcceptance:
    """The classic reservoir law: accept element ``t+1`` w.p. ``M/(t+1)``."""

    def __init__(self, sample_size: int, initial_dataset_size: int) -> None:
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        if initial_dataset_size < sample_size:
            raise ValueError("dataset must be at least as large as the sample")
        self._sample_size = sample_size
        self._seen = initial_dataset_size

    @property
    def seen(self) -> int:
        return self._seen

    @property
    def expected_rate(self) -> float:
        return self._sample_size / (self._seen + 1)

    def accept(self, rng: RandomSource) -> bool:
        self._seen += 1
        return rng.random() * self._seen < self._sample_size


class BiasedAcceptance:
    """Constant-rate acceptance: exponential bias toward recent elements.

    With acceptance probability ``p`` and uniform victim choice among the
    ``M`` slots, an element that arrived ``a`` elements ago is still
    sampled with probability ``p * (1 - p/M)^a`` -- a memoryless recency
    window with mean age ``M/p``.  ``half_life`` expresses the same thing
    operationally: the age at which survival probability halves.
    """

    def __init__(self, sample_size: int, acceptance_probability: float) -> None:
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        if not 0.0 < acceptance_probability <= 1.0:
            raise ValueError(
                f"acceptance probability must be in (0, 1], got "
                f"{acceptance_probability}"
            )
        self._sample_size = sample_size
        self._p = acceptance_probability

    @classmethod
    def with_half_life(cls, sample_size: int, half_life: int) -> "BiasedAcceptance":
        """Choose the acceptance rate so survival halves every ``half_life``
        arrivals: ``(1 - p/M)^half_life = 1/2``."""
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        p = sample_size * -math.expm1(math.log(0.5) / half_life)
        return cls(sample_size, min(1.0, p))

    @property
    def expected_rate(self) -> float:
        return self._p

    @property
    def mean_age(self) -> float:
        """Expected age of a sampled element at steady state."""
        return self._sample_size / self._p

    def accept(self, rng: RandomSource) -> bool:
        return rng.random() < self._p


class BernoulliAcceptance:
    """Plain fixed-rate subsampling (load shedding): no size bound implied."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self._rate = rate

    @property
    def expected_rate(self) -> float:
        return self._rate

    def accept(self, rng: RandomSource) -> bool:
        return rng.random() < self._rate


class BiasedCandidateLogger:
    """Candidate logging under an arbitrary acceptance test.

    Identical to :class:`~repro.core.logs.CandidateLogger` except the
    acceptance law is injected.  The refresh phase is unchanged: any
    candidate refresh algorithm (Array/Stack/Nomem) applies the log,
    because "each candidate replaces a random element of the sample" holds
    for every acceptance law above.
    """

    def __init__(
        self,
        log: LogFile,
        acceptance: AcceptanceTest,
        rng: RandomSource,
    ) -> None:
        self._log = log
        self._acceptance = acceptance
        self._rng = rng
        self.inserts = 0
        self.candidates = 0

    @property
    def log(self) -> LogFile:
        return self._log

    @property
    def acceptance(self) -> AcceptanceTest:
        return self._acceptance

    def insert(self, element) -> bool:
        self.inserts += 1
        if self._acceptance.accept(self._rng):
            self._log.append(element)
            self.candidates += 1
            return True
        return False

    def insert_many(self, elements) -> int:
        """Batched log phase; returns the number of accepted elements.

        Arbitrary acceptance laws draw one variate per element (they have
        no skip distribution), so the acceptance loop stays element-wise
        -- bit-identical draws -- but the accepted records are appended
        in one bulk :meth:`~repro.storage.files.LogFile.append_many`
        call, which charges the same block writes in the same order.
        """
        if not isinstance(elements, (list, tuple, range)):
            elements = list(elements)
        accept = self._acceptance.accept
        rng = self._rng
        accepted = [element for element in elements if accept(rng)]
        self.inserts += len(elements)
        if accepted:
            self._log.append_many(accepted)
            self.candidates += len(accepted)
        return len(accepted)

    def source(self):
        from repro.core.logs import CandidateLogSource

        return CandidateLogSource(self._log)

    def after_refresh(self) -> None:
        self._log.truncate()
