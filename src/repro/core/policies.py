"""Refresh policies: when the deferred refresh actually runs.

The paper assumes periodic refresh in its experiments ("we assumed that
the sample is refreshed periodically", Sec. 6.1) but the framework is
policy-agnostic (Sec. 3 mentions lazy and periodic deferred refresh, after
Gupta & Mumick's materialized-view taxonomy).  A policy is consulted after
every processed operation.
"""

from __future__ import annotations

from typing import Protocol

__all__ = ["RefreshPolicy", "PeriodicPolicy", "ThresholdPolicy", "ManualPolicy"]


class RefreshPolicy(Protocol):
    """Decides whether to refresh after an operation was processed.

    Policies may additionally implement the optional ``batch_quota``
    extension (see the built-in policies): the batched insert path of
    :class:`~repro.core.maintenance.SampleMaintainer` uses it to bound
    how far a batch may run before a refresh could become due.  Policies
    without it still work -- the maintainer falls back to element-wise
    inserts, preserving exact refresh timing.
    """

    def should_refresh(self, operations_since_refresh: int, log_elements: int) -> bool:
        """``operations_since_refresh`` counts dataset operations;
        ``log_elements`` counts what actually landed in the log."""
        ...  # pragma: no cover - protocol

    def notify_refresh(self) -> None:
        """Called after a refresh completed."""
        ...  # pragma: no cover - protocol


class PeriodicPolicy:
    """Refresh every ``period`` dataset operations (the paper's default)."""

    def __init__(self, period: int) -> None:
        if period <= 0:
            raise ValueError("refresh period must be positive")
        self.period = period

    def should_refresh(self, operations_since_refresh: int, log_elements: int) -> bool:
        return operations_since_refresh >= self.period

    def batch_quota(
        self, operations_since_refresh: int, log_elements: int
    ) -> tuple[int | None, int | None]:
        """``(max_operations, max_log_appends)`` before a refresh is due."""
        return max(1, self.period - operations_since_refresh), None

    def notify_refresh(self) -> None:
        return None

    def __repr__(self) -> str:
        return f"PeriodicPolicy(period={self.period})"


class ThresholdPolicy:
    """Refresh once the log holds ``max_log_elements`` elements.

    With candidate logging this bounds the *candidate* count (the quantity
    Fig. 12/13 sweep); with full logging it bounds raw log size.
    """

    def __init__(self, max_log_elements: int) -> None:
        if max_log_elements <= 0:
            raise ValueError("max_log_elements must be positive")
        self.max_log_elements = max_log_elements

    def should_refresh(self, operations_since_refresh: int, log_elements: int) -> bool:
        return log_elements >= self.max_log_elements

    def batch_quota(
        self, operations_since_refresh: int, log_elements: int
    ) -> tuple[int | None, int | None]:
        """Unbounded operations, but stop at the triggering log append."""
        if log_elements >= self.max_log_elements:
            # Already due: any next operation triggers, accepted or not.
            return 1, None
        return None, self.max_log_elements - log_elements

    def notify_refresh(self) -> None:
        return None

    def __repr__(self) -> str:
        return f"ThresholdPolicy(max_log_elements={self.max_log_elements})"


class ManualPolicy:
    """Never auto-refresh; the caller invokes ``refresh()`` explicitly."""

    def should_refresh(self, operations_since_refresh: int, log_elements: int) -> bool:
        return False

    def batch_quota(
        self, operations_since_refresh: int, log_elements: int
    ) -> tuple[int | None, int | None]:
        """No refresh ever: batches are unbounded."""
        return None, None

    def notify_refresh(self) -> None:
        return None

    def __repr__(self) -> str:
        return "ManualPolicy()"
