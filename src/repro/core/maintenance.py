"""Maintenance orchestration: log phase + refresh phase under a policy.

:class:`SampleMaintainer` is the library's front door.  It owns the on-disk
sample, the chosen logging scheme and refresh algorithm, tracks the
online/offline cost split the paper's experiments report (Sec. 6: "The
online cost is the processing cost of arriving insertions.  The offline
cost mirrors the cost for refreshing the sample."), and keeps the dataset
size that the reservoir acceptance probabilities depend on.

Strategies:

* ``"immediate"`` -- classic reservoir maintenance straight onto disk, no
  log (the paper's immediate-refresh baseline);
* ``"candidate"`` -- candidate logging + any deferred refresh algorithm;
* ``"full"`` -- full logging + the Sec. 5 adapter so the same deferred
  refresh algorithms run over the full log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.kinds import KindCandidateLogger, SampleKind
from repro.core.logs import CandidateLogger, FullLogger
from repro.core.refresh.base import RefreshAlgorithm, RefreshResult
from repro.core.refresh.naive import NaiveFullRefresh
from repro.core.policies import ManualPolicy, RefreshPolicy
from repro.core.reservoir import ReservoirSampler
from repro.obs.api import Instrumentation, maybe_span
from repro.obs.catalogue import COUNT_BUCKETS, SECONDS_BUCKETS
from repro.rng.random_source import RandomSource
from repro.storage.cost_model import AccessStats, CostModel
from repro.storage.group_commit import GroupCommitBarrier
from repro.storage.files import LogFile, SampleFile

__all__ = ["SampleMaintainer", "MaintenanceStats"]

_STRATEGIES = ("immediate", "candidate", "full")


@dataclass
class MaintenanceStats:
    """Online/offline split of I/O, as the paper's figures report it."""

    online: AccessStats = field(default_factory=AccessStats)
    offline: AccessStats = field(default_factory=AccessStats)
    inserts: int = 0
    refreshes: int = 0
    candidates_logged: int = 0
    displaced_total: int = 0

    @property
    def total(self) -> AccessStats:
        return self.online + self.offline


class SampleMaintainer:
    """Keeps a disk-based sample of size ``M`` in sync with insertions.

    Parameters
    ----------
    sample:
        The on-disk sample file; must already hold an initial uniform
        sample (see :func:`repro.core.reservoir.build_reservoir`).
    strategy:
        ``"immediate"``, ``"candidate"`` or ``"full"``.
    log:
        The log file; required for the deferred strategies.
    algorithm:
        The deferred refresh algorithm (Array/Stack/Nomem/naive).  With
        ``strategy="full"`` any candidate algorithm works via the Sec. 5
        adapter, or pass :class:`NaiveFullRefresh` for the Sec. 3.1
        baseline.
    policy:
        When to auto-refresh; defaults to manual.
    initial_dataset_size:
        ``|R|`` at the moment the initial sample was built.
    instrumentation:
        Optional :class:`repro.obs.Instrumentation` facade.  When given,
        the maintainer keeps the ``maintenance.*``/``refresh.*`` metrics
        and ``sample.pending_log_elements``/``log.*`` gauges current,
        opens trace spans around every refresh (and, with
        ``trace_inserts``, every insert), and propagates itself to the
        refresh algorithm so its phases are traced too.  ``None`` keeps
        every hot path at a single ``is None`` test.
    """

    def __init__(
        self,
        sample: SampleFile,
        rng: RandomSource,
        strategy: str,
        initial_dataset_size: int,
        log: LogFile | None = None,
        algorithm: RefreshAlgorithm | None = None,
        policy: RefreshPolicy | None = None,
        cost_model: CostModel | None = None,
        skip_method: str = "auto",
        instrumentation: Instrumentation | None = None,
        commit_group: GroupCommitBarrier | None = None,
        kind: SampleKind | None = None,
    ) -> None:
        if strategy not in _STRATEGIES:
            raise ValueError(f"strategy must be one of {_STRATEGIES}, got {strategy!r}")
        if initial_dataset_size < sample.size:
            raise ValueError(
                "maintenance needs an existing full sample: dataset size "
                f"{initial_dataset_size} < sample size {sample.size}"
            )
        if strategy != "immediate":
            if log is None:
                raise ValueError(f"strategy {strategy!r} requires a log file")
            if algorithm is None:
                raise ValueError(f"strategy {strategy!r} requires a refresh algorithm")
        if kind is not None and kind.name == "uniform":
            # Uniform is the pre-kind path; dropping the marker here keeps
            # that path literally unchanged (and byte-identical).
            kind = None
        if kind is not None:
            if strategy != "candidate":
                raise ValueError(
                    f"kind {kind.name!r} supports only candidate logging, "
                    f"got strategy {strategy!r}"
                )
            if kind.seen != initial_dataset_size:
                raise ValueError(
                    f"kind has seen {kind.seen} elements but "
                    f"initial_dataset_size is {initial_dataset_size}"
                )
            # Propagate the kind to a kind-capable refresh algorithm, the
            # same way instrumentation propagates below.
            if not hasattr(algorithm, "kind"):
                raise ValueError(
                    f"refresh algorithm {getattr(algorithm, 'name', algorithm)!r} "
                    f"cannot drive kind {kind.name!r} (no kind support)"
                )
            if algorithm.kind is None:
                algorithm.kind = kind
        self._kind = kind
        self._sample = sample
        self._rng = rng
        self._strategy = strategy
        self._algorithm = algorithm
        self._policy = policy if policy is not None else ManualPolicy()
        self._cost_model = cost_model
        self._skip_method = skip_method
        self.stats = MaintenanceStats()
        self._ops_since_refresh = 0
        if commit_group is None:
            # Default group: the devices this maintainer mutates.  One
            # barrier spanning them replaces the per-device flushes the
            # refresh commit used to issue (identical behaviour without a
            # replication link; with one, every commit seals a batch).
            devices = [sample.device]
            if log is not None and log.device is not sample.device:
                devices.append(log.device)
            commit_group = GroupCommitBarrier(devices)
        self._commit_group = commit_group

        if strategy == "immediate":
            self._reservoir = ReservoirSampler(
                sample.size, rng, initial_size=initial_dataset_size,
                skip_method=skip_method,
            )
            self._candidate_logger = None
            self._full_logger = None
        elif strategy == "candidate":
            self._reservoir = None
            if kind is not None:
                self._candidate_logger = KindCandidateLogger(log, kind, rng)
            else:
                self._candidate_logger = CandidateLogger(
                    log, sample.size, rng, initial_dataset_size,
                    skip_method=skip_method,
                )
            self._full_logger = None
        else:  # full
            self._reservoir = None
            self._candidate_logger = None
            self._full_logger = FullLogger(log, initial_dataset_size)

        self._instr = instrumentation
        if instrumentation is not None:
            self._setup_instruments(instrumentation)

    def _setup_instruments(self, instr: Instrumentation) -> None:
        """Create (or look up) every instrument once; hot paths just inc()."""
        labels = {"strategy": self._strategy}
        self._c_inserts = instr.counter("maintenance.inserts", labels)
        self._c_accepted = instr.counter("maintenance.accepted", labels)
        self._c_rejected = instr.counter("maintenance.rejected", labels)
        self._c_refreshes = instr.counter("maintenance.refreshes", labels)
        self._c_displaced = instr.counter("maintenance.displaced", labels)
        self._c_log_appended = instr.counter("log.appended_elements")
        self._c_skipped = instr.counter("maintenance.inserts_skipped", labels)
        self._g_pending = instr.gauge("sample.pending_log_elements")
        self._g_log_blocks = instr.gauge("log.blocks")
        self._h_candidates = instr.histogram(
            "refresh.candidates", buckets=COUNT_BUCKETS
        )
        self._h_displaced = instr.histogram(
            "refresh.displaced", buckets=COUNT_BUCKETS
        )
        self._h_cost = instr.histogram(
            "refresh.cost_seconds", buckets=SECONDS_BUCKETS
        )
        algorithm = self._algorithm
        if algorithm is not None and getattr(algorithm, "instrumentation", None) is None:
            algorithm.instrumentation = instr
        self._sync_gauges()

    # -- properties ----------------------------------------------------------

    @property
    def sample(self) -> SampleFile:
        return self._sample

    @property
    def strategy(self) -> str:
        return self._strategy

    @property
    def kind(self) -> SampleKind | None:
        """The non-uniform sample kind driving maintenance, if any."""
        return self._kind

    @property
    def dataset_size(self) -> int:
        if self._reservoir is not None:
            return self._reservoir.seen
        if self._candidate_logger is not None:
            return self._candidate_logger.dataset_size
        return self._full_logger.dataset_size

    @property
    def pending_log_elements(self) -> int:
        if self._candidate_logger is not None:
            return len(self._candidate_logger.log)
        if self._full_logger is not None:
            return len(self._full_logger.log)
        return 0

    # -- the two phases --------------------------------------------------------

    def insert(self, element) -> None:
        """Process one insertion into the dataset (the online phase)."""
        checkpoint = self._checkpoint()
        obs = self._instr
        if obs is not None and obs.trace_inserts:
            with obs.span("insert", strategy=self._strategy) as span:
                accepted = self._apply_insert(element)
                span.set("accepted", accepted)
        else:
            accepted = self._apply_insert(element)
        self._charge_online(checkpoint)
        self.stats.inserts += 1
        self._ops_since_refresh += 1
        if obs is not None:
            self._c_inserts.inc()
            (self._c_accepted if accepted else self._c_rejected).inc()
            if accepted and self._strategy != "immediate":
                self._c_log_appended.inc()
            self._sync_gauges()
        if self._policy.should_refresh(self._ops_since_refresh, self.pending_log_elements):
            self.refresh()

    def _apply_insert(self, element) -> bool:
        """Acceptance test + write/append; True when the element survived."""
        obs = self._instr
        trace = obs if (obs is not None and obs.trace_inserts) else None
        if self._strategy == "immediate":
            slot = self._reservoir.offer(element)
            if slot is None:
                return False
            with maybe_span(trace, "insert.sample_write", slot=slot):
                self._sample.write_random(slot, element)
            self.stats.candidates_logged += 1
            return True
        if self._strategy == "candidate":
            # The logger runs the acceptance test (pure CPU) and appends on
            # acceptance, so the span's block delta is the append alone.
            with maybe_span(trace, "insert.log_append") as span:
                accepted = self._candidate_logger.insert(element)
                if span is not None:
                    span.set("accepted", accepted)
            if accepted:
                self.stats.candidates_logged += 1
            return accepted
        # Full logging: every insertion is appended, none rejected.
        with maybe_span(trace, "insert.log_append"):
            self._full_logger.insert(element)
        return True

    def insert_many(self, elements, *, scalar: bool = False) -> int:
        """Process a batch of insertions; returns how many were processed.

        The default is the **skip-based batch path**: Vitter's skip
        variates jump directly from one accepted candidate to the next,
        so the Python-level work per batch is O(accepted), not O(batch).
        The path is bit-identical to element-wise :meth:`insert` -- same
        PRNG draws in the same order, same sample contents, same log
        records, same :class:`~repro.storage.cost_model.AccessStats`,
        same metric counters -- because the skip stream is exactly the
        one the scalar acceptance test consumes lazily.

        Batches are split at refresh boundaries: the refresh policy's
        ``batch_quota`` bounds each chunk so an auto-refresh fires after
        exactly the element it would fire after under scalar inserts.
        Policies without ``batch_quota``, and ``scalar=True``, fall back
        to element-wise processing.
        """
        quota = getattr(self._policy, "batch_quota", None)
        if scalar or quota is None:
            count = 0
            for element in elements:
                self.insert(element)
                count += 1
            return count
        if not isinstance(elements, (list, tuple, range)):
            elements = list(elements)
        total = len(elements)
        obs = self._instr
        done = 0
        while done < total:
            ops_limit, accept_limit = quota(
                self._ops_since_refresh, self.pending_log_elements
            )
            end = total if ops_limit is None else min(total, done + ops_limit)
            chunk = elements[done:end]
            checkpoint = self._checkpoint()
            if obs is not None and obs.trace_inserts:
                with obs.span(
                    "batch_insert", strategy=self._strategy, n=len(chunk)
                ) as span:
                    consumed, accepted = self._apply_insert_batch(chunk, accept_limit)
                    span.set("consumed", consumed)
                    span.set("accepted", accepted)
            else:
                consumed, accepted = self._apply_insert_batch(chunk, accept_limit)
            self._charge_online(checkpoint)
            self.stats.inserts += consumed
            self._ops_since_refresh += consumed
            done += consumed
            if obs is not None:
                self._c_inserts.inc(consumed)
                rejected = consumed - accepted
                if accepted:
                    self._c_accepted.inc(accepted)
                    if self._strategy != "immediate":
                        self._c_log_appended.inc(accepted)
                if rejected:
                    self._c_rejected.inc(rejected)
                    self._c_skipped.inc(rejected)
                self._sync_gauges()
            if self._policy.should_refresh(
                self._ops_since_refresh, self.pending_log_elements
            ):
                self.refresh()
        return total

    def _apply_insert_batch(self, chunk, accept_limit: int | None) -> tuple[int, int]:
        """Batched acceptance + write/append; returns (consumed, accepted)."""
        if self._strategy == "immediate":
            consumed, placed = self._reservoir.offer_many(len(chunk))
            for index, slot in placed:
                self._sample.write_random(slot, chunk[index])
            self.stats.candidates_logged += len(placed)
            return consumed, len(placed)
        if self._strategy == "candidate":
            consumed, accepted = self._candidate_logger.insert_many(
                chunk, max_accepts=accept_limit
            )
            self.stats.candidates_logged += accepted
            return consumed, accepted
        # Full logging appends every element, so a log-append quota is an
        # operation quota.
        take = len(chunk) if accept_limit is None else min(len(chunk), accept_limit)
        self._full_logger.insert_many(chunk[:take] if take < len(chunk) else chunk)
        return take, take

    def refresh(self) -> RefreshResult | None:
        """Run the deferred refresh (the offline phase); no-op if immediate."""
        if self._strategy == "immediate":
            self._ops_since_refresh = 0
            return None
        obs = self._instr
        with maybe_span(
            obs,
            "refresh",
            strategy=self._strategy,
            algorithm=getattr(self._algorithm, "name", None),
        ) as outer:
            # Flushing the log's partial tail block is log-phase work: the
            # paper books all log writes as online cost (Sec. 6.2), and the
            # refresh would otherwise absorb the last block's write.
            online_mark = self._checkpoint()
            with maybe_span(obs, "refresh.log_flush"):
                if self._candidate_logger is not None:
                    self._candidate_logger.log.flush()
                else:
                    self._full_logger.log.flush()
            self._charge_online(online_mark)
            checkpoint = self._checkpoint()
            if self._strategy == "candidate":
                source = self._candidate_logger.source()
                result = self._algorithm.refresh(self._sample, source, self._rng)
                self._candidate_logger.after_refresh()
            else:
                if isinstance(self._algorithm, NaiveFullRefresh):
                    # The naive full refresh scans the raw log itself.
                    from repro.core.logs import CandidateLogSource

                    algorithm = NaiveFullRefresh(
                        self._full_logger.dataset_size_at_last_refresh
                    )
                    if obs is not None and algorithm.instrumentation is None:
                        algorithm.instrumentation = obs
                    source = CandidateLogSource(self._full_logger.log)
                    result = algorithm.refresh(self._sample, source, self._rng)
                else:
                    source = self._full_logger.source(self._sample.size, self._rng)
                    result = self._algorithm.refresh(self._sample, source, self._rng)
                self._full_logger.after_refresh()
            # Refresh commit point: the new sample must be on the device
            # before the truncated log stops being replayable.  Any write
            # a buffer pool deferred is booked here, as offline cost.
            self._flush_devices()
            self._charge_offline(checkpoint)
            self.stats.refreshes += 1
            self.stats.displaced_total += result.displaced
            self._ops_since_refresh = 0
            self._policy.notify_refresh()
            if obs is not None:
                self._c_refreshes.inc()
                self._c_displaced.inc(result.displaced)
                self._h_candidates.observe(result.candidates)
                self._h_displaced.observe(result.displaced)
                if checkpoint is not None:
                    offline = self._cost_model.since(checkpoint)
                    self._h_cost.observe(offline.cost_seconds(self._cost_model.disk))
                outer.set("candidates", result.candidates)
                outer.set("displaced", result.displaced)
                self._sync_gauges()
                obs.emit(
                    "refresh.completed",
                    strategy=self._strategy,
                    algorithm=getattr(self._algorithm, "name", None),
                    candidates=result.candidates,
                    displaced=result.displaced,
                )
        return result

    # -- durability (see repro.storage.superblock) ------------------------------

    def checkpoint_state(self) -> "MaintenanceCheckpoint":
        """Capture a durable, exactly-resumable snapshot of this maintainer.

        Flushes the log's partial tail first (booked online, like any log
        write) so the on-disk log matches the recorded element count.  Pair
        with :class:`repro.storage.superblock.CheckpointStore` to persist,
        and :meth:`from_checkpoint` to resume.
        """
        from repro.storage.superblock import MaintenanceCheckpoint

        with maybe_span(self._instr, "maintenance.checkpoint") as span:
            online_mark = self._checkpoint()
            pending = None
            if self._candidate_logger is not None:
                self._candidate_logger.log.flush()
                log_count = len(self._candidate_logger.log)
                dataset_at_refresh = self._candidate_logger.dataset_size
                pending = self._candidate_logger.pending_accept
            elif self._full_logger is not None:
                self._full_logger.log.flush()
                log_count = len(self._full_logger.log)
                dataset_at_refresh = self._full_logger.dataset_size_at_last_refresh
            else:
                log_count = 0
                dataset_at_refresh = self._reservoir.seen
                pending = self._reservoir.pending_accept
            # Checkpoint point: the snapshot describes on-device state, so any
            # buffered sample/log writes must reach the device first (barriers
            # are free on plain devices, booked online like the log flush).
            self._flush_devices()
            self._charge_online(online_mark)
            if span is not None:
                span.set("log_count", log_count)
        seed, spawn_count, state, w = MaintenanceCheckpoint.capture_rng(self._rng)
        if self._kind is not None:
            kind_name = self._kind.name
            kind_param, kind_threshold = self._kind.checkpoint_fields()
        else:
            kind_name, kind_param, kind_threshold = "uniform", 0, 0.0
        return MaintenanceCheckpoint(
            strategy=self._strategy,
            sample_size=self._sample.size,
            dataset_size=self.dataset_size,
            dataset_size_at_refresh=dataset_at_refresh,
            log_count=log_count,
            inserts=self.stats.inserts,
            refreshes=self.stats.refreshes,
            pending_accept=pending,
            ops_since_refresh=self._ops_since_refresh,
            rng_seed=seed,
            rng_spawn_count=spawn_count,
            rng_state=state,
            rng_w=w,
            kind_name=kind_name,
            kind_param=kind_param,
            kind_threshold=kind_threshold,
        )

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint: "MaintenanceCheckpoint",
        sample: SampleFile,
        log: LogFile | None = None,
        algorithm: RefreshAlgorithm | None = None,
        policy: RefreshPolicy | None = None,
        cost_model: CostModel | None = None,
        skip_method: str = "auto",
        instrumentation: Instrumentation | None = None,
        commit_group: GroupCommitBarrier | None = None,
        kind: SampleKind | None = None,
    ) -> "SampleMaintainer":
        """Resume maintenance from a checkpoint: bit-exact continuation.

        ``sample`` must be the original (or recovered) sample file;
        ``log`` a fresh :class:`LogFile` over the original log device --
        its on-disk contents are re-attached via
        :meth:`~repro.storage.files.LogFile.reopen`.  The restored PRNG
        state makes every subsequent acceptance decision identical to an
        uninterrupted run.  Checkpoints of non-uniform samples require
        the matching ``kind`` instance, whose stale state (dataset size,
        acceptance threshold) is restored from the manifest fields.
        """
        if checkpoint.sample_size != sample.size:
            raise ValueError(
                f"checkpoint is for sample size {checkpoint.sample_size}, "
                f"got a sample of size {sample.size}"
            )
        kind_name = getattr(kind, "name", "uniform") if kind is not None else "uniform"
        if checkpoint.kind_name != kind_name:
            raise ValueError(
                f"checkpoint is for kind {checkpoint.kind_name!r}, "
                f"got kind {kind_name!r}"
            )
        if kind is not None and kind.name != "uniform":
            # Restore the kind's stale state first: the constructor's
            # kind validation reads it.
            kind.restore_state(checkpoint)
        rng = checkpoint.restore_rng()
        if checkpoint.strategy != "immediate":
            if log is None:
                raise ValueError(
                    f"strategy {checkpoint.strategy!r} requires the log file"
                )
            log.reopen(checkpoint.log_count)
        maintainer = cls(
            sample,
            rng,
            strategy=checkpoint.strategy,
            initial_dataset_size=checkpoint.dataset_size_at_refresh,
            log=log,
            algorithm=algorithm,
            policy=policy,
            cost_model=cost_model,
            skip_method=skip_method,
            instrumentation=instrumentation,
            commit_group=commit_group,
            kind=kind,
        )
        # Restore the counters the constructor cannot know.
        if maintainer._reservoir is not None:
            maintainer._reservoir._seen = checkpoint.dataset_size
            maintainer._reservoir.pending_accept = checkpoint.pending_accept
        elif isinstance(maintainer._candidate_logger, KindCandidateLogger):
            pass  # the kind's restore_state above carried everything
        elif maintainer._candidate_logger is not None:
            sampler = maintainer._candidate_logger._sampler
            sampler._seen = checkpoint.dataset_size
            sampler.pending_accept = checkpoint.pending_accept
        else:
            maintainer._full_logger._dataset_size = checkpoint.dataset_size
        maintainer.stats.inserts = checkpoint.inserts
        maintainer.stats.refreshes = checkpoint.refreshes
        maintainer._ops_since_refresh = checkpoint.ops_since_refresh
        if instrumentation is not None:
            # Metrics continuity across the crash: the lifetime counters
            # resume from the checkpointed totals, and the staleness gauges
            # reflect the re-attached log.
            maintainer._c_inserts.restore(checkpoint.inserts)
            maintainer._c_refreshes.restore(checkpoint.refreshes)
            maintainer._sync_gauges()
        return maintainer

    @property
    def commit_group(self) -> GroupCommitBarrier:
        """The multi-device commit barrier guarding refresh/checkpoint commits."""
        return self._commit_group

    def _flush_devices(self) -> None:
        """Group-commit flush across the maintainer's devices (no-op unpooled).

        Flush-only (``seal=False``): refresh commits and pre-checkpoint
        flushes make the devices durable and mutually consistent, but the
        replication ship point is the *manifest save* -- the checkpoint
        store's own group commit seals everything accumulated since the
        last boundary, so the replica only ever holds resumable states.
        """
        self._commit_group.commit(seal=False)

    # -- telemetry -------------------------------------------------------------

    def _log_file(self) -> LogFile | None:
        if self._candidate_logger is not None:
            return self._candidate_logger.log
        if self._full_logger is not None:
            return self._full_logger.log
        return None

    def _sync_gauges(self) -> None:
        """Refresh the staleness gauges after any state change."""
        self._g_pending.set(self.pending_log_elements)
        log = self._log_file()
        self._g_log_blocks.set(log.block_count if log is not None else 0)

    # -- cost accounting -------------------------------------------------------

    def _checkpoint(self) -> AccessStats | None:
        if self._cost_model is None:
            return None
        return self._cost_model.checkpoint()

    def _charge_online(self, checkpoint: AccessStats | None) -> None:
        if checkpoint is not None:
            self.stats.online.add(self._cost_model.since(checkpoint))

    def _charge_offline(self, checkpoint: AccessStats | None) -> None:
        if checkpoint is not None:
            self.stats.offline.add(self._cost_model.since(checkpoint))
