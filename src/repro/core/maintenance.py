"""Maintenance orchestration: log phase + refresh phase under a policy.

:class:`SampleMaintainer` is the library's front door.  It owns the on-disk
sample, the chosen logging scheme and refresh algorithm, tracks the
online/offline cost split the paper's experiments report (Sec. 6: "The
online cost is the processing cost of arriving insertions.  The offline
cost mirrors the cost for refreshing the sample."), and keeps the dataset
size that the reservoir acceptance probabilities depend on.

Strategies:

* ``"immediate"`` -- classic reservoir maintenance straight onto disk, no
  log (the paper's immediate-refresh baseline);
* ``"candidate"`` -- candidate logging + any deferred refresh algorithm;
* ``"full"`` -- full logging + the Sec. 5 adapter so the same deferred
  refresh algorithms run over the full log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.logs import CandidateLogger, FullLogger
from repro.core.refresh.base import RefreshAlgorithm, RefreshResult
from repro.core.refresh.naive import NaiveFullRefresh
from repro.core.policies import ManualPolicy, RefreshPolicy
from repro.core.reservoir import ReservoirSampler
from repro.rng.random_source import RandomSource
from repro.storage.cost_model import AccessStats, CostModel
from repro.storage.files import LogFile, SampleFile

__all__ = ["SampleMaintainer", "MaintenanceStats"]

_STRATEGIES = ("immediate", "candidate", "full")


@dataclass
class MaintenanceStats:
    """Online/offline split of I/O, as the paper's figures report it."""

    online: AccessStats = field(default_factory=AccessStats)
    offline: AccessStats = field(default_factory=AccessStats)
    inserts: int = 0
    refreshes: int = 0
    candidates_logged: int = 0
    displaced_total: int = 0

    @property
    def total(self) -> AccessStats:
        return self.online + self.offline


class SampleMaintainer:
    """Keeps a disk-based sample of size ``M`` in sync with insertions.

    Parameters
    ----------
    sample:
        The on-disk sample file; must already hold an initial uniform
        sample (see :func:`repro.core.reservoir.build_reservoir`).
    strategy:
        ``"immediate"``, ``"candidate"`` or ``"full"``.
    log:
        The log file; required for the deferred strategies.
    algorithm:
        The deferred refresh algorithm (Array/Stack/Nomem/naive).  With
        ``strategy="full"`` any candidate algorithm works via the Sec. 5
        adapter, or pass :class:`NaiveFullRefresh` for the Sec. 3.1
        baseline.
    policy:
        When to auto-refresh; defaults to manual.
    initial_dataset_size:
        ``|R|`` at the moment the initial sample was built.
    """

    def __init__(
        self,
        sample: SampleFile,
        rng: RandomSource,
        strategy: str,
        initial_dataset_size: int,
        log: LogFile | None = None,
        algorithm: RefreshAlgorithm | None = None,
        policy: RefreshPolicy | None = None,
        cost_model: CostModel | None = None,
        skip_method: str = "auto",
    ) -> None:
        if strategy not in _STRATEGIES:
            raise ValueError(f"strategy must be one of {_STRATEGIES}, got {strategy!r}")
        if initial_dataset_size < sample.size:
            raise ValueError(
                "maintenance needs an existing full sample: dataset size "
                f"{initial_dataset_size} < sample size {sample.size}"
            )
        if strategy != "immediate":
            if log is None:
                raise ValueError(f"strategy {strategy!r} requires a log file")
            if algorithm is None:
                raise ValueError(f"strategy {strategy!r} requires a refresh algorithm")
        self._sample = sample
        self._rng = rng
        self._strategy = strategy
        self._algorithm = algorithm
        self._policy = policy if policy is not None else ManualPolicy()
        self._cost_model = cost_model
        self._skip_method = skip_method
        self.stats = MaintenanceStats()
        self._ops_since_refresh = 0

        if strategy == "immediate":
            self._reservoir = ReservoirSampler(
                sample.size, rng, initial_size=initial_dataset_size,
                skip_method=skip_method,
            )
            self._candidate_logger = None
            self._full_logger = None
        elif strategy == "candidate":
            self._reservoir = None
            self._candidate_logger = CandidateLogger(
                log, sample.size, rng, initial_dataset_size, skip_method=skip_method
            )
            self._full_logger = None
        else:  # full
            self._reservoir = None
            self._candidate_logger = None
            self._full_logger = FullLogger(log, initial_dataset_size)

    # -- properties ----------------------------------------------------------

    @property
    def sample(self) -> SampleFile:
        return self._sample

    @property
    def strategy(self) -> str:
        return self._strategy

    @property
    def dataset_size(self) -> int:
        if self._reservoir is not None:
            return self._reservoir.seen
        if self._candidate_logger is not None:
            return self._candidate_logger.dataset_size
        return self._full_logger.dataset_size

    @property
    def pending_log_elements(self) -> int:
        if self._candidate_logger is not None:
            return len(self._candidate_logger.log)
        if self._full_logger is not None:
            return len(self._full_logger.log)
        return 0

    # -- the two phases --------------------------------------------------------

    def insert(self, element) -> None:
        """Process one insertion into the dataset (the online phase)."""
        checkpoint = self._checkpoint()
        if self._strategy == "immediate":
            slot = self._reservoir.offer(element)
            if slot is not None:
                self._sample.write_random(slot, element)
                self.stats.candidates_logged += 1
        elif self._strategy == "candidate":
            if self._candidate_logger.insert(element):
                self.stats.candidates_logged += 1
        else:
            self._full_logger.insert(element)
        self._charge_online(checkpoint)
        self.stats.inserts += 1
        self._ops_since_refresh += 1
        if self._policy.should_refresh(self._ops_since_refresh, self.pending_log_elements):
            self.refresh()

    def insert_many(self, elements) -> None:
        for element in elements:
            self.insert(element)

    def refresh(self) -> RefreshResult | None:
        """Run the deferred refresh (the offline phase); no-op if immediate."""
        if self._strategy == "immediate":
            self._ops_since_refresh = 0
            return None
        # Flushing the log's partial tail block is log-phase work: the
        # paper books all log writes as online cost (Sec. 6.2), and the
        # refresh would otherwise absorb the last block's write.
        online_mark = self._checkpoint()
        if self._candidate_logger is not None:
            self._candidate_logger.log.flush()
        else:
            self._full_logger.log.flush()
        self._charge_online(online_mark)
        checkpoint = self._checkpoint()
        if self._strategy == "candidate":
            source = self._candidate_logger.source()
            result = self._algorithm.refresh(self._sample, source, self._rng)
            self._candidate_logger.after_refresh()
        else:
            if isinstance(self._algorithm, NaiveFullRefresh):
                # The naive full refresh scans the raw log itself.
                from repro.core.logs import CandidateLogSource

                algorithm = NaiveFullRefresh(
                    self._full_logger.dataset_size_at_last_refresh
                )
                source = CandidateLogSource(self._full_logger.log)
                result = algorithm.refresh(self._sample, source, self._rng)
            else:
                source = self._full_logger.source(self._sample.size, self._rng)
                result = self._algorithm.refresh(self._sample, source, self._rng)
            self._full_logger.after_refresh()
        self._charge_offline(checkpoint)
        self.stats.refreshes += 1
        self.stats.displaced_total += result.displaced
        self._ops_since_refresh = 0
        self._policy.notify_refresh()
        return result

    # -- durability (see repro.storage.superblock) ------------------------------

    def checkpoint_state(self) -> "MaintenanceCheckpoint":
        """Capture a durable, exactly-resumable snapshot of this maintainer.

        Flushes the log's partial tail first (booked online, like any log
        write) so the on-disk log matches the recorded element count.  Pair
        with :class:`repro.storage.superblock.CheckpointStore` to persist,
        and :meth:`from_checkpoint` to resume.
        """
        from repro.storage.superblock import MaintenanceCheckpoint

        online_mark = self._checkpoint()
        pending = None
        if self._candidate_logger is not None:
            self._candidate_logger.log.flush()
            log_count = len(self._candidate_logger.log)
            dataset_at_refresh = self._candidate_logger.dataset_size
            pending = self._candidate_logger._sampler.pending_accept
        elif self._full_logger is not None:
            self._full_logger.log.flush()
            log_count = len(self._full_logger.log)
            dataset_at_refresh = self._full_logger.dataset_size_at_last_refresh
        else:
            log_count = 0
            dataset_at_refresh = self._reservoir.seen
            pending = self._reservoir.pending_accept
        self._charge_online(online_mark)
        seed, spawn_count, state, w = MaintenanceCheckpoint.capture_rng(self._rng)
        return MaintenanceCheckpoint(
            strategy=self._strategy,
            sample_size=self._sample.size,
            dataset_size=self.dataset_size,
            dataset_size_at_refresh=dataset_at_refresh,
            log_count=log_count,
            inserts=self.stats.inserts,
            refreshes=self.stats.refreshes,
            pending_accept=pending,
            ops_since_refresh=self._ops_since_refresh,
            rng_seed=seed,
            rng_spawn_count=spawn_count,
            rng_state=state,
            rng_w=w,
        )

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint: "MaintenanceCheckpoint",
        sample: SampleFile,
        log: LogFile | None = None,
        algorithm: RefreshAlgorithm | None = None,
        policy: RefreshPolicy | None = None,
        cost_model: CostModel | None = None,
        skip_method: str = "auto",
    ) -> "SampleMaintainer":
        """Resume maintenance from a checkpoint: bit-exact continuation.

        ``sample`` must be the original (or recovered) sample file;
        ``log`` a fresh :class:`LogFile` over the original log device --
        its on-disk contents are re-attached via
        :meth:`~repro.storage.files.LogFile.reopen`.  The restored PRNG
        state makes every subsequent acceptance decision identical to an
        uninterrupted run.
        """
        if checkpoint.sample_size != sample.size:
            raise ValueError(
                f"checkpoint is for sample size {checkpoint.sample_size}, "
                f"got a sample of size {sample.size}"
            )
        rng = checkpoint.restore_rng()
        if checkpoint.strategy != "immediate":
            if log is None:
                raise ValueError(
                    f"strategy {checkpoint.strategy!r} requires the log file"
                )
            log.reopen(checkpoint.log_count)
        maintainer = cls(
            sample,
            rng,
            strategy=checkpoint.strategy,
            initial_dataset_size=checkpoint.dataset_size_at_refresh,
            log=log,
            algorithm=algorithm,
            policy=policy,
            cost_model=cost_model,
            skip_method=skip_method,
        )
        # Restore the counters the constructor cannot know.
        if maintainer._reservoir is not None:
            maintainer._reservoir._seen = checkpoint.dataset_size
            maintainer._reservoir.pending_accept = checkpoint.pending_accept
        elif maintainer._candidate_logger is not None:
            sampler = maintainer._candidate_logger._sampler
            sampler._seen = checkpoint.dataset_size
            sampler.pending_accept = checkpoint.pending_accept
        else:
            maintainer._full_logger._dataset_size = checkpoint.dataset_size
        maintainer.stats.inserts = checkpoint.inserts
        maintainer.stats.refreshes = checkpoint.refreshes
        maintainer._ops_since_refresh = checkpoint.ops_since_refresh
        return maintainer

    # -- cost accounting -------------------------------------------------------

    def _checkpoint(self) -> AccessStats | None:
        if self._cost_model is None:
            return None
        return self._cost_model.checkpoint()

    def _charge_online(self, checkpoint: AccessStats | None) -> None:
        if checkpoint is not None:
            self.stats.online.add(self._cost_model.since(checkpoint))

    def _charge_offline(self, checkpoint: AccessStats | None) -> None:
        if checkpoint is not None:
            self.stats.offline.add(self._cost_model.since(checkpoint))
