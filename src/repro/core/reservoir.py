"""Reservoir sampling (Vitter's Algorithm R with skip-based acceleration).

All maintenance strategies in the paper are built on the reservoir scheme
(Sec. 2): the first ``M`` elements fill the sample; afterwards the ``t+1``-th
element replaces a uniformly random sample slot with probability
``M / (t+1)``.  Two operational modes matter here:

* :meth:`ReservoirSampler.offer` performs the full step -- acceptance test
  *and* victim-slot choice -- and is what **immediate** maintenance uses;
* :meth:`ReservoirSampler.test` performs the acceptance test only, which is
  the **candidate logging** primitive (Sec. 3.2): the victim slot is chosen
  later, during refresh.

Acceptance is computed via Vitter's skip variates (Algorithms X/Z, [4]),
so long streams pay O(candidates), not O(elements); ``skip_method="r"``
switches to the literal one-Bernoulli-per-element Algorithm R, which tests
use to validate the skip-based path.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

from repro.rng.random_source import RandomSource

__all__ = ["ReservoirSampler", "build_reservoir"]

T = TypeVar("T")


class ReservoirSampler:
    """Stateful reservoir acceptance over a growing dataset.

    The sampler tracks how many elements it has seen (``|R|`` in the paper)
    and decides, per arriving element, whether it becomes a candidate.  It
    does **not** store the sample itself -- the sample lives on disk (a
    :class:`~repro.storage.files.SampleFile`) or wherever the caller keeps
    it; the sampler reports slots/acceptances.

    ``initial_size`` seeds the dataset-size counter for datasets that
    already contain elements (the paper's experiments start with
    ``|R| = 1M`` and a full sample).
    """

    def __init__(
        self,
        capacity: int,
        rng: RandomSource,
        initial_size: int = 0,
        skip_method: str = "auto",
    ) -> None:
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        if initial_size < 0:
            raise ValueError("initial_size must be non-negative")
        if skip_method not in ("auto", "x", "z", "r"):
            raise ValueError(f"unknown skip method: {skip_method!r}")
        if 0 < initial_size < capacity:
            raise ValueError(
                "initial_size must be 0 (empty) or >= capacity (full sample); "
                "partially filled disk samples are not meaningful here"
            )
        self._capacity = capacity
        self._rng = rng
        self._seen = initial_size
        self._skip_method = skip_method
        # Position (1-based count) of the next accepted element, or None if
        # it has not been determined yet.
        self._next_accept: int | None = None

    @property
    def capacity(self) -> int:
        """Sample size ``M``."""
        return self._capacity

    @property
    def seen(self) -> int:
        """Dataset size ``|R|``: elements processed so far."""
        return self._seen

    @property
    def filling(self) -> bool:
        """True while the first ``M`` elements are still being collected."""
        return self._seen < self._capacity

    @property
    def pending_accept(self) -> int | None:
        """Precomputed 1-based position of the next accepted element.

        Skip-based acceptance holds one pending draw between elements;
        checkpoint/recovery (see :mod:`repro.storage.superblock`) must
        persist it for bit-exact resumption.
        """
        return self._next_accept

    @pending_accept.setter
    def pending_accept(self, value: int | None) -> None:
        if value is not None and value <= self._seen:
            raise ValueError(
                f"pending accept position {value} is not in the future "
                f"(seen={self._seen})"
            )
        self._next_accept = value

    def offer(self, _element: T = None) -> int | None:
        """Process one arriving element; return its sample slot or ``None``.

        While filling, every element is accepted into the next free slot.
        Afterwards the element is accepted with probability ``M/(|R|+1)``
        into a uniformly random slot.  The element value itself is not
        needed -- only the caller knows where the sample lives -- but may
        be passed for readability.
        """
        if self._seen < self._capacity:
            slot = self._seen
            self._seen += 1
            return slot
        if self._accept_next():
            return self._rng.randrange(self._capacity)
        return None

    def test(self, _element: T = None) -> bool:
        """Acceptance test only (the candidate-logging primitive).

        Raises while the sampler is still filling: candidate logging only
        makes sense once an initial sample exists (Sec. 3 assumes "a
        uniform random sample of size M has been computed already").
        """
        if self._seen < self._capacity:
            raise RuntimeError(
                "candidate test before the initial sample is complete; "
                "build the sample first (e.g. with build_reservoir())"
            )
        return self._accept_next()

    def _accept_next(self) -> bool:
        """Advance ``seen`` by one; True if that element is a candidate."""
        if self._skip_method == "r":
            # Literal Algorithm R: one Bernoulli per element.
            self._seen += 1
            return self._rng.random() * self._seen < self._capacity
        if self._next_accept is None:
            skip = self._rng.reservoir_skip(
                self._capacity, self._seen, method=self._skip_method
            )
            self._next_accept = self._seen + skip + 1
        self._seen += 1
        if self._seen == self._next_accept:
            self._next_accept = None
            return True
        return False

    # -- batched acceptance (the skip-jumping fast path) ---------------------

    def test_many(
        self, n: int, max_accepts: int | None = None
    ) -> tuple[int, list[int]]:
        """Acceptance-test up to ``n`` arrivals in one call.

        Returns ``(consumed, accepted)`` where ``accepted`` holds the
        0-based indexes *within the consumed prefix* that became
        candidates.  ``consumed < n`` only when ``max_accepts`` was
        reached -- then the call stops right after the accepting element,
        leaving the sampler in exactly the state ``consumed`` scalar
        :meth:`test` calls would have left it in.

        The skip variates are drawn lazily in the same order as the
        scalar path, so for a given PRNG state the accepted positions
        (and the PRNG state afterwards) are bit-identical to per-element
        :meth:`test` calls; Python work is O(accepted), not O(n).
        """
        if self._seen < self._capacity:
            raise RuntimeError(
                "candidate test before the initial sample is complete; "
                "build the sample first (e.g. with build_reservoir())"
            )
        if n < 0:
            raise ValueError("batch size must be non-negative")
        if max_accepts is not None and max_accepts <= 0:
            raise ValueError("max_accepts must be positive (or None)")
        if self._skip_method == "r":
            return self._test_many_bernoulli(n, max_accepts)
        start = self._seen
        end = start + n
        pos = start
        accepted: list[int] = []
        next_accept = self._next_accept
        while True:
            if next_accept is None:
                if pos >= end:
                    break
                # Lazy draw, exactly as the scalar path: drawn at the
                # arrival of element pos+1 with ``seen`` still == pos.
                skip = self._rng.reservoir_skip(
                    self._capacity, pos, method=self._skip_method
                )
                next_accept = pos + skip + 1
            if next_accept <= end:
                accepted.append(next_accept - start - 1)
                pos = next_accept
                next_accept = None
                if max_accepts is not None and len(accepted) >= max_accepts:
                    break
            else:
                pos = end
                break
        self._seen = pos
        self._next_accept = next_accept
        return pos - start, accepted

    def _test_many_bernoulli(
        self, n: int, max_accepts: int | None
    ) -> tuple[int, list[int]]:
        """Literal Algorithm R fallback: one draw per element, batched."""
        accepted: list[int] = []
        seen = self._seen
        capacity = self._capacity
        random = self._rng.random
        consumed = 0
        for i in range(n):
            seen += 1
            consumed += 1
            if random() * seen < capacity:
                accepted.append(i)
                if max_accepts is not None and len(accepted) >= max_accepts:
                    break
        self._seen = seen
        return consumed, accepted

    def offer_many(
        self, n: int, max_accepts: int | None = None
    ) -> tuple[int, list[tuple[int, int]]]:
        """Batched :meth:`offer`: returns ``(consumed, [(index, slot), ...])``.

        ``index`` is the 0-based position within the consumed prefix,
        ``slot`` the sample slot the element replaces.  Victim-slot draws
        are interleaved with the skip draws exactly as scalar
        :meth:`offer` interleaves them, so the variate stream -- and thus
        every later decision -- is bit-identical to the scalar path.
        """
        if n < 0:
            raise ValueError("batch size must be non-negative")
        if max_accepts is not None and max_accepts <= 0:
            raise ValueError("max_accepts must be positive (or None)")
        placed: list[tuple[int, int]] = []
        consumed = 0
        while self._seen < self._capacity and consumed < n:
            placed.append((consumed, self._seen))
            self._seen += 1
            consumed += 1
            if max_accepts is not None and len(placed) >= max_accepts:
                return consumed, placed
        if consumed >= n:
            return consumed, placed
        if self._skip_method == "r":
            return self._offer_many_bernoulli(n, consumed, placed, max_accepts)
        start = self._seen
        end = start + (n - consumed)
        pos = start
        next_accept = self._next_accept
        while True:
            if next_accept is None:
                if pos >= end:
                    break
                skip = self._rng.reservoir_skip(
                    self._capacity, pos, method=self._skip_method
                )
                next_accept = pos + skip + 1
            if next_accept <= end:
                # Slot draw happens at acceptance time, before the next
                # skip draw -- the scalar ordering.
                slot = self._rng.randrange(self._capacity)
                placed.append((consumed + next_accept - start - 1, slot))
                pos = next_accept
                next_accept = None
                if max_accepts is not None and len(placed) >= max_accepts:
                    break
            else:
                pos = end
                break
        self._seen = pos
        self._next_accept = next_accept
        return consumed + pos - start, placed

    def _offer_many_bernoulli(
        self,
        n: int,
        consumed: int,
        placed: list[tuple[int, int]],
        max_accepts: int | None,
    ) -> tuple[int, list[tuple[int, int]]]:
        seen = self._seen
        capacity = self._capacity
        random = self._rng.random
        for i in range(consumed, n):
            seen += 1
            consumed += 1
            if random() * seen < capacity:
                placed.append((i, self._rng.randrange(capacity)))
                if max_accepts is not None and len(placed) >= max_accepts:
                    self._seen = seen
                    return consumed, placed
        self._seen = seen
        return consumed, placed


def build_reservoir(
    items: Iterable[T],
    capacity: int,
    rng: RandomSource,
    skip_method: str = "auto",
) -> tuple[list[T], int]:
    """Compute an initial reservoir sample of ``items`` in one pass.

    Returns ``(sample, dataset_size)``.  This is the "sample has been
    computed already" precondition of Sec. 3; use it to initialise a
    :class:`~repro.storage.files.SampleFile` before starting maintenance.
    """
    sampler = ReservoirSampler(capacity, rng, skip_method=skip_method)
    sample: list[T] = []
    for item in items:
        slot = sampler.offer(item)
        if slot is None:
            continue
        if slot == len(sample):
            sample.append(item)
        else:
            sample[slot] = item
    return sample, sampler.seen


def merge_into_sample(sample: list[T], slot: int, element: T) -> None:
    """Apply one accepted element to an in-memory sample list."""
    if slot == len(sample):
        sample.append(element)
    elif 0 <= slot < len(sample):
        sample[slot] = element
    else:
        raise IndexError(f"slot {slot} invalid for sample of size {len(sample)}")


def sample_is_plausible(
    sample: Sequence[T], capacity: int, seen: int, kind=None
) -> bool:
    """Cheap structural invariant used by tests: correct size bookkeeping.

    For a uniform reservoir (``kind=None``) the sample must hold exactly
    ``min(capacity, seen)`` rows.  Passing a :class:`~repro.core.kinds.SampleKind`
    additionally checks that kind's per-row invariants (weighted: finite
    non-negative keys at or below the stale threshold; window: each row's
    sequence maps to its slot and is below ``seen``).
    """
    if seen < 0 or capacity <= 0:
        return False
    expected = min(capacity, seen)
    if len(sample) != expected:
        return False
    if kind is None:
        return True
    return kind.plausible(sample, seen)
