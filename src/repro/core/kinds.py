"""Pluggable sample kinds: uniform, weighted (A-ES) and sliding-window.

The paper states deferred maintenance for *uniform* reservoirs, but the
decomposition it rests on -- an **acceptance test** at insert time, a
**victim-slot choice** at refresh time, and a candidate log in between --
generalises to other sampling schemes.  This module owns that
generalisation: a :class:`SampleKind` captures, per scheme,

* what a stored **row** is (value plus kind payload: A-ES key, arrival
  sequence) and which codec serialises it;
* the **acceptance test** run at insert time against *stale* state (state
  as of the last refresh), which decides what enters the candidate log;
* the **replay** run at refresh time, which folds logged candidates into
  the on-disk sample and picks victim slots.

Deferred-maintenance proof obligations (checked bit-exactly by
``tests/properties/test_prop_kinds.py``; see ``docs/sample_kinds.md``):

* **uniform** -- the classic scheme; acceptance via Vitter skips, victim
  slots drawn at refresh.  Handled by the existing
  :class:`~repro.core.logs.CandidateLogger` path; :class:`UniformKind`
  is a marker so catalogs and manifests can name it.
* **weighted** (:class:`WeightedKind`) -- A-ES exponential keys: each
  record draws exactly one uniform and gets the key ``-ln(1-u)/w``; the
  sample holds the ``M`` *smallest* keys.  The insert-time acceptance
  test compares against the stale threshold (the sample's max key as of
  the last refresh).  Because the live threshold is non-increasing, the
  log is a superset of every eagerly-accepted record, and the refresh
  replay -- which re-filters against the evolving threshold -- lands on
  exactly the eager sample.  The victim slot is the arg-max key, so no
  refresh-time randomness is needed and the PRNG stream (one draw per
  record) is identical between the eager and deferred paths.
* **window** (:class:`WindowKind`) -- the last ``W`` rows; fully
  deterministic (no RNG draws at all).  Every arriving row is accepted
  and logged with its arrival sequence; expiry happens at refresh time
  from the log: only the last ``min(pending, W)`` logged rows can be
  live, and each maps to the fixed slot ``seq mod W``.

Composite kinds (one logical sample made of many per-group reservoirs)
are registered in :data:`COMPOSITE_KINDS` and built with
:func:`make_composite`; they cannot live in a single
:class:`~repro.storage.files.SampleFile` and are therefore rejected by
:func:`make_kind` with a pointer to the composite factory.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Protocol, Sequence

from repro.core.logs import CandidateLogSource
from repro.rng.random_source import RandomSource
from repro.storage.files import LogFile
from repro.storage.records import (
    IntRecordCodec,
    RecordCodec,
    TimestampedRecordCodec,
    WeightedRecordCodec,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.stratified import StratifiedSampleManager
    from repro.storage.superblock import MaintenanceCheckpoint

__all__ = [
    "SampleKind",
    "UniformKind",
    "WeightedKind",
    "WindowKind",
    "KindCandidateLogger",
    "KINDS",
    "COMPOSITE_KINDS",
    "DEFAULT_WEIGHT_MOD",
    "parse_kind_spec",
    "make_kind",
    "make_composite",
    "eager_oracle",
]

#: Registered single-file kinds, in manifest index order.  The position
#: of a name in this tuple is serialised into superblock manifests
#: (version 3+), so entries must never be reordered, only appended.
KINDS = ("uniform", "weighted", "window")

#: Registered composite kinds: one logical sample spread over many
#: per-group reservoirs.  Built via :func:`make_composite`, not
#: :func:`make_kind` -- they have no single-file row representation.
COMPOSITE_KINDS = ("stratified",)

DEFAULT_WEIGHT_MOD = 16


class SampleKind(Protocol):
    """The per-scheme contract the maintenance stack drives.

    A kind owns the mutable per-sample state that insert-time acceptance
    depends on (dataset size, stale threshold, next arrival sequence).
    One kind instance belongs to one sample; the candidate logger and the
    refresh algorithm share it.
    """

    name: str

    @property
    def capacity(self) -> int:  # pragma: no cover - protocol
        ...

    @property
    def seen(self) -> int:  # pragma: no cover - protocol
        ...

    def params(self) -> dict:  # pragma: no cover - protocol
        ...

    def spec(self) -> str:  # pragma: no cover - protocol
        ...

    def codec(self, record_size: int) -> RecordCodec:  # pragma: no cover
        ...

    def value_of(self, row) -> int:  # pragma: no cover - protocol
        ...

    def population(self) -> int:  # pragma: no cover - protocol
        ...

    def effective_staleness(self, pending: int) -> int:  # pragma: no cover
        ...

    def build_initial(self, dataset: Sequence[int], rng: RandomSource) -> list:
        ...  # pragma: no cover - protocol

    def draw(self, element: int, rng: RandomSource):  # pragma: no cover
        ...

    def accept(self, record) -> bool:  # pragma: no cover - protocol
        ...

    def replay_start(self, total: int) -> int:  # pragma: no cover - protocol
        ...

    def begin_replay(self, rows: list):  # pragma: no cover - protocol
        ...

    def commit_replay(self, replay) -> None:  # pragma: no cover - protocol
        ...

    def checkpoint_fields(self) -> tuple[int, float]:  # pragma: no cover
        ...

    def restore_state(self, checkpoint: "MaintenanceCheckpoint") -> None:
        ...  # pragma: no cover - protocol

    def plausible(self, rows: Sequence, seen: int) -> bool:  # pragma: no cover
        ...


# ---------------------------------------------------------------------------
# Uniform (the classic scheme; a marker for catalogs and manifests)
# ---------------------------------------------------------------------------


class UniformKind:
    """The paper's uniform reservoir, as a registry entry.

    Maintenance of uniform samples stays on the pre-kind code path
    (:class:`~repro.core.logs.CandidateLogger` + the unmodified refresh
    algorithms) -- this class only gives that path a name, parameters and
    a codec so kind-aware catalogs and manifests treat "uniform" like any
    other kind.  Runs configured with it are byte-identical to runs that
    never mention kinds at all.
    """

    name = "uniform"

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("sample capacity must be positive")
        self._capacity = capacity

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def seen(self) -> int:
        # The reservoir sampler owns the dataset-size counter on the
        # uniform path; the kind object is never consulted for it.
        raise NotImplementedError("uniform maintenance tracks seen in the sampler")

    def params(self) -> dict:
        return {}

    def spec(self) -> str:
        return "uniform"

    def codec(self, record_size: int) -> RecordCodec:
        return IntRecordCodec(record_size)

    def value_of(self, row) -> int:
        return row

    def effective_staleness(self, pending: int) -> int:
        return pending

    def checkpoint_fields(self) -> tuple[int, float]:
        return 0, 0.0

    def restore_state(self, checkpoint) -> None:
        return None

    def plausible(self, rows: Sequence, seen: int) -> bool:
        return all(isinstance(row, int) for row in rows)


# ---------------------------------------------------------------------------
# Weighted reservoir (A-ES exponential keys)
# ---------------------------------------------------------------------------


class _WeightedReplay:
    """Evolving-threshold application of weighted records to sample rows.

    This is the *eager* maintenance rule -- keep the ``M`` smallest keys,
    evict the arg-max -- applied in memory.  The deferred refresh runs it
    over the candidate log; the immediate oracle runs it per arrival.
    The max-key lookup is a lazy-invalidation heap: stale entries (slots
    whose key has since shrunk) are popped on sight, ties break on the
    lower slot, so the victim choice is deterministic.
    """

    __slots__ = ("_rows", "_keys", "_heap")

    def __init__(self, rows: list) -> None:
        self._rows = rows
        self._keys = [row[1] for row in rows]
        self._heap = [(-key, slot) for slot, key in enumerate(self._keys)]
        heapq.heapify(self._heap)

    def _peek_max(self) -> tuple[float, int]:
        heap = self._heap
        keys = self._keys
        while True:
            neg_key, slot = heap[0]
            if keys[slot] == -neg_key:
                return -neg_key, slot
            heapq.heappop(heap)

    @property
    def max_key(self) -> float:
        """The live threshold: the largest key currently in the sample."""
        return self._peek_max()[0]

    def step(self, record) -> int | None:
        """Apply one record; returns the displaced slot, or None."""
        key = record[1]
        max_key, slot = self._peek_max()
        if key < max_key:
            self._rows[slot] = record
            self._keys[slot] = key
            heapq.heapreplace(self._heap, (-key, slot))
            return slot
        return None


class WeightedKind:
    """Weighted reservoir via A-ES exponential keys, one draw per record.

    A record of value ``v`` has weight ``w(v) = 1 + (v mod weight_mod)``
    and key ``-ln(1-u)/w(v)`` for a single uniform ``u``; the sample is
    the ``M`` records with the smallest keys (equivalently, A-ES keeps
    the largest ``u^(1/w)``).  The classic A-ES *exponential jump* skips
    rejected records without drawing for them -- but the jump length
    depends on the live threshold, which deferred maintenance does not
    know between refreshes.  This implementation deliberately trades the
    jump for one draw per record, which buys the property everything
    here is built on: the eager path, the deferred path, the scalar path
    and the batch path all consume the identical PRNG stream.
    """

    name = "weighted"

    def __init__(self, capacity: int, weight_mod: int = DEFAULT_WEIGHT_MOD) -> None:
        if capacity <= 0:
            raise ValueError("sample capacity must be positive")
        if weight_mod <= 0:
            raise ValueError("weight_mod must be positive")
        self._capacity = capacity
        self._mod = weight_mod
        self._seen = 0
        #: stale acceptance threshold: the sample's max key as of the
        #: last refresh (+inf before the initial sample exists)
        self._threshold = math.inf

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def seen(self) -> int:
        return self._seen

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def weight_mod(self) -> int:
        return self._mod

    def params(self) -> dict:
        return {"weight_mod": self._mod}

    def spec(self) -> str:
        if self._mod == DEFAULT_WEIGHT_MOD:
            return "weighted"
        return f"weighted:{self._mod}"

    def codec(self, record_size: int) -> RecordCodec:
        return WeightedRecordCodec(record_size)

    def value_of(self, row) -> int:
        return row[0]

    def population(self) -> int:
        return self._seen

    def effective_staleness(self, pending: int) -> int:
        return pending

    def weight(self, value: int) -> int:
        return 1 + (value % self._mod)

    def draw(self, element: int, rng: RandomSource):
        """One record, one uniform: ``(value, -ln(1-u)/w)``."""
        u = rng.random()
        self._seen += 1
        return (element, -math.log(1.0 - u) / self.weight(element))

    def accept(self, record) -> bool:
        """Insert-time test against the *stale* threshold.

        Thresholds only shrink, so everything the eager rule would ever
        accept passes this test -- the log is a superset, re-filtered at
        refresh by the replay.
        """
        return record[1] < self._threshold

    def replay_start(self, total: int) -> int:
        return 0

    def begin_replay(self, rows: list) -> _WeightedReplay:
        return _WeightedReplay(rows)

    def commit_replay(self, replay: _WeightedReplay) -> None:
        self._threshold = replay.max_key

    def build_initial(self, dataset: Sequence[int], rng: RandomSource) -> list:
        """Eager A-ES over the initial dataset; returns the sample rows."""
        if len(dataset) < self._capacity:
            raise ValueError(
                f"initial dataset ({len(dataset)}) smaller than the "
                f"sample ({self._capacity})"
            )
        rows = [self.draw(value, rng) for value in dataset[: self._capacity]]
        replay = self.begin_replay(rows)
        for value in dataset[self._capacity :]:
            replay.step(self.draw(value, rng))
        self.commit_replay(replay)
        return rows

    def checkpoint_fields(self) -> tuple[int, float]:
        return self._mod, self._threshold

    def restore_state(self, checkpoint) -> None:
        if checkpoint.kind_param != self._mod:
            raise ValueError(
                f"checkpoint weight_mod {checkpoint.kind_param} != {self._mod}"
            )
        self._seen = checkpoint.dataset_size
        self._threshold = checkpoint.kind_threshold

    def plausible(self, rows: Sequence, seen: int) -> bool:
        if any(len(row) != 2 for row in rows):
            return False
        keys = [row[1] for row in rows]
        if any(key < 0 or not math.isfinite(key) for key in keys):
            return False
        # The stale threshold can only over-admit, never under-admit:
        # every live key must sit at or below it.
        return not math.isfinite(self._threshold) or max(keys) <= self._threshold


# ---------------------------------------------------------------------------
# Sliding window (last W rows; deterministic)
# ---------------------------------------------------------------------------


class _WindowReplay:
    """Apply window records to their fixed slots, newest sequence wins."""

    __slots__ = ("_rows", "_capacity")

    def __init__(self, rows: list, capacity: int) -> None:
        self._rows = rows
        self._capacity = capacity

    def step(self, record) -> int | None:
        slot = record[1] % self._capacity
        current = self._rows[slot]
        if current is None or current[1] < record[1]:
            self._rows[slot] = record
            return slot
        return None


class WindowKind:
    """The last ``W`` rows of the stream (``W`` = the sample capacity).

    Fully deterministic: a row with arrival sequence ``s`` lives in slot
    ``s mod W`` until the row with sequence ``s + W`` arrives.  Every
    arriving row is accepted and logged; *expiry is deferred* to refresh
    time, where only the last ``min(pending, W)`` logged rows are read
    back (:meth:`replay_start` skips the expired prefix without touching
    it).  Staleness in rows is therefore naturally capped at ``W`` --
    :meth:`effective_staleness` reports that cap, which is what makes
    ``bounded_staleness:k`` (and the ``bounded_expiry`` fraction form)
    well-defined for window samples.
    """

    name = "window"

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("sample capacity must be positive")
        self._capacity = capacity
        self._seen = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def seen(self) -> int:
        return self._seen

    def params(self) -> dict:
        return {"window": self._capacity}

    def spec(self) -> str:
        return "window"

    def codec(self, record_size: int) -> RecordCodec:
        return TimestampedRecordCodec(record_size)

    def value_of(self, row) -> int:
        return row[0]

    def population(self) -> int:
        return min(self._seen, self._capacity)

    def effective_staleness(self, pending: int) -> int:
        """Rows of the live window not yet applied from the log."""
        return min(pending, self._capacity)

    def expired_fraction(self, pending: int) -> float:
        """The window fraction the pending log has already expired."""
        return self.effective_staleness(pending) / self._capacity

    def draw(self, element: int, rng: RandomSource):
        record = (element, self._seen)
        self._seen += 1
        return record

    def accept(self, record) -> bool:
        return True

    def replay_start(self, total: int) -> int:
        """Logged rows older than the window are expired unread."""
        return max(0, total - self._capacity)

    def begin_replay(self, rows: list) -> _WindowReplay:
        return _WindowReplay(rows, self._capacity)

    def commit_replay(self, replay: _WindowReplay) -> None:
        return None

    def build_initial(self, dataset: Sequence[int], rng: RandomSource) -> list:
        if len(dataset) < self._capacity:
            raise ValueError(
                f"initial dataset ({len(dataset)}) smaller than the "
                f"window ({self._capacity})"
            )
        rows: list = [None] * self._capacity
        replay = self.begin_replay(rows)
        for value in dataset:
            replay.step(self.draw(value, rng))
        return rows

    def checkpoint_fields(self) -> tuple[int, float]:
        return self._capacity, 0.0

    def restore_state(self, checkpoint) -> None:
        if checkpoint.kind_param != self._capacity:
            raise ValueError(
                f"checkpoint window {checkpoint.kind_param} != {self._capacity}"
            )
        self._seen = checkpoint.dataset_size

    def plausible(self, rows: Sequence, seen: int) -> bool:
        if any(row is None or len(row) != 2 for row in rows):
            return False
        for slot, (_, seq) in enumerate(rows):
            if seq % self._capacity != slot or not 0 <= seq < seen:
                return False
        return True


# ---------------------------------------------------------------------------
# Kind-aware candidate logging (the log phase for non-uniform kinds)
# ---------------------------------------------------------------------------


class KindCandidateLogger:
    """Candidate logging driven by a :class:`SampleKind`.

    Interface-compatible with :class:`~repro.core.logs.CandidateLogger`
    (the uniform log phase), so :class:`~repro.core.maintenance.SampleMaintainer`
    drives either without branching.  The kind runs the acceptance test
    against its stale state and produces the full log record (value plus
    kind payload); acceptance draws happen element-wise -- exactly one
    per record for weighted, none for window -- so the batched path is
    draw-for-draw identical to scalar inserts, like the biased logger in
    :mod:`repro.core.acceptance`.
    """

    def __init__(self, log: LogFile, kind: SampleKind, rng: RandomSource) -> None:
        if kind.seen < kind.capacity:
            raise ValueError(
                "kind candidate logging requires an existing full sample: "
                f"seen {kind.seen} < capacity {kind.capacity}"
            )
        self._log = log
        self._kind = kind
        self._rng = rng

    @property
    def log(self) -> LogFile:
        return self._log

    @property
    def kind(self) -> SampleKind:
        return self._kind

    @property
    def dataset_size(self) -> int:
        return self._kind.seen

    @property
    def sample_size(self) -> int:
        return self._kind.capacity

    @property
    def pending_accept(self) -> None:
        """Kind acceptance draws are eager; nothing pends between records."""
        return None

    def insert(self, element) -> bool:
        """Log phase for one insertion; True if it became a candidate."""
        record = self._kind.draw(element, self._rng)
        if self._kind.accept(record):
            self._log.append(record)
            return True
        return False

    def insert_many(
        self, elements: Sequence, max_accepts: int | None = None
    ) -> tuple[int, int]:
        """Batched log phase: element-wise draws, one bulk append.

        Returns ``(consumed, accepted)`` with the same stop-after-the-
        accepting-element quota semantics as the uniform logger, so
        refresh policies fire at identical points under either path.
        """
        kind = self._kind
        rng = self._rng
        records: list = []
        consumed = 0
        for element in elements:
            consumed += 1
            record = kind.draw(element, rng)
            if kind.accept(record):
                records.append(record)
                if max_accepts is not None and len(records) >= max_accepts:
                    break
        if records:
            self._log.append_many(records)
        return consumed, len(records)

    def source(self) -> CandidateLogSource:
        """The candidate source for the coming refresh."""
        return CandidateLogSource(self._log)

    def after_refresh(self) -> None:
        """Reset the log for reuse (the refresh consumed it)."""
        self._log.truncate()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def parse_kind_spec(spec: str) -> tuple[str, int | None]:
    """Split ``"name"`` / ``"name:param"`` into ``(name, param)``."""
    name, _, arg = spec.partition(":")
    name = name.strip()
    if name not in KINDS and name not in COMPOSITE_KINDS:
        known = KINDS + COMPOSITE_KINDS
        raise ValueError(f"unknown sample kind {name!r} (known: {known})")
    if not arg:
        return name, None
    if name != "weighted":
        raise ValueError(f"kind {name!r} takes no parameter, got {arg!r}")
    return name, int(arg)


def make_kind(spec: str, capacity: int) -> SampleKind:
    """Build the kind a spec string names, bound to one sample's capacity.

    Specs: ``"uniform"``, ``"weighted"``, ``"weighted:MOD"`` (weight
    modulus), ``"window"``.  Composite kinds are registered but cannot
    be built here -- see :func:`make_composite`.
    """
    name, param = parse_kind_spec(spec)
    if name in COMPOSITE_KINDS:
        raise ValueError(
            f"kind {name!r} is composite (one sample file cannot hold it); "
            "build it with repro.core.kinds.make_composite()"
        )
    if name == "uniform":
        return UniformKind(capacity)
    if name == "weighted":
        if param is not None:
            return WeightedKind(capacity, weight_mod=param)
        return WeightedKind(capacity)
    return WindowKind(capacity)


def make_composite(name: str, **kwargs) -> "StratifiedSampleManager":
    """Build a registered composite kind (currently ``stratified``).

    A stratified sample is one bounded uniform reservoir *per group*,
    each under its own deferred maintenance -- see
    :class:`repro.core.stratified.StratifiedSampleManager`, whose
    constructor arguments are forwarded verbatim.
    """
    if name not in COMPOSITE_KINDS:
        raise ValueError(
            f"unknown composite kind {name!r} (known: {COMPOSITE_KINDS})"
        )
    from repro.core.stratified import StratifiedSampleManager

    return StratifiedSampleManager(**kwargs)


# ---------------------------------------------------------------------------
# The immediate-maintenance oracle (property-test reference)
# ---------------------------------------------------------------------------


def eager_oracle(
    kind: SampleKind, dataset: Sequence[int], elements: Sequence[int], rng: RandomSource
) -> list:
    """Immediate maintenance in memory: apply each arrival on the spot.

    This is the reference the deferred path is proven against: same
    initial build, then one :meth:`SampleKind.draw` plus one eager replay
    step per arriving element.  Because kinds draw element-wise, the
    PRNG stream here is identical to the deferred path's, and the
    bit-identity property (``tests/properties/test_prop_kinds.py``)
    checks rows *and* PRNG state after the deferred run's final refresh.
    """
    rows = kind.build_initial(dataset, rng)
    replay = kind.begin_replay(rows)
    for element in elements:
        replay.step(kind.draw(element, rng))
    kind.commit_replay(replay)
    return rows
