"""The paper's contribution: logging schemes and deferred refresh algorithms.

Layout mirrors the paper:

* :mod:`~repro.core.reservoir` -- reservoir sampling, the base scheme
  (Sec. 2, [4]);
* :mod:`~repro.core.logs` -- the log phase: full logging (Sec. 3.1),
  candidate logging (Sec. 3.2) and the update log (Sec. 5);
* :mod:`~repro.core.refresh` -- the refresh phase: naive algorithms
  (Sec. 3), Array/Stack/Nomem Refresh (Sec. 4) and the full-log adapter
  (Sec. 5);
* :mod:`~repro.core.maintenance` -- orchestration of both phases under a
  refresh policy (immediate / periodic / threshold / manual).
"""

from repro.core.acceptance import (
    BernoulliAcceptance,
    BiasedAcceptance,
    BiasedCandidateLogger,
    UniformAcceptance,
)
from repro.core.multi import FleetReport, MultiSampleManager
from repro.core.stratified import GroupSample, StratifiedSampleManager
from repro.core.reservoir import ReservoirSampler, build_reservoir
from repro.core.logs import (
    CandidateLogger,
    CandidateLogSource,
    FullLogger,
    FullLogSource,
    UpdateLogger,
)
from repro.core.maintenance import MaintenanceStats, SampleMaintainer
from repro.core.policies import (
    ManualPolicy,
    PeriodicPolicy,
    RefreshPolicy,
    ThresholdPolicy,
)
from repro.core.refresh import (
    ArrayRefresh,
    NaiveCandidateRefresh,
    NaiveFullRefresh,
    NomemRefresh,
    RefreshResult,
    StackRefresh,
)

__all__ = [
    "ReservoirSampler",
    "build_reservoir",
    "UniformAcceptance",
    "BiasedAcceptance",
    "BernoulliAcceptance",
    "BiasedCandidateLogger",
    "MultiSampleManager",
    "FleetReport",
    "StratifiedSampleManager",
    "GroupSample",
    "CandidateLogger",
    "CandidateLogSource",
    "FullLogger",
    "FullLogSource",
    "UpdateLogger",
    "SampleMaintainer",
    "MaintenanceStats",
    "RefreshPolicy",
    "PeriodicPolicy",
    "ThresholdPolicy",
    "ManualPolicy",
    "ArrayRefresh",
    "StackRefresh",
    "NomemRefresh",
    "NaiveCandidateRefresh",
    "NaiveFullRefresh",
    "RefreshResult",
]
