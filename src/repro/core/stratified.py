"""Stratified (group-by) samples with deferred maintenance.

Sec. 2 of the paper surveys database sampling schemes built on reservoir
sampling -- congressional samples for group-by queries, ICICLES, join
synopses -- and claims "these algorithms can be natively extended to
support fast deferred refresh using the techniques presented in this
paper."  This module cashes in that claim for the group-by case: one
bounded uniform sample *per group*, each maintained with candidate
logging and a deferred refresh algorithm, so small groups are not drowned
out by large ones (the failure mode of a single uniform sample that
congressional sampling addresses).

Groups appear dynamically.  A new group starts in a **filling** phase --
its first ``per_group_size`` elements go straight into its sample file,
which *is* the complete group at that point -- and switches to normal
deferred maintenance once full.  Per-group dataset sizes are tracked, so
group aggregates are estimable with the usual Horvitz-Thompson scaling.
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeVar

from repro.core.maintenance import SampleMaintainer
from repro.core.policies import RefreshPolicy
from repro.core.refresh.base import RefreshAlgorithm
from repro.core.refresh.stack import StackRefresh
from repro.rng.random_source import RandomSource
from repro.storage.block_device import SimulatedBlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.files import LogFile, SampleFile
from repro.storage.records import RecordCodec

__all__ = ["GroupSample", "StratifiedSampleManager"]

T = TypeVar("T")
K = TypeVar("K")


class GroupSample:
    """One group's bounded sample: filling first, then deferred maintenance."""

    def __init__(
        self,
        key,
        per_group_size: int,
        codec: RecordCodec,
        rng: RandomSource,
        cost_model: CostModel,
        algorithm: RefreshAlgorithm,
        policy_factory: Callable[[], RefreshPolicy] | None,
    ) -> None:
        self.key = key
        self._size = per_group_size
        self._codec = codec
        self._rng = rng
        self._cost = cost_model
        self._algorithm = algorithm
        self._policy_factory = policy_factory
        self._sample = SampleFile(
            SimulatedBlockDevice(cost_model, f"group-{key}-sample"),
            codec,
            per_group_size,
        )
        self._log_device = SimulatedBlockDevice(cost_model, f"group-{key}-log")
        self._maintainer: SampleMaintainer | None = None
        self._seen = 0

    @property
    def dataset_size(self) -> int:
        """Elements of this group seen so far."""
        return self._seen

    @property
    def filling(self) -> bool:
        return self._maintainer is None

    @property
    def sample_size(self) -> int:
        """Current number of valid sample elements (< M while filling)."""
        return min(self._seen, self._size)

    def insert(self, element: T) -> None:
        if self._maintainer is not None:
            self._maintainer.insert(element)
            self._seen += 1
            return
        # Filling phase: the sample IS the group so far.
        self._sample.write_random(self._seen, element)
        self._seen += 1
        if self._seen == self._size:
            self._promote()

    def _promote(self) -> None:
        """Switch from filling to deferred maintenance."""
        policy = self._policy_factory() if self._policy_factory else None
        self._maintainer = SampleMaintainer(
            self._sample,
            self._rng,
            strategy="candidate",
            initial_dataset_size=self._size,
            log=LogFile(self._log_device, self._codec),
            algorithm=self._algorithm,
            policy=policy,
            cost_model=self._cost,
        )

    def refresh(self) -> None:
        if self._maintainer is not None:
            self._maintainer.refresh()

    def contents(self) -> list[T]:
        """Valid sample elements (the whole group while filling).

        Uncharged read: the paper's cost accounting covers maintenance
        I/O only; query-side cost is the consumer's business.
        """
        return [self._sample.peek(i) for i in range(self.sample_size)]

    def estimate_sum(self, value_of: Callable[[T], float]) -> float:
        """Horvitz-Thompson estimate of ``sum(value_of)`` over the group."""
        contents = self.contents()
        if not contents:
            return 0.0
        sampled = sum(value_of(element) for element in contents)
        return sampled * (self._seen / len(contents))

    def estimate_mean(self, value_of: Callable[[T], float]) -> float:
        contents = self.contents()
        if not contents:
            raise ValueError(f"group {self.key!r} has no elements")
        return sum(value_of(e) for e in contents) / len(contents)


class StratifiedSampleManager:
    """Bounded uniform samples per group, maintained deferredly.

    Parameters
    ----------
    group_of:
        Maps an element to its group key.
    per_group_size:
        ``M`` for every group's sample.
    max_groups:
        Hard cap on distinct groups (protects against unbounded key
        domains); exceeding it raises.
    algorithm_factory / policy_factory:
        Per-group refresh algorithm and auto-refresh policy.
    """

    def __init__(
        self,
        group_of: Callable[[T], K],
        per_group_size: int,
        codec: RecordCodec,
        rng: RandomSource,
        cost_model: CostModel | None = None,
        algorithm_factory: Callable[[], RefreshAlgorithm] = StackRefresh,
        policy_factory: Callable[[], RefreshPolicy] | None = None,
        max_groups: int = 10_000,
    ) -> None:
        if per_group_size <= 0:
            raise ValueError("per_group_size must be positive")
        if max_groups <= 0:
            raise ValueError("max_groups must be positive")
        self._group_of = group_of
        self._size = per_group_size
        self._codec = codec
        self._rng = rng
        self._cost = cost_model if cost_model is not None else CostModel()
        self._algorithm_factory = algorithm_factory
        self._policy_factory = policy_factory
        self._max_groups = max_groups
        self._groups: dict[K, GroupSample] = {}
        self.inserts = 0

    @property
    def cost_model(self) -> CostModel:
        return self._cost

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, key: K) -> bool:
        return key in self._groups

    def keys(self) -> list[K]:
        return list(self._groups)

    def group(self, key: K) -> GroupSample:
        try:
            return self._groups[key]
        except KeyError:
            raise KeyError(f"no group {key!r}") from None

    def insert(self, element: T) -> K:
        """Route one element to its group's sample; returns the group key."""
        key = self._group_of(element)
        group = self._groups.get(key)
        if group is None:
            if len(self._groups) >= self._max_groups:
                raise RuntimeError(
                    f"group limit ({self._max_groups}) exceeded by key {key!r}"
                )
            group = GroupSample(
                key, self._size, self._codec, self._rng.spawn(f"group-{key}"),
                self._cost, self._algorithm_factory(), self._policy_factory,
            )
            self._groups[key] = group
        group.insert(element)
        self.inserts += 1
        return key

    def insert_many(self, elements: Iterable[T]) -> None:
        for element in elements:
            self.insert(element)

    def refresh_all(self) -> None:
        for group in self._groups.values():
            group.refresh()

    def group_sizes(self) -> dict[K, int]:
        """True per-group dataset sizes (tracked exactly)."""
        return {key: g.dataset_size for key, g in self._groups.items()}

    def estimate_group_sums(
        self, value_of: Callable[[T], float]
    ) -> dict[K, float]:
        """Group-by SUM estimate: one Horvitz-Thompson estimate per group."""
        return {
            key: group.estimate_sum(value_of)
            for key, group in self._groups.items()
        }

    def estimate_group_means(
        self, value_of: Callable[[T], float]
    ) -> dict[K, float]:
        return {
            key: group.estimate_mean(value_of)
            for key, group in self._groups.items()
        }
