"""Maintaining many samples at once.

The paper motivates disk-based samples partly by fleet effects: "the
overall memory consumption increases with the number of samples maintained
in-memory" (Sec. 1), and rejects the geometric file partly because "each
maintained sample requires its own buffer, the GF does not scale well with
the number of samples" (Sec. 2).  A system typically keeps one sample per
table, per group, or per materialized view -- so the *aggregate* refresh
memory across samples is what matters, and it is where Nomem Refresh's
zero-memory property pays off.

:class:`MultiSampleManager` coordinates many maintainers over one shared
cost model: broadcast or routed insertion, collective refresh, and
aggregate memory/I-O reporting.  The ``bench_ablation_many_samples``
benchmark uses it to show aggregate refresh memory growing linearly with
the fleet for Array Refresh and staying flat for Nomem.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.maintenance import SampleMaintainer
from repro.core.refresh.base import RefreshResult
from repro.storage.cost_model import AccessStats, CostModel
from repro.storage.memory import MemoryReport

__all__ = ["MultiSampleManager", "FleetReport"]


@dataclass
class FleetReport:
    """Aggregate view over one collective refresh."""

    results: dict[str, RefreshResult] = field(default_factory=dict)

    @property
    def total_displaced(self) -> int:
        return sum(r.displaced for r in self.results.values())

    @property
    def total_candidates(self) -> int:
        return sum(r.candidates for r in self.results.values())

    @property
    def peak_refresh_memory_bytes(self) -> int:
        """Sum of per-sample refresh memory peaks.

        Collective refreshes run one after another, so a scheduler could
        get away with the *max* instead; the sum is the honest number for
        systems refreshing samples concurrently (and matches the paper's
        "each sample requires its own buffer" framing for the GF).
        """
        return sum(r.memory.peak_bytes for r in self.results.values())

    def memory_by_sample(self) -> dict[str, MemoryReport]:
        return {name: r.memory for name, r in self.results.items()}


class MultiSampleManager:
    """A fleet of maintainers over one shared cost model.

    Samples are registered under unique names.  ``insert`` broadcasts to
    every sample by default; pass ``only=`` to route (e.g. per-group
    samples where each element belongs to one group).
    """

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self._cost_model = cost_model if cost_model is not None else CostModel()
        self._maintainers: dict[str, SampleMaintainer] = {}

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    def __len__(self) -> int:
        return len(self._maintainers)

    def __contains__(self, name: str) -> bool:
        return name in self._maintainers

    def names(self) -> list[str]:
        return list(self._maintainers)

    def add(self, name: str, maintainer: SampleMaintainer) -> None:
        """Register a maintainer under a unique name."""
        if name in self._maintainers:
            raise ValueError(f"sample {name!r} already registered")
        self._maintainers[name] = maintainer

    def get(self, name: str) -> SampleMaintainer:
        try:
            return self._maintainers[name]
        except KeyError:
            raise KeyError(f"no sample named {name!r}") from None

    def replace(self, name: str, maintainer: SampleMaintainer) -> None:
        """Swap in a new maintainer under an existing name.

        The recovery path uses this: after a crash, the serving catalog
        rebuilds a maintainer from its superblock checkpoint and swaps it
        in without disturbing the rest of the fleet (or the registration
        order, which iteration and reporting depend on).
        """
        if name not in self._maintainers:
            raise KeyError(f"no sample named {name!r}")
        self._maintainers[name] = maintainer

    def insert(self, element, only: "str | list[str] | None" = None) -> None:
        """Feed one element to all (or the named) samples."""
        for maintainer in self._targets(only):
            maintainer.insert(element)

    def insert_many(self, elements, only: "str | list[str] | None" = None) -> None:
        """Feed a batch to all (or the named) samples via the batch path.

        Delegates the whole batch to each maintainer's skip-based
        :meth:`~repro.core.maintenance.SampleMaintainer.insert_many`, so a
        fleet ingest pays O(accepted) Python-level work per sample instead
        of O(batch x fleet).  Processing maintainer-major instead of
        element-major changes nothing observable: every maintainer owns
        its PRNG and its devices, so it sees the same elements in the same
        order and makes bit-identical decisions, and the shared cost model
        only accumulates (order-independent) counters.
        """
        targets = self._targets(only)
        if len(targets) > 1 and not isinstance(elements, (list, tuple, range)):
            # One-shot iterables must be materialised before the fan-out.
            elements = list(elements)
        for maintainer in targets:
            maintainer.insert_many(elements)

    def refresh_all(self) -> FleetReport:
        """Refresh every sample; returns the aggregate report."""
        report = FleetReport()
        for name, maintainer in self._maintainers.items():
            result = maintainer.refresh()
            if result is not None:
                report.results[name] = result
        return report

    def pending_log_elements(self) -> dict[str, int]:
        return {
            name: maintainer.pending_log_elements
            for name, maintainer in self._maintainers.items()
        }

    def online_stats(self) -> AccessStats:
        """Aggregate online I/O across the fleet."""
        total = AccessStats()
        for maintainer in self._maintainers.values():
            total.add(maintainer.stats.online)
        return total

    def offline_stats(self) -> AccessStats:
        total = AccessStats()
        for maintainer in self._maintainers.values():
            total.add(maintainer.stats.offline)
        return total

    def _targets(self, only: "str | list[str] | None") -> list[SampleMaintainer]:
        if only is None:
            return list(self._maintainers.values())
        names = [only] if isinstance(only, str) else list(only)
        return [self.get(name) for name in names]
