"""Common interface and result type for refresh algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.core.logs import CandidateSource
from repro.rng.random_source import RandomSource
from repro.storage.files import SampleFile
from repro.storage.memory import MemoryReport

__all__ = ["RefreshAlgorithm", "RefreshResult"]


@dataclass
class RefreshResult:
    """What one refresh did, for experiments and assertions.

    ``displaced`` is the paper's ``Psi``: sample elements overwritten by a
    final candidate.  ``candidates`` is ``|C|``.  The I/O cost itself is
    charged to the sample/log cost model as the refresh runs; callers
    checkpoint around the call to isolate it.
    """

    candidates: int
    displaced: int
    memory: MemoryReport = field(default_factory=MemoryReport)

    @property
    def stable(self) -> int | None:
        """Stable elements, when the sample size is known to the caller."""
        return None  # computed by callers as M - displaced when needed

    def __post_init__(self) -> None:
        if self.candidates < 0:
            raise ValueError("candidates must be non-negative")
        if self.displaced < 0:
            raise ValueError("displaced must be non-negative")
        if self.displaced > self.candidates:
            raise ValueError(
                f"displaced ({self.displaced}) cannot exceed candidates "
                f"({self.candidates}): every displaced slot has a final candidate"
            )


@runtime_checkable
class RefreshAlgorithm(Protocol):
    """A deferred refresh strategy: apply a candidate source to the sample."""

    #: Human-readable name used in experiment tables.
    name: str

    def refresh(
        self,
        sample: SampleFile,
        source: CandidateSource,
        rng: RandomSource,
    ) -> RefreshResult:  # pragma: no cover - protocol
        ...
