"""Nomem Refresh (Sec. 4.3, Algorithm 3).

Stack Refresh must buffer the selected indexes because (a) it discovers
them in descending order and (b) the write phase needs to know *how many*
survivors there are before it can compute displacement probabilities.
Nomem Refresh removes the buffer: since the geometric skips ``X_k`` are
independent, they can be generated in the order the *forward* pass needs
them -- twice.  A first pass sums ``X = sum_{k=M-1..1} (X_k + 1)`` to find
the smallest candidate index ``|C| - X`` (and hence the survivor count);
then the PRNG state saved before the first pass is restored and the same
variates are regenerated one by one while walking the log forward.

Only the PRNG state (~2.5 KiB for MT19937) is ever held -- the Fig. 12
zero line -- at the cost of generating twice as many geometric variates
(2(M-1) of them, the Fig. 13 flat-but-higher CPU line).

A dedicated "geometric PRNG" stream is used for the skips, exactly as the
paper says ("store the state of the geometric PRNG"): the write phase's
displacement draws must not perturb the replayed skip sequence.
"""

from __future__ import annotations

from repro.core.logs import CandidateSource
from repro.core.refresh.base import RefreshResult
from repro.obs.api import maybe_span
from repro.rng.random_source import RandomSource
from repro.rng.sequential import SequentialSampler
from repro.storage.files import SampleFile
from repro.storage.memory import MemoryReport

__all__ = ["NomemRefresh", "span_of_gaps"]


def span_of_gaps(geom_rng: RandomSource, size: int) -> int:
    """Pass-1 of Algorithm 3: ``X = sum_{k=M-1..1} (X_k + 1)``.

    Exposed separately so the Fig. 13 CPU experiment can time Nomem's
    dominant cost (its ``2(M-1)`` geometric draws) in isolation.
    """
    span = 0
    for k in range(size - 1, 0, -1):
        span += geom_rng.geometric((size - k) / size) + 1
    return span


class NomemRefresh:
    """Algorithm 3 of the paper."""

    name = "nomem"

    #: Optional telemetry (see :mod:`repro.obs`); wired automatically by
    #: an instrumented :class:`~repro.core.maintenance.SampleMaintainer`.
    instrumentation = None

    def refresh(
        self,
        sample: SampleFile,
        source: CandidateSource,
        rng: RandomSource,
    ) -> RefreshResult:
        obs = self.instrumentation
        total = source.count()
        memory = MemoryReport()
        memory.account_prng_snapshots(1)
        if total == 0:
            return RefreshResult(candidates=0, displaced=0, memory=memory)

        size = sample.size
        geom_rng = rng.spawn("nomem-geometric")

        # Precomputation (pass 1 + pass-2 setup): pure PRNG work, no I/O.
        with maybe_span(
            obs, "refresh.precompute", algorithm=self.name, candidates=total
        ):
            # Pass 1: total span X of the M-1 inter-survivor gaps.
            state = geom_rng.snapshot()
            span = span_of_gaps(geom_rng, size)

            # Pass 2 setup: replay from the saved state.
            geom_rng.restore(state)
            index = total - span
            k = size - 1
            # Skip survivor indexes that fall before the log's start.
            while index < 1 and k >= 1:
                index += geom_rng.geometric((size - k) / size) + 1
                k -= 1
            remaining = k + 1  # survivors with index >= 1, including `index`

        # Write phase: selection sampling over positions; survivor indexes
        # are consumed in ascending order, so the log is read sequentially.
        with maybe_span(
            obs, "refresh.write", algorithm=self.name, displaced=remaining
        ):
            reader = source.open_reader()
            chooser = SequentialSampler(rng, n=remaining, total=size)
            displaced = remaining

            def displaced_items():
                nonlocal index, k
                for position in range(size):
                    if chooser.remaining == 0:
                        return
                    if chooser.take():
                        element = reader.read(index)
                        if k >= 1:
                            index += geom_rng.geometric((size - k) / size) + 1
                            k -= 1
                        yield position, element

            sample.write_sequential(displaced_items())
        return RefreshResult(candidates=total, displaced=displaced, memory=memory)
