"""Array Refresh (Sec. 4.1, Algorithm 1).

Precomputation: throw the candidate *indexes* ``1..|C|`` into an in-memory
array ``A`` of size ``M`` (each index lands on a uniform slot, later
indexes overwrite earlier ones).  A slot left empty is *stable*; a slot
holding index ``i`` will be overwritten by candidate ``i`` -- the *final*
candidate for that slot.

Write phase: scan the sample once; stable slots are skipped without being
read, displaced slots receive their final candidate.  With the optional
sort of ``A``'s non-empty entries (empty slots must not move!), the log is
also read in ascending order, i.e. sequentially.

Cost: ``Psi`` sequential log reads + ``Psi`` sequential sample writes with
``Psi <= min(M, |C|)``; memory: ``M`` 4-byte indexes (the Fig. 12 flat
line); CPU: O(M + |C|) plus the sort, which is what loses to Stack/Nomem
for large logs in Fig. 13.
"""

from __future__ import annotations

from repro.core.logs import CandidateSource
from repro.core.refresh.base import RefreshResult
from repro.obs.api import maybe_span
from repro.rng.random_source import RandomSource
from repro.storage.files import SampleFile
from repro.storage.memory import MemoryReport

__all__ = ["ArrayRefresh"]


class ArrayRefresh:
    """Algorithm 1 of the paper.

    ``sort=True`` (the default, and what the paper's experiments use)
    sorts the non-empty array entries so the candidate log is accessed
    sequentially.  ``sort=False`` keeps the raw assignment order and reads
    the log randomly -- the ablation `bench_ablation_sort` measures what
    that costs.
    """

    #: Optional telemetry (see :mod:`repro.obs`); wired automatically by
    #: an instrumented :class:`~repro.core.maintenance.SampleMaintainer`.
    instrumentation = None

    #: Optional non-uniform :class:`~repro.core.kinds.SampleKind`; wired
    #: automatically by a kind-aware SampleMaintainer.  When set, the
    #: refresh replays the kind's content-dependent victim rule and keeps
    #: Algorithm 1's write discipline: only the *final* record of each
    #: displaced slot is written, sequentially, in slot order.
    kind = None

    def __init__(self, sort: bool = True, kind=None) -> None:
        self._sort = sort
        if kind is not None:
            self.kind = kind

    @property
    def name(self) -> str:
        return "array" if self._sort else "array-unsorted"

    def refresh(
        self,
        sample: SampleFile,
        source: CandidateSource,
        rng: RandomSource,
    ) -> RefreshResult:
        if self.kind is not None:
            return self._refresh_kind(sample, source, rng)
        obs = self.instrumentation
        total = source.count()
        size = sample.size
        memory = MemoryReport()
        memory.account_indexes(size)  # A always has M entries
        if total == 0:
            return RefreshResult(candidates=0, displaced=0, memory=memory)

        # Precomputation: indexes 1..|C| land on uniform slots.  This is
        # the in-memory merge phase -- its span shows zero block I/O.
        with maybe_span(
            obs, "refresh.precompute", algorithm=self.name, candidates=total
        ):
            array = self.assign_slots(rng, size, total)
            if self._sort:
                self._sort_non_empty(array)

        # Write phase: log scan (sequential reads) interleaved with the
        # sample rewrite (sequential writes); the span's block delta
        # separates the two by access category.
        with maybe_span(obs, "refresh.write", algorithm=self.name) as span:
            if self._sort:
                result = self._write_sorted(sample, source, array, total, memory)
            else:
                result = self._write_unsorted(sample, source, array, total, memory)
            if span is not None:
                span.set("displaced", result.displaced)
        return result

    @staticmethod
    def assign_slots(rng: RandomSource, size: int, total: int) -> list[int | None]:
        """Precomputation phase: throw indexes ``1..total`` into ``A``.

        Exposed separately so the Fig. 13 CPU experiment can time the
        precomputation alone.
        """
        array: list[int | None] = [None] * size
        for index in range(1, total + 1):
            array[rng.randrange(size)] = index
        return array

    @staticmethod
    def _sort_non_empty(array: list[int | None]) -> None:
        """Sort the values among non-empty slots, leaving empties in place.

        Empty slots are "linked with stable elements which in turn should
        be distributed randomly" (Sec. 4.1) -- moving them would bias which
        positions stay stable.
        """
        occupied = [j for j, value in enumerate(array) if value is not None]
        values = sorted(array[j] for j in occupied)
        for slot, value in zip(occupied, values):
            array[slot] = value

    def _write_sorted(
        self,
        sample: SampleFile,
        source: CandidateSource,
        array: list[int | None],
        total: int,
        memory: MemoryReport,
    ) -> RefreshResult:
        reader = source.open_reader()

        def displaced_items():
            for slot, index in enumerate(array):
                if index is not None:
                    yield slot, reader.read(index)

        displaced = sum(1 for value in array if value is not None)
        sample.write_sequential(displaced_items())
        return RefreshResult(candidates=total, displaced=displaced, memory=memory)

    def _refresh_kind(
        self,
        sample: SampleFile,
        source: CandidateSource,
        rng: RandomSource,
    ) -> RefreshResult:
        """Algorithm 1's write discipline generalised to a non-uniform kind.

        The uniform precomputation throws candidate *indexes* at RNG-drawn
        slots; a kind's victims depend on sample *contents*, so the merge
        phase here is: scan the current rows once (sequential reads), run
        the kind's replay over the unexpired log tail (sequential reads),
        then write only the final record of each displaced slot -- one
        sequential ascending pass, exactly ``Psi <= min(M, |C|)`` writes.
        The replay consumes no randomness, so naive and array refreshes
        leave identical sample bytes *and* identical PRNG state.
        """
        kind = self.kind
        obs = self.instrumentation
        total = source.count()
        size = sample.size
        memory = MemoryReport()
        memory.account_indexes(size)  # the replay's per-slot key/seq state
        if total == 0:
            return RefreshResult(candidates=0, displaced=0, memory=memory)
        start = kind.replay_start(total)
        with maybe_span(
            obs, "refresh.write", algorithm=self.name, candidates=total
        ) as span:
            rows = list(sample.scan())
            replay = kind.begin_replay(rows)
            reader = source.open_reader()
            touched: set[int] = set()
            for ordinal in range(start + 1, total + 1):
                slot = replay.step(reader.read(ordinal))
                if slot is not None:
                    touched.add(slot)
            kind.commit_replay(replay)
            sample.write_sequential(
                (slot, rows[slot]) for slot in sorted(touched)
            )
            if span is not None:
                span.set("displaced", len(touched))
        return RefreshResult(candidates=total, displaced=len(touched), memory=memory)

    def _write_unsorted(
        self,
        sample: SampleFile,
        source: CandidateSource,
        array: list[int | None],
        total: int,
        memory: MemoryReport,
    ) -> RefreshResult:
        # Log access order follows slot order, which is random in index
        # space: each read is a random block access on the log device.
        log = getattr(source, "_log", None)
        if log is None:
            raise TypeError(
                "array-unsorted needs direct log access; use sort=True for "
                "adapter-based candidate sources"
            )

        def displaced_items():
            for slot, index in enumerate(array):
                if index is not None:
                    yield slot, log.read_one_random(index - 1)

        displaced = sum(1 for value in array if value is not None)
        sample.write_sequential(displaced_items())
        return RefreshResult(candidates=total, displaced=displaced, memory=memory)
