"""Closed-form quantities from Sections 3-4 of the paper.

These are the analytical checkpoints the experiments and tests assert
against:

* expected candidate-log size after ``n`` insertions (Sec. 3.2),
* per-slot displacement probability and expected number of displaced
  elements ``E(Psi)`` (Sec. 4.1),
* Stack Refresh selection/displacement probabilities (Sec. 4.2).
"""

from __future__ import annotations

import math

__all__ = [
    "expected_candidates",
    "expected_candidates_exact",
    "displacement_probability",
    "expected_displaced",
    "stack_selection_probability",
    "stack_write_probability",
]


def expected_candidates(sample_size: int, dataset_size: int, inserts: int) -> float:
    """``E(|C|) ~ M ln((|R|+n)/|R|)``: logarithmic candidate-log growth.

    The logarithmic approximation of the harmonic sum from Sec. 3.2; exact
    value in :func:`expected_candidates_exact`.
    """
    _check_positive(sample_size, "sample_size")
    if dataset_size < sample_size:
        raise ValueError("dataset must be at least as large as the sample")
    if inserts < 0:
        raise ValueError("inserts must be non-negative")
    return sample_size * math.log((dataset_size + inserts) / dataset_size)


def expected_candidates_exact(sample_size: int, dataset_size: int, inserts: int) -> float:
    """``E(|C|) = sum_{i=1..n} M/(|R|+i)`` via harmonic numbers.

    Uses ``H_k = digamma-free`` telescoping with :func:`math.lgamma`-grade
    precision through the recurrence ``H_a - H_b``; exact to float rounding.
    """
    _check_positive(sample_size, "sample_size")
    if dataset_size < sample_size:
        raise ValueError("dataset must be at least as large as the sample")
    if inserts < 0:
        raise ValueError("inserts must be non-negative")
    return sample_size * (_harmonic(dataset_size + inserts) - _harmonic(dataset_size))


def displacement_probability(sample_size: int, candidates: int) -> float:
    """``P(Psi_j = 1) = 1 - (1 - 1/M)^|C|`` (Sec. 4.1).

    Probability that any given sample slot is overwritten during a refresh
    that processes ``|C|`` candidates.
    """
    _check_positive(sample_size, "sample_size")
    if candidates < 0:
        raise ValueError("candidates must be non-negative")
    if sample_size == 1:
        # A one-slot sample is displaced by any candidate at all.
        return 0.0 if candidates == 0 else 1.0
    return -math.expm1(candidates * math.log1p(-1.0 / sample_size))


def expected_displaced(sample_size: int, candidates: int) -> float:
    """``E(Psi) = M (1 - (1 - 1/M)^|C|)`` (Sec. 4.1).

    The expected I/O volume of Array/Stack/Nomem Refresh: ``Psi``
    sequential log reads plus ``Psi`` sequential sample writes, with
    ``Psi <= min(M, |C|)``.
    """
    return sample_size * displacement_probability(sample_size, candidates)


def stack_selection_probability(sample_size: int, already_selected: int) -> float:
    """``p_k = (M - k)/M``: a reverse-scanned candidate survives (Sec. 4.2)."""
    _check_positive(sample_size, "sample_size")
    if not 0 <= already_selected <= sample_size:
        raise ValueError("already_selected out of range")
    return (sample_size - already_selected) / sample_size


def stack_write_probability(sample_size: int, position: int, remaining: int) -> float:
    """``q_{j,k} = k / (M - j + 1)``: position ``j`` (1-based) is displaced.

    ``remaining`` is the number of final candidates not yet written.
    """
    _check_positive(sample_size, "sample_size")
    if not 1 <= position <= sample_size:
        raise ValueError(f"position must be in [1, {sample_size}]")
    slots_left = sample_size - position + 1
    if not 0 <= remaining <= slots_left:
        raise ValueError(
            f"remaining candidates ({remaining}) exceed remaining slots ({slots_left})"
        )
    return remaining / slots_left


def _harmonic(k: int) -> float:
    """Harmonic number ``H_k`` with asymptotic expansion for large ``k``."""
    if k < 0:
        raise ValueError("harmonic numbers need k >= 0")
    if k < 64:
        return sum(1.0 / i for i in range(1, k + 1))
    euler_gamma = 0.5772156649015328606
    inv = 1.0 / k
    inv2 = inv * inv
    return (
        math.log(k)
        + euler_gamma
        + inv / 2.0
        - inv2 / 12.0
        + inv2 * inv2 / 120.0
    )


def _check_positive(value: int, name: str) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
