"""Naive refresh strategies (Sec. 3).

These are the paper's strawmen: correct, but they inherit reservoir
sampling's random sample I/O and write non-final candidates only to
overwrite them moments later.  They exist here as baselines for the cost
experiments and as behavioural oracles for the optimised algorithms (all
refresh strategies must leave the sample uniformly distributed).
"""

from __future__ import annotations

from repro.core.logs import CandidateLogSource, CandidateSource
from repro.core.refresh.base import RefreshResult
from repro.obs.api import maybe_span
from repro.rng.random_source import RandomSource
from repro.storage.files import SampleFile
from repro.storage.memory import MemoryReport

__all__ = ["NaiveFullRefresh", "NaiveCandidateRefresh"]


class NaiveCandidateRefresh:
    """Write every candidate to a random sample slot, in log order.

    ``|C|`` sequential log reads, ``|C|`` *random* sample writes -- and
    non-final candidates get overwritten by later ones (Sec. 3.2 calls out
    both inefficiencies; Sec. 4 removes them).
    """

    name = "naive-candidate"

    #: Optional telemetry (see :mod:`repro.obs`); wired automatically by
    #: an instrumented :class:`~repro.core.maintenance.SampleMaintainer`.
    instrumentation = None

    #: Optional non-uniform :class:`~repro.core.kinds.SampleKind`; wired
    #: automatically by a kind-aware SampleMaintainer.  When set, victim
    #: slots come from the kind's replay (content-dependent, no RNG)
    #: instead of uniform ``randrange`` draws.
    kind = None

    def __init__(self, kind=None) -> None:
        if kind is not None:
            self.kind = kind

    def refresh(
        self,
        sample: SampleFile,
        source: CandidateSource,
        rng: RandomSource,
    ) -> RefreshResult:
        if self.kind is not None:
            return self._refresh_kind(sample, source, rng)
        total = source.count()
        if total == 0:
            return RefreshResult(candidates=0, displaced=0)
        # No precomputation phase: the strawman goes straight to disk.
        with maybe_span(
            self.instrumentation,
            "refresh.write",
            algorithm=self.name,
            candidates=total,
        ) as span:
            reader = source.open_reader()
            touched: set[int] = set()
            for ordinal in range(1, total + 1):
                element = reader.read(ordinal)
                slot = rng.randrange(sample.size)
                # The naive strawman *is* random-write I/O -- that inefficiency
                # is the point of the Sec. 3 baselines, not a violation of the
                # Alg. 1-3 sequential-only claim.
                sample.write_random(slot, element)  # repro-lint: disable=IO001
                touched.add(slot)
            if span is not None:
                span.set("displaced", len(touched))
        return RefreshResult(
            candidates=total,
            displaced=len(touched),
            memory=MemoryReport(),
        )

    def _refresh_kind(
        self,
        sample: SampleFile,
        source: CandidateSource,
        rng: RandomSource,
    ) -> RefreshResult:
        """Naive replay for a non-uniform kind: write every displacement.

        The kind's victim choice is content-dependent, so (unlike the
        uniform strawman) the current rows must be read back first -- one
        sequential sample scan -- before the log replay.  Each replay
        step that displaces a slot is written immediately, non-final
        writes included: that is the naive baseline's signature cost.
        The replay itself consumes no randomness, so the PRNG stream is
        untouched by refresh for every non-uniform kind.
        """
        kind = self.kind
        total = source.count()
        if total == 0:
            return RefreshResult(candidates=0, displaced=0)
        start = kind.replay_start(total)
        with maybe_span(
            self.instrumentation,
            "refresh.write",
            algorithm=self.name,
            candidates=total,
        ) as span:
            rows = list(sample.scan())
            replay = kind.begin_replay(rows)
            reader = source.open_reader()
            touched: set[int] = set()
            for ordinal in range(start + 1, total + 1):
                record = reader.read(ordinal)
                slot = replay.step(record)
                if slot is not None:
                    # Naive pays the random write per displacement, same
                    # as the uniform strawman above.
                    sample.write_random(slot, record)  # repro-lint: disable=IO001
                    touched.add(slot)
            kind.commit_replay(replay)
            if span is not None:
                span.set("displaced", len(touched))
        return RefreshResult(
            candidates=total,
            displaced=len(touched),
            memory=MemoryReport(),
        )


class NaiveFullRefresh:
    """Reservoir sampling replayed over a full log (Sec. 3.1).

    Scans the whole log; each element is accepted with probability
    ``M/(|R|+i)`` and written to a random slot immediately.  This is
    literally "apply reservoir sampling subsequently to each of its
    elements".  Requires a :class:`CandidateLogSource`-style scan, so it
    accepts the raw log source plus the dataset size before the logged
    insertions.
    """

    name = "naive-full"

    #: Optional telemetry (see :mod:`repro.obs`); wired automatically by
    #: an instrumented :class:`~repro.core.maintenance.SampleMaintainer`.
    instrumentation = None

    def __init__(self, dataset_size_before: int) -> None:
        if dataset_size_before < 0:
            raise ValueError("dataset_size_before must be non-negative")
        self._dataset_size_before = dataset_size_before

    def refresh(
        self,
        sample: SampleFile,
        source: CandidateSource,
        rng: RandomSource,
    ) -> RefreshResult:
        if not isinstance(source, CandidateLogSource):
            raise TypeError(
                "NaiveFullRefresh scans a raw log; wrap the full log in a "
                "CandidateLogSource (its elements are ALL insertions)"
            )
        if self._dataset_size_before < sample.size:
            raise ValueError("dataset smaller than sample: nothing to refresh")
        with maybe_span(
            self.instrumentation, "refresh.write", algorithm=self.name
        ) as span:
            elements = source.scan_all()
            seen = self._dataset_size_before
            accepted = 0
            touched: set[int] = set()
            for element in elements:
                seen += 1
                if rng.random() * seen < sample.size:
                    slot = rng.randrange(sample.size)
                    # Same as above: the Sec. 3.1 baseline pays random writes
                    # by design; the cost experiments rely on it doing so.
                    sample.write_random(slot, element)  # repro-lint: disable=IO001
                    touched.add(slot)
                    accepted += 1
            if span is not None:
                span.set("displaced", len(touched))
        return RefreshResult(
            candidates=accepted,
            displaced=len(touched),
            memory=MemoryReport(),
        )
