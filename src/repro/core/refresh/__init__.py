"""The refresh phase: applying a candidate log to the on-disk sample.

Algorithms, in the order the paper introduces them:

* :class:`~repro.core.refresh.naive.NaiveFullRefresh` -- reservoir sampling
  replayed over a full log (Sec. 3.1);
* :class:`~repro.core.refresh.naive.NaiveCandidateRefresh` -- each candidate
  written to a random sample position (Sec. 3.2);
* :class:`~repro.core.refresh.array.ArrayRefresh` -- precompute final
  candidates in an M-entry array, optional sort, sequential write
  (Sec. 4.1, Alg. 1);
* :class:`~repro.core.refresh.stack.StackRefresh` -- reverse-order
  precomputation on a LIFO stack, geometric skips (Sec. 4.2, Alg. 2);
* :class:`~repro.core.refresh.nomem.NomemRefresh` -- Stack Refresh without
  the stack, by replaying the geometric PRNG from a saved state
  (Sec. 4.3, Alg. 3).

All three deferred algorithms perform identical disk I/O (Sec. 6.3): Psi
sequential log reads and Psi sequential sample writes, block-coalesced.
They differ only in main memory (Fig. 12) and CPU time (Fig. 13).
"""

from repro.core.refresh.base import RefreshAlgorithm, RefreshResult
from repro.core.refresh.naive import NaiveCandidateRefresh, NaiveFullRefresh
from repro.core.refresh.array import ArrayRefresh
from repro.core.refresh.stack import StackRefresh
from repro.core.refresh.nomem import NomemRefresh
from repro.core.refresh import math as refresh_math

__all__ = [
    "RefreshAlgorithm",
    "RefreshResult",
    "NaiveFullRefresh",
    "NaiveCandidateRefresh",
    "ArrayRefresh",
    "StackRefresh",
    "NomemRefresh",
    "refresh_math",
]
