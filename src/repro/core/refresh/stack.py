"""Stack Refresh (Sec. 4.2, Algorithm 2).

Key observation: processing the candidate log in *reverse*, a candidate is
final exactly when its uniformly chosen slot is not already claimed by a
later candidate.  With ``k`` slots claimed the survival probability is
``p_k = (M - k)/M``, constant until the next survivor -- so the number of
candidates skipped between survivors is geometric, and the whole set of
final candidates is found in O(Psi) draws instead of O(|C|).

The survivors' indexes come out descending; a LIFO stack reverses them so
the write phase reads the log forward.  The write phase scans the sample
once and displaces each position ``j`` with probability
``q_{j,k} = k/(M - j + 1)`` (``k`` = survivors still on the stack) --
selection sampling, which assigns the k survivors to a uniformly random
k-subset of positions.

Cost: identical disk I/O to Array Refresh; memory is only ``Psi`` indexes
(Fig. 12); CPU is the lowest of the three (Fig. 13) -- no sort, and only
``~2 Psi`` variates.
"""

from __future__ import annotations

from repro.core.logs import CandidateSource
from repro.core.refresh.base import RefreshResult
from repro.obs.api import maybe_span
from repro.rng.random_source import RandomSource
from repro.rng.sequential import SequentialSampler
from repro.storage.files import SampleFile
from repro.storage.memory import MemoryReport

__all__ = ["StackRefresh", "select_final_indexes"]


def select_final_indexes(
    rng: RandomSource, sample_size: int, candidates: int
) -> list[int]:
    """Algorithm 2's precomputation phase.

    Returns the 1-based indexes of the final candidates in *descending*
    order (the order they are pushed; popping yields ascending order).
    """
    if candidates <= 0:
        return []
    selected: list[int] = []
    index = candidates
    while index >= 1 and len(selected) < sample_size:
        selected.append(index)
        k = len(selected)
        if k == sample_size:
            break
        p_k = (sample_size - k) / sample_size
        skip = rng.geometric(p_k)
        index -= skip + 1
    return selected


class StackRefresh:
    """Algorithm 2 of the paper."""

    name = "stack"

    #: Optional telemetry (see :mod:`repro.obs`); wired automatically by
    #: an instrumented :class:`~repro.core.maintenance.SampleMaintainer`.
    instrumentation = None

    def refresh(
        self,
        sample: SampleFile,
        source: CandidateSource,
        rng: RandomSource,
    ) -> RefreshResult:
        obs = self.instrumentation
        total = source.count()
        memory = MemoryReport()
        if total == 0:
            return RefreshResult(candidates=0, displaced=0, memory=memory)

        # Precomputation: survivors, pushed in descending index order.
        with maybe_span(
            obs, "refresh.precompute", algorithm=self.name, candidates=total
        ):
            stack = select_final_indexes(rng, sample.size, total)
        memory.account_indexes(len(stack))
        displaced = len(stack)
        if displaced == 0:
            return RefreshResult(candidates=total, displaced=0, memory=memory)

        # Write phase: selection sampling over the M positions; popping the
        # stack yields ascending log indexes, so log reads are sequential.
        with maybe_span(
            obs, "refresh.write", algorithm=self.name, displaced=displaced
        ):
            reader = source.open_reader()
            chooser = SequentialSampler(rng, n=displaced, total=sample.size)

            def displaced_items():
                for position in range(sample.size):
                    if chooser.remaining == 0:
                        return
                    if chooser.take():
                        index = stack.pop()
                        yield position, reader.read(index)

            sample.write_sequential(displaced_items())
        if stack:
            raise AssertionError(
                f"write phase finished with {len(stack)} candidates unwritten"
            )
        return RefreshResult(candidates=total, displaced=displaced, memory=memory)
