"""The log phase: full logging, candidate logging and the update log.

Incremental maintenance has a *log phase* capturing insertions and a
*refresh phase* applying them to the sample (Sec. 3).  This module owns the
log phase plus the two **candidate sources** that the refresh algorithms
consume:

* :class:`CandidateLogger` implements candidate logging (Sec. 3.2): the
  reservoir acceptance test is pushed to insertion time and only accepted
  elements are appended to the log file.  The refresh phase then treats
  every log element as a candidate.
* :class:`FullLogger` implements full logging (Sec. 3.1): every insertion
  is appended, and the acceptance test is deferred to refresh time.
* :class:`FullLogSource` is the Sec. 5 adapter: it lets any candidate
  refresh algorithm run over a full log by replaying Vitter skips from a
  saved PRNG state -- candidate positions inside the full log are computed
  twice (count pass, read pass) instead of being stored.
* :class:`UpdateLogger` collects updates (Sec. 5) to be applied after each
  refresh.

Both candidate sources expose the same protocol: ``count()`` (how many
candidates this refresh round has) and ``open_reader()`` returning an
ascending ordinal reader, so the refresh algorithms in
:mod:`repro.core.refresh` are oblivious to which logging scheme produced
their input.
"""

from __future__ import annotations

from typing import Protocol, Sequence, TypeVar

from repro.core.reservoir import ReservoirSampler
from repro.rng.random_source import RandomSource
from repro.storage.files import LogFile

__all__ = [
    "CandidateSource",
    "CandidateReader",
    "CandidateLogger",
    "FullLogger",
    "UpdateLogger",
    "CandidateLogSource",
    "FullLogSource",
]

T = TypeVar("T")


class CandidateReader(Protocol):
    """Reads candidates by ascending 1-based ordinal."""

    def read(self, ordinal: int) -> T:  # pragma: no cover - protocol
        ...


class CandidateSource(Protocol):
    """What a refresh algorithm needs to know about this round's candidates."""

    def count(self) -> int:  # pragma: no cover - protocol
        ...

    def open_reader(self) -> CandidateReader:  # pragma: no cover - protocol
        ...


# ---------------------------------------------------------------------------
# Log phase
# ---------------------------------------------------------------------------


class CandidateLogger:
    """Candidate logging (Sec. 3.2).

    Each arriving insertion is accepted with probability ``M/(|R|+1)`` and,
    if accepted, appended to the log file; rejected elements cost nothing.
    The expected log size after ``n`` insertions is
    ``M ln((|R|+n)/|R|)`` -- it *shrinks* relative to ``n`` as the dataset
    grows, which is where the paper's orders-of-magnitude online savings
    come from.
    """

    def __init__(
        self,
        log: LogFile,
        sample_size: int,
        rng: RandomSource,
        initial_dataset_size: int,
        skip_method: str = "auto",
    ) -> None:
        if initial_dataset_size < sample_size:
            raise ValueError(
                "candidate logging requires an existing sample: "
                f"dataset size {initial_dataset_size} < sample size {sample_size}"
            )
        self._log = log
        self._sampler = ReservoirSampler(
            sample_size, rng, initial_size=initial_dataset_size, skip_method=skip_method
        )

    @property
    def log(self) -> LogFile:
        return self._log

    @property
    def dataset_size(self) -> int:
        return self._sampler.seen

    @property
    def sample_size(self) -> int:
        return self._sampler.capacity

    @property
    def pending_accept(self) -> int | None:
        """The sampler's undrawn skip decision (checkpointed verbatim)."""
        return self._sampler.pending_accept

    def insert(self, element: T) -> bool:
        """Log phase for one insertion; True if it became a candidate."""
        if self._sampler.test(element):
            self._log.append(element)
            return True
        return False

    def insert_many(
        self, elements: Sequence[T], max_accepts: int | None = None
    ) -> tuple[int, int]:
        """Batched log phase: skip-jump to each candidate, append in bulk.

        Returns ``(consumed, accepted)``.  ``consumed < len(elements)``
        only when ``max_accepts`` acceptances were reached (then the call
        stops right after the accepting element, so a refresh policy can
        fire at exactly the element it would fire at under scalar
        inserts).  Same PRNG draws, log records and block writes as
        ``len(elements)`` scalar :meth:`insert` calls.
        """
        consumed, accepted = self._sampler.test_many(len(elements), max_accepts)
        if accepted:
            self._log.append_many([elements[i] for i in accepted])
        return consumed, len(accepted)

    def source(self) -> "CandidateLogSource":
        """The candidate source for the coming refresh."""
        return CandidateLogSource(self._log)

    def after_refresh(self) -> None:
        """Reset the log for reuse (the refresh consumed it)."""
        self._log.truncate()


class FullLogger:
    """Full logging (Sec. 3.1): every insertion goes to the log."""

    def __init__(self, log: LogFile, initial_dataset_size: int) -> None:
        if initial_dataset_size < 0:
            raise ValueError("initial_dataset_size must be non-negative")
        self._log = log
        self._dataset_size_at_refresh = initial_dataset_size
        self._dataset_size = initial_dataset_size

    @property
    def log(self) -> LogFile:
        return self._log

    @property
    def dataset_size(self) -> int:
        return self._dataset_size

    @property
    def dataset_size_at_last_refresh(self) -> int:
        return self._dataset_size_at_refresh

    def insert(self, element: T) -> bool:
        """Log phase for one insertion; always logged."""
        self._log.append(element)
        self._dataset_size += 1
        return True

    def insert_many(self, elements: Sequence[T]) -> int:
        """Batched log phase: every element appended, one bulk call."""
        self._log.append_many(elements)
        self._dataset_size += len(elements)
        return len(elements)

    def source(self, sample_size: int, rng: RandomSource) -> "FullLogSource":
        """Sec. 5 adapter: view this full log as a candidate sequence."""
        return FullLogSource(
            self._log, sample_size, self._dataset_size_at_refresh, rng
        )

    def after_refresh(self) -> None:
        self._dataset_size_at_refresh = self._dataset_size
        self._log.truncate()


class UpdateLogger:
    """Separate log for updates, applied after each refresh (Sec. 5).

    Stores ``(key, new_value)`` pairs encoded by the log file's codec; the
    DBMS layer (:mod:`repro.dbms.sample_view`) owns the application step.
    """

    def __init__(self, log: LogFile) -> None:
        self._log = log

    @property
    def log(self) -> LogFile:
        return self._log

    def update(self, record: T) -> None:
        self._log.append(record)

    def drain(self) -> list[T]:
        """Read all pending updates (sequential scan) and reset the log."""
        updates = self._log.scan_all()
        self._log.truncate()
        return updates

    def __len__(self) -> int:
        return len(self._log)


# ---------------------------------------------------------------------------
# Candidate sources for the refresh phase
# ---------------------------------------------------------------------------


class CandidateLogSource:
    """Candidate source over a candidate log: ordinal ``i`` = log position ``i-1``."""

    def __init__(self, log: LogFile) -> None:
        self._log = log

    def count(self) -> int:
        return len(self._log)

    def open_reader(self) -> "_CandidateLogReader":
        return _CandidateLogReader(self._log)

    def scan_all(self) -> list[T]:
        """All candidates in order (naive candidate refresh)."""
        return self._log.scan_all()


class _CandidateLogReader:
    __slots__ = ("_reader",)

    def __init__(self, log: LogFile) -> None:
        self._reader = log.open_sequential_reader()

    def read(self, ordinal: int) -> T:
        return self._reader.read(ordinal - 1)


class FullLogSource:
    """Sec. 5: run candidate refresh over a full log via PRNG replay.

    A dedicated skip stream (``rng.spawn``) generates Vitter's reservoir
    skips.  ``count()`` walks the skip stream once to count candidates,
    then restores the stream's state; ``open_reader()`` walks it again,
    mapping candidate ordinals to full-log positions on the fly.  Nothing
    is buffered: this is the same store-state/replay idea as Nomem Refresh.

    The log blocks containing candidates are read sequentially but are
    "further apart from each other, so that the number of blocks read from
    disk increases" relative to a candidate log (Sec. 5) -- the cost
    difference the Fig. 7/11 experiments show.
    """

    def __init__(
        self,
        log: LogFile,
        sample_size: int,
        dataset_size_before: int,
        rng: RandomSource,
        skip_method: str = "auto",
    ) -> None:
        if dataset_size_before < sample_size:
            raise ValueError(
                "full-log refresh requires an existing sample: "
                f"dataset size {dataset_size_before} < sample size {sample_size}"
            )
        self._log = log
        self._sample_size = sample_size
        self._dataset_size_before = dataset_size_before
        self._skip_rng = rng.spawn("fulllog-skips")
        self._skip_method = skip_method
        self._count: int | None = None
        self._replay_state = self._skip_rng.snapshot()

    def count(self) -> int:
        """Number of candidates hidden in the full log (computed, not stored)."""
        if self._count is None:
            self._skip_rng.restore(self._replay_state)
            n = len(self._log)
            candidates = 0
            for _ in self._iter_positions(n):
                candidates += 1
            self._count = candidates
        return self._count

    def open_reader(self) -> "_FullLogCandidateReader":
        # Force the count first so the replay state is the pristine one.
        self.count()
        self._skip_rng.restore(self._replay_state)
        return _FullLogCandidateReader(
            self._log.open_sequential_reader(),
            self._iter_positions(len(self._log)),
        )

    def candidate_positions(self) -> list[int]:
        """All candidate positions within the full log (testing aid)."""
        self.count()
        self._skip_rng.restore(self._replay_state)
        return list(self._iter_positions(len(self._log)))

    def _iter_positions(self, n: int):
        """Yield 0-based full-log positions of candidates, in order."""
        seen = self._dataset_size_before
        end = self._dataset_size_before + n
        while True:
            skip = self._skip_rng.reservoir_skip(
                self._sample_size, seen, method=self._skip_method
            )
            seen += skip + 1
            if seen > end:
                return
            yield seen - self._dataset_size_before - 1


class _FullLogCandidateReader:
    """Maps candidate ordinals to full-log positions by replaying skips."""

    __slots__ = ("_reader", "_positions", "_next_ordinal")

    def __init__(self, reader, positions) -> None:
        self._reader = reader
        self._positions = positions
        self._next_ordinal = 1

    def read(self, ordinal: int) -> T:
        if ordinal < self._next_ordinal:
            raise ValueError(
                f"full-log candidate reader is forward-only "
                f"(ordinal {ordinal} after {self._next_ordinal - 1})"
            )
        position = -1
        while self._next_ordinal <= ordinal:
            position = next(self._positions)
            self._next_ordinal += 1
        return self._reader.read(position)
