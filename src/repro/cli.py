"""Command-line interface: regenerate the paper's experiments.

Examples
--------

Run one figure at the default scale::

    python -m repro.cli run fig6

Run everything at paper scale (1M sample, 100M inserts)::

    python -m repro.cli run all --scale paper

List available experiments::

    python -m repro.cli list
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.figures import FIGURES, all_experiments, get_figure
from repro.experiments.report import (
    format_series_csv,
    format_series_json,
    format_series_table,
)
from repro.experiments.scaling import SCALES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Deferred Maintenance of Disk-Based Random "
            "Samples' (Gemulla & Lehner, EDBT 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help=(
            f"experiment id: one of {', '.join(sorted(FIGURES))}, "
            "an extension (extra-accuracy, extra-bias), or 'all'"
        ),
    )
    run.add_argument(
        "--scale",
        default="default",
        choices=sorted(SCALES),
        help="experiment scale (paper = 1M sample / 100M inserts)",
    )
    run.add_argument("--seed", type=int, default=0, help="base random seed")
    run.add_argument(
        "--format",
        default="table",
        choices=("table", "csv", "json"),
        help="output format for the regenerated series",
    )

    sub.add_parser("list", help="list available experiments and scales")

    from repro.devtools.cli import add_lint_parser

    add_lint_parser(sub)

    from repro.obs.cli import add_stats_parser

    add_stats_parser(sub)

    validate = sub.add_parser(
        "validate",
        help="check the vectorised engine against the reference implementation",
    )
    validate.add_argument("--trials", type=int, default=20)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument(
        "--tolerance", type=float, default=0.10,
        help="maximum acceptable relative error on total cost",
    )
    validate.add_argument(
        "--scalar",
        action="store_true",
        help=(
            "run the reference implementation with element-wise inserts "
            "instead of the skip-based batch path (slower, same counts)"
        ),
    )

    from repro.devtools.bench_compare import add_bench_compare_parser

    add_bench_compare_parser(sub)

    from repro.serve.cli import add_serve_sim_parser

    add_serve_sim_parser(sub)

    from repro.fleet.cli import add_fleet_sim_parser

    add_fleet_sim_parser(sub)

    from repro.obs.trace_cli import add_trace_parser

    add_trace_parser(sub)

    from repro.replication.cli import add_dr_drill_parser

    add_dr_drill_parser(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        experiments = all_experiments()
        print("experiments:")
        for name in sorted(experiments):
            doc = (experiments[name].__doc__ or "").strip().splitlines()[0]
            print(f"  {name:<14} {doc}")
        print("scales:")
        for name, scale in SCALES.items():
            print(
                f"  {name:<10} M={scale.sample_size:>9,}  "
                f"inserts={scale.inserts:>12,}  period={scale.refresh_period:,}"
            )
        return 0

    if args.command == "lint":
        from repro.devtools.cli import run_lint_command

        return run_lint_command(args)

    if args.command == "stats":
        from repro.obs.cli import run_stats_command

        return run_stats_command(args)

    if args.command == "bench-compare":
        from repro.devtools.bench_compare import run_bench_compare_command

        return run_bench_compare_command(args)

    if args.command == "serve-sim":
        from repro.serve.cli import run_serve_sim_command

        return run_serve_sim_command(args)

    if args.command == "fleet-sim":
        from repro.fleet.cli import run_fleet_sim_command

        return run_fleet_sim_command(args)

    if args.command == "trace":
        from repro.obs.trace_cli import run_trace_command

        return run_trace_command(args)

    if args.command == "dr-drill":
        from repro.replication.cli import run_dr_drill_command

        return run_dr_drill_command(args)

    if args.command == "validate":
        from repro.experiments.validation import validate_engine

        report = validate_engine(trials=args.trials, seed=args.seed, scalar=args.scalar)
        print(report.summary())
        if not report.passed(args.tolerance):
            print(f"FAILED: worst error exceeds {args.tolerance:.0%}")
            return 1
        print("PASSED")
        return 0

    names = (
        sorted(all_experiments()) if args.experiment == "all"
        else [args.experiment]
    )
    formatters = {
        "table": format_series_table,
        "csv": format_series_csv,
        "json": format_series_json,
    }
    for name in names:
        runner = get_figure(name)
        started = time.perf_counter()
        result = runner(scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - started
        print(formatters[args.format](result), end="" if args.format != "table" else "\n")
        if args.format == "table":
            print(f"  [computed in {elapsed:.2f}s]")
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
