"""Estimators computed on uniform random samples.

These are consumers of the maintained sample: the application-neutrality
argument of Sec. 1 is that a *uniform* sample supports whatever estimate
is asked for later.  Each estimator takes a plain sequence (the sample
contents) plus whatever population knowledge it needs (usually just the
dataset size ``N``, which the maintenance layer tracks anyway).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

__all__ = [
    "estimate_mean",
    "estimate_sum",
    "estimate_fraction",
    "estimate_quantile",
    "estimate_count_distinct_gee",
    "estimate_count_distinct_chao",
]


def estimate_mean(sample: Sequence[float]) -> float:
    """Sample mean: unbiased for the population mean under uniformity."""
    if not sample:
        raise ValueError("cannot estimate from an empty sample")
    return sum(sample) / len(sample)


def estimate_sum(sample: Sequence[float], population_size: int) -> float:
    """Horvitz-Thompson total: ``N * mean(sample)``."""
    if population_size < len(sample):
        raise ValueError("population cannot be smaller than the sample")
    return population_size * estimate_mean(sample)


def estimate_fraction(sample: Sequence, predicate) -> float:
    """Fraction of the population satisfying ``predicate``."""
    if not sample:
        raise ValueError("cannot estimate from an empty sample")
    return sum(1 for item in sample if predicate(item)) / len(sample)


def estimate_quantile(sample: Sequence[float], q: float) -> float:
    """Order-statistic quantile estimate (nearest-rank)."""
    if not sample:
        raise ValueError("cannot estimate from an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(sample)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def estimate_count_distinct_gee(sample: Sequence, population_size: int) -> float:
    """Guaranteed-Error Estimator (Charikar et al.) for distinct values.

    ``GEE = sqrt(N/n) * f1 + sum_{j>=2} f_j`` where ``f_j`` is the number
    of values appearing exactly ``j`` times in the sample.  The classic
    example of an estimator that needs a *large* sample: with tiny samples
    nearly everything is a singleton and the estimate collapses to the
    ``sqrt(N/n)`` blow-up of ``f1``.
    """
    n = len(sample)
    if n == 0:
        raise ValueError("cannot estimate from an empty sample")
    if population_size < n:
        raise ValueError("population cannot be smaller than the sample")
    frequencies = Counter(Counter(sample).values())
    f1 = frequencies.get(1, 0)
    higher = sum(count for j, count in frequencies.items() if j >= 2)
    return math.sqrt(population_size / n) * f1 + higher


def estimate_count_distinct_chao(sample: Sequence) -> float:
    """Chao's lower-bound estimator: ``d + f1^2 / (2 f2)``.

    Population-size-free; degrades to the observed distinct count when no
    value repeats exactly twice.
    """
    if not sample:
        raise ValueError("cannot estimate from an empty sample")
    value_counts = Counter(sample)
    frequencies = Counter(value_counts.values())
    distinct = len(value_counts)
    f1 = frequencies.get(1, 0)
    f2 = frequencies.get(2, 0)
    if f2 == 0:
        return float(distinct)
    return distinct + (f1 * f1) / (2.0 * f2)
