"""Statistical tests that a maintained sample is uniform.

The paper's correctness claim is distributional: every maintenance
strategy must leave the sample a *uniform* random sample of the current
dataset ("each sample of the same size is equally likely to be
produced").  The test suite verifies this empirically: run maintenance
many times with different seeds, count how often each dataset element
lands in the final sample, and test the counts against the uniform
inclusion probability ``M/N``.

Implemented without scipy so the library stays dependency-light; the
chi-square survival function uses the Wilson-Hilferty normal
approximation, which is accurate to ~1e-3 for the degrees of freedom used
in tests (hundreds) -- plenty for pass/fail thresholds at p = 1e-4.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

__all__ = [
    "inclusion_counts",
    "chi_square_statistic",
    "chi_square_uniform_pvalue",
    "kolmogorov_smirnov_uniform",
]


def inclusion_counts(samples: Iterable[Sequence[int]], universe: int) -> list[int]:
    """Per-element inclusion counts over many independent sample draws.

    ``samples`` yields one final sample per trial; elements must be
    integers in ``[0, universe)``.
    """
    counts = Counter()
    for sample in samples:
        for element in sample:
            if not 0 <= element < universe:
                raise ValueError(f"element {element} outside universe {universe}")
        counts.update(sample)
    return [counts.get(i, 0) for i in range(universe)]


def chi_square_statistic(observed: Sequence[float], expected: Sequence[float]) -> float:
    """Pearson chi-square statistic over matched observed/expected cells."""
    if len(observed) != len(expected):
        raise ValueError("observed and expected must have equal length")
    if not observed:
        raise ValueError("need at least one cell")
    statistic = 0.0
    for obs, exp in zip(observed, expected):
        if exp <= 0:
            raise ValueError("expected counts must be positive")
        diff = obs - exp
        statistic += diff * diff / exp
    return statistic


def chi_square_uniform_pvalue(counts: Sequence[int], trials_total: int) -> float:
    """P-value that per-element inclusion counts are uniform.

    ``trials_total`` is the total number of inclusions across all trials
    (``trials * M``); under uniformity each of the ``len(counts)`` elements
    expects ``trials_total / len(counts)`` inclusions.

    Note: inclusion counts within one trial are weakly negatively
    correlated (the sample has fixed size), which makes the chi-square
    statistic slightly *smaller* than under independence -- the test is
    conservative in the direction that matters (it will not flag a correct
    algorithm).
    """
    cells = len(counts)
    if cells < 2:
        raise ValueError("need at least two cells")
    expected = trials_total / cells
    statistic = chi_square_statistic(counts, [expected] * cells)
    return chi_square_survival(statistic, cells - 1)


def chi_square_survival(statistic: float, dof: int) -> float:
    """``P(Chi2_dof >= statistic)`` via the Wilson-Hilferty approximation."""
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    if statistic < 0:
        raise ValueError("chi-square statistic cannot be negative")
    if statistic == 0:
        return 1.0
    # Wilson-Hilferty: (X/k)^(1/3) ~ Normal(1 - 2/(9k), 2/(9k)).
    z = ((statistic / dof) ** (1.0 / 3.0) - (1.0 - 2.0 / (9.0 * dof))) / math.sqrt(
        2.0 / (9.0 * dof)
    )
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def kolmogorov_smirnov_uniform(values: Sequence[float]) -> tuple[float, float]:
    """KS test of ``values`` against Uniform[0, 1); returns ``(D, p)``.

    Used to validate the raw PRNG output and the skip-distribution
    transforms.  P-value from the asymptotic Kolmogorov distribution.
    """
    n = len(values)
    if n == 0:
        raise ValueError("need at least one value")
    ordered = sorted(values)
    d = 0.0
    for i, value in enumerate(ordered):
        if not 0.0 <= value <= 1.0:
            raise ValueError("values must lie in [0, 1]")
        d = max(d, (i + 1) / n - value, value - i / n)
    # Asymptotic survival function with Stephens' finite-n correction.
    t = d * (math.sqrt(n) + 0.12 + 0.11 / math.sqrt(n))
    p = 0.0
    for j in range(1, 101):
        term = 2.0 * (-1.0) ** (j - 1) * math.exp(-2.0 * j * j * t * t)
        p += term
        if abs(term) < 1e-12:
            break
    return d, max(0.0, min(1.0, p))
