"""Error bounds for sample-based estimates.

The paper's case for *uniform* samples is that they "derive precise
results and error bounds" (Sec. 1) for whatever estimate is asked later.
This module supplies the bounds: normal-approximation confidence
intervals with the finite-population correction (the sample is drawn
without replacement from a dataset of known size), plus a
distribution-free Hoeffding bound for bounded-value estimates.

All intervals are two-sided at the requested confidence level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "ConfidenceInterval",
    "mean_confidence_interval",
    "sum_confidence_interval",
    "fraction_confidence_interval",
    "hoeffding_mean_interval",
    "required_sample_size",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval with its point estimate."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.low <= self.estimate <= self.high:
            raise ValueError(
                f"estimate {self.estimate} outside [{self.low}, {self.high}]"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def _z_score(confidence: float) -> float:
    """Two-sided standard-normal quantile via the inverse error function.

    Newton refinement over ``erf`` keeps us scipy-free with ~1e-10
    accuracy for any practical confidence level.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    target = confidence  # P(|Z| <= z) = erf(z / sqrt(2))
    z = 1.0
    for _ in range(60):
        error = math.erf(z / math.sqrt(2.0)) - target
        derivative = math.sqrt(2.0 / math.pi) * math.exp(-z * z / 2.0)
        step = error / derivative
        z -= step
        if abs(step) < 1e-14:
            break
    return z


def _fpc(sample_size: int, population_size: int | None) -> float:
    """Finite-population correction factor for without-replacement samples."""
    if population_size is None:
        return 1.0
    if population_size < sample_size:
        raise ValueError("population cannot be smaller than the sample")
    if population_size <= 1:
        return 0.0
    return math.sqrt((population_size - sample_size) / (population_size - 1))


def mean_confidence_interval(
    sample: Sequence[float],
    confidence: float = 0.95,
    population_size: int | None = None,
) -> ConfidenceInterval:
    """Normal-approximation CI for the population mean."""
    n = len(sample)
    if n < 2:
        raise ValueError("need at least two observations")
    mean = sum(sample) / n
    variance = sum((v - mean) ** 2 for v in sample) / (n - 1)
    stderr = math.sqrt(variance / n) * _fpc(n, population_size)
    margin = _z_score(confidence) * stderr
    return ConfidenceInterval(mean, mean - margin, mean + margin, confidence)


def sum_confidence_interval(
    sample: Sequence[float],
    population_size: int,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """CI for the population total: the mean interval scaled by ``N``."""
    base = mean_confidence_interval(sample, confidence, population_size)
    return ConfidenceInterval(
        base.estimate * population_size,
        base.low * population_size,
        base.high * population_size,
        confidence,
    )


def fraction_confidence_interval(
    hits: int,
    sample_size: int,
    confidence: float = 0.95,
    population_size: int | None = None,
) -> ConfidenceInterval:
    """Wilson score interval for a population proportion.

    Better behaved than the Wald interval near 0/1 -- relevant because
    selective predicates on samples routinely produce tiny hit counts.
    """
    if sample_size <= 0:
        raise ValueError("sample_size must be positive")
    if not 0 <= hits <= sample_size:
        raise ValueError(f"hits {hits} outside [0, {sample_size}]")
    z = _z_score(confidence)
    z2 = z * z
    p = hits / sample_size
    fpc = _fpc(sample_size, population_size)
    denom = 1.0 + z2 / sample_size
    centre = (p + z2 / (2 * sample_size)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / sample_size + z2 / (4 * sample_size**2))
        / denom
        * fpc
    )
    # The Wilson centre is shrunk toward 1/2, so at the 0/1 boundaries it
    # can exclude the raw proportion; widen to include the point estimate
    # (the conventional hits=0 -> low=0 and hits=n -> high=1 behaviour).
    low = max(0.0, min(p, centre - margin))
    high = min(1.0, max(p, centre + margin))
    return ConfidenceInterval(p, low, high, confidence)


def hoeffding_mean_interval(
    sample: Sequence[float],
    value_range: tuple[float, float],
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Distribution-free CI for the mean of values in ``[low, high]``.

    ``P(|mean_est - mean| >= t) <= 2 exp(-2 n t^2 / (high-low)^2)`` -- no
    normality assumption, at the price of width.
    """
    n = len(sample)
    if n < 1:
        raise ValueError("need at least one observation")
    low, high = value_range
    if high <= low:
        raise ValueError("value_range must be non-degenerate")
    for v in sample:
        if not low <= v <= high:
            raise ValueError(f"value {v} outside declared range [{low}, {high}]")
    mean = sum(sample) / n
    alpha = 1.0 - confidence
    margin = (high - low) * math.sqrt(math.log(2.0 / alpha) / (2.0 * n))
    return ConfidenceInterval(mean, mean - margin, mean + margin, confidence)


def required_sample_size(
    relative_error: float,
    confidence: float = 0.95,
    coefficient_of_variation: float = 1.0,
) -> int:
    """Sample size needed for a relative error on the mean.

    ``n >= (z * cv / e)^2`` -- the planning formula behind the paper's
    "many estimators require the sample to be sufficiently large".
    """
    if relative_error <= 0:
        raise ValueError("relative_error must be positive")
    if coefficient_of_variation <= 0:
        raise ValueError("coefficient_of_variation must be positive")
    z = _z_score(confidence)
    return math.ceil((z * coefficient_of_variation / relative_error) ** 2)
