"""Estimation on samples, and statistical validation of uniformity.

The paper's motivation for *large* disk-based samples is that estimators
degrade on undersized ones ("even 'simple' statistics estimators like the
estimation of the number of distinct values do not perform well on
undersized samples", Sec. 1).  :mod:`~repro.analysis.estimators` provides
the estimators the examples exercise; :mod:`~repro.analysis.uniformity`
provides the statistical tests the test suite uses to prove that every
maintenance strategy leaves the sample uniform.
"""

from repro.analysis.bounds import (
    ConfidenceInterval,
    fraction_confidence_interval,
    hoeffding_mean_interval,
    mean_confidence_interval,
    required_sample_size,
    sum_confidence_interval,
)
from repro.analysis.query import Estimate, SampleQuery
from repro.analysis.estimators import (
    estimate_mean,
    estimate_sum,
    estimate_count_distinct_gee,
    estimate_count_distinct_chao,
    estimate_quantile,
    estimate_fraction,
)
from repro.analysis.uniformity import (
    chi_square_statistic,
    chi_square_uniform_pvalue,
    inclusion_counts,
    kolmogorov_smirnov_uniform,
)

__all__ = [
    "ConfidenceInterval",
    "mean_confidence_interval",
    "sum_confidence_interval",
    "fraction_confidence_interval",
    "hoeffding_mean_interval",
    "required_sample_size",
    "Estimate",
    "SampleQuery",
    "estimate_mean",
    "estimate_sum",
    "estimate_count_distinct_gee",
    "estimate_count_distinct_chao",
    "estimate_quantile",
    "estimate_fraction",
    "chi_square_statistic",
    "chi_square_uniform_pvalue",
    "inclusion_counts",
    "kolmogorov_smirnov_uniform",
]
