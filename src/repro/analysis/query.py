"""Approximate query processing over a maintained sample.

The application-facing layer the paper's Sec. 1 motivates: once a uniform
sample exists, arbitrary later queries get approximate answers with error
bounds.  :class:`SampleQuery` provides a small fluent API over a sample's
contents:

>>> q = SampleQuery(sample_rows, dataset_size=1_000_000)
>>> q.where(lambda r: r > 100).count()          # Estimate with a CI
>>> q.avg(lambda r: r)                          # Estimate with a CI

Statistics notes (all standard survey-sampling results):

* ``count()`` of a predicate scales the Wilson interval of the hit
  fraction by the dataset size;
* ``sum()`` over a *filtered* query uses the unfiltered sample size for
  scaling (each sampled row represents ``N/n`` rows whether or not it
  matches) and derives its CI from the zero-padded contribution values --
  the textbook domain-sum estimator;
* ``avg()`` over a filtered query conditions on the matching subsample
  (a ratio estimator; its CI uses the subsample size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Sequence, TypeVar

from repro.analysis.bounds import (
    ConfidenceInterval,
    fraction_confidence_interval,
    mean_confidence_interval,
)

__all__ = ["Estimate", "SampleQuery"]

T = TypeVar("T")


@dataclass(frozen=True)
class Estimate:
    """A point estimate with its confidence interval."""

    value: float
    interval: ConfidenceInterval

    @property
    def low(self) -> float:
        return self.interval.low

    @property
    def high(self) -> float:
        return self.interval.high

    @property
    def relative_half_width(self) -> float:
        """CI half-width relative to the estimate (inf when value is 0)."""
        if self.value == 0:
            return float("inf") if self.interval.half_width > 0 else 0.0
        return self.interval.half_width / abs(self.value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.value:,.4g} "
            f"[{self.interval.low:,.4g}, {self.interval.high:,.4g}] "
            f"@{self.interval.confidence:.0%}"
        )


class SampleQuery(Generic[T]):
    """Fluent approximate queries over a uniform sample.

    ``rows`` is the sample's contents; ``dataset_size`` the size of the
    population it represents (the maintenance layer tracks it).  The
    object is immutable; ``where`` returns a narrowed copy that remembers
    the *original* sample size for correct scaling.
    """

    def __init__(
        self,
        rows: Sequence[T],
        dataset_size: int,
        confidence: float = 0.95,
        _base_sample_size: int | None = None,
    ) -> None:
        if dataset_size < len(rows) and _base_sample_size is None:
            raise ValueError(
                f"dataset_size {dataset_size} smaller than the sample "
                f"({len(rows)} rows)"
            )
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        self._rows = list(rows)
        self._dataset_size = dataset_size
        self._confidence = confidence
        self._base = (
            _base_sample_size if _base_sample_size is not None else len(rows)
        )
        if self._base == 0:
            raise ValueError("cannot query an empty sample")

    # -- composition --------------------------------------------------------

    def where(self, predicate: Callable[[T], bool]) -> "SampleQuery[T]":
        """Narrow to rows matching the predicate (population filter)."""
        return SampleQuery(
            [row for row in self._rows if predicate(row)],
            self._dataset_size,
            self._confidence,
            _base_sample_size=self._base,
        )

    def with_confidence(self, confidence: float) -> "SampleQuery[T]":
        return SampleQuery(
            self._rows, self._dataset_size, confidence,
            _base_sample_size=self._base,
        )

    @property
    def matching_rows(self) -> int:
        return len(self._rows)

    @property
    def sample_size(self) -> int:
        """The unfiltered sample size used for scaling."""
        return self._base

    # -- aggregates ------------------------------------------------------------

    def count(self) -> Estimate:
        """Estimated number of population rows matching the filters."""
        ci = fraction_confidence_interval(
            len(self._rows), self._base, self._confidence,
            population_size=self._dataset_size,
        )
        n = self._dataset_size
        return Estimate(
            value=ci.estimate * n,
            interval=ConfidenceInterval(
                ci.estimate * n, ci.low * n, ci.high * n, self._confidence
            ),
        )

    def sum(self, value_of: Callable[[T], float]) -> Estimate:
        """Estimated population sum of ``value_of`` over matching rows.

        Uses the domain-sum estimator: non-matching sampled rows
        contribute zero, so the scaling base is the unfiltered sample.
        """
        contributions = [value_of(row) for row in self._rows]
        padded = contributions + [0.0] * (self._base - len(self._rows))
        if len(padded) < 2:
            raise ValueError("need an unfiltered sample of at least 2 rows")
        mean_ci = mean_confidence_interval(
            padded, self._confidence, population_size=self._dataset_size
        )
        n = self._dataset_size
        return Estimate(
            value=mean_ci.estimate * n,
            interval=ConfidenceInterval(
                mean_ci.estimate * n, mean_ci.low * n, mean_ci.high * n,
                self._confidence,
            ),
        )

    def avg(self, value_of: Callable[[T], float]) -> Estimate:
        """Estimated mean of ``value_of`` over matching population rows."""
        if len(self._rows) < 2:
            raise ValueError(
                "fewer than 2 matching sampled rows; the filter is too "
                "selective for this sample"
            )
        ci = mean_confidence_interval(
            [value_of(row) for row in self._rows], self._confidence
        )
        return Estimate(value=ci.estimate, interval=ci)

    def fraction(self) -> Estimate:
        """Estimated fraction of the population matching the filters."""
        ci = fraction_confidence_interval(
            len(self._rows), self._base, self._confidence,
            population_size=self._dataset_size,
        )
        return Estimate(value=ci.estimate, interval=ci)
