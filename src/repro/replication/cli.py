"""``repro dr-drill``: run one seeded disaster-recovery drill.

Exit status is the contract the CI job relies on: 0 when the recovered
catalog is byte-identical to the replica AND to the primary's sealed
history prefix, 1 on any mismatch (or when the crash failed to inject).
"""

from __future__ import annotations

import argparse
import json

from repro.replication.drill import DrillConfig, run_drill

__all__ = ["add_dr_drill_parser", "run_dr_drill_command"]


def add_dr_drill_parser(sub) -> None:
    drill = sub.add_parser(
        "dr-drill",
        help="crash the replicated catalog, recover from the replica, cmp bytes",
    )
    drill.add_argument("--seed", type=int, default=1, help="drill seed")
    drill.add_argument("--samples", type=int, default=2)
    drill.add_argument("--sample-size", type=int, default=48)
    drill.add_argument("--events", type=int, default=120)
    drill.add_argument("--batch-size", type=int, default=16)
    drill.add_argument(
        "--algorithm",
        default="stack",
        choices=("array", "stack", "nomem", "naive"),
    )
    drill.add_argument(
        "--lag-budget",
        type=float,
        default=0.0,
        help="replication lag budget in cost-seconds (0 = ship eagerly)",
    )
    drill.add_argument(
        "--pool-capacity",
        type=int,
        default=8,
        help="buffer-pool frames per device (>0 so barriers do real flushing)",
    )
    drill.add_argument(
        "--crash-after",
        type=int,
        default=None,
        help="explicit 1-based crash write index (default: derived from seed)",
    )
    drill.add_argument(
        "--crash-phase",
        default="any",
        choices=("any", "barrier"),
        help="'barrier' aims the crash inside a multi-device group commit",
    )
    drill.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="dump primary.img / recovered.img / drill-report.json here",
    )


def run_dr_drill_command(args: argparse.Namespace) -> int:
    config = DrillConfig(
        seed=args.seed,
        samples=args.samples,
        sample_size=args.sample_size,
        events=args.events,
        batch_size=args.batch_size,
        algorithm=args.algorithm,
        lag_budget=args.lag_budget,
        pool_capacity=args.pool_capacity,
        crash_after=args.crash_after,
        crash_phase=args.crash_phase,
    )
    report = run_drill(config, out_dir=args.out)
    print(json.dumps(report, sort_keys=True, indent=2))
    if not report["ok"]:
        failed = [name for name, ok in report["checks"].items() if not ok]
        print(f"DR DRILL FAILED: {', '.join(failed)}")
        return 1
    print("DR DRILL PASSED")
    return 0
