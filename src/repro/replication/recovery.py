"""Disaster recovery: rebuild a live catalog from the replica, bit-exactly.

``recover_from_replica`` is the failover path: the primary is gone
(crashed, disk lost, process killed mid-group-commit) and all that
survives is the replica -- the checkpoint-boundary prefix the
:class:`~repro.replication.applier.ReplicaApplier` had applied when the
primary died.

Recovery images every replica device, clones the images onto fresh
devices of a new :class:`~repro.serve.catalog.SampleCatalog`, and adopts
each sample through its shipped superblock manifest.  Because manifests
carry the complete maintenance state -- dataset size, log length, full
MT19937 state -- an adopted sample resumes maintenance *bit-identically*
to the primary as of its last shipped checkpoint boundary (the same
argument as local crash recovery, extended across the replication hop;
property-tested in ``tests/properties/test_prop_replication.py``).

A sample whose manifest never shipped (the primary died before that
sample's first sealed checkpoint reached the replica) is reported as
skipped, not silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.replication.applier import ReplicaApplier
from repro.storage.cost_model import CostModel
from repro.storage.replicated import device_image, image_digest
from repro.storage.superblock import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.policies import RefreshPolicy
    from repro.obs.api import Instrumentation
    from repro.serve.catalog import SampleCatalog

__all__ = ["RecoveryResult", "recover_from_replica"]

#: The three per-sample device roles the catalog provisions.
_ROLES = ("sample", "log", "meta")


@dataclass
class RecoveryResult:
    """What a replica failover produced, and the witnesses to check it."""

    catalog: "SampleCatalog"
    #: samples adopted from shipped manifests, in name order
    recovered: list[str] = field(default_factory=list)
    #: samples present on the replica but without a loadable manifest
    skipped: list[str] = field(default_factory=list)
    #: newest commit batch the replica had applied (the recovery point)
    applied_seq: int = 0
    #: digest the replica computed over its own devices
    replica_digest: str = ""
    #: digest over the recovered catalog's devices (must equal the above)
    recovered_digest: str = ""
    #: the recovered catalog's device images (the DR drill's artifact bytes)
    images: dict = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        """True when the rebuilt catalog is byte-identical to the replica."""
        return self.recovered_digest == self.replica_digest


def _sample_names(images: dict[str, dict[int, bytes]]) -> list[str]:
    """Distinct sample names behind ``<name>.sample/.log/.meta`` devices."""
    names = set()
    for device_name in images:
        stem, _, role = device_name.rpartition(".")
        if stem and role in _ROLES:
            names.add(stem)
    return sorted(names)


def recover_from_replica(
    applier: ReplicaApplier,
    algorithm: str = "stack",
    policy_factory: "Callable[[str], RefreshPolicy | None] | None" = None,
    record_size: int = 32,
    cost_model: CostModel | None = None,
    instrumentation: "Instrumentation | None" = None,
    pool_capacity: int = 0,
) -> RecoveryResult:
    """Rebuild a fresh catalog from the replica's device images.

    ``algorithm``, ``policy_factory`` and ``record_size`` re-supply the
    configuration that lives outside the shipped byte stream (the
    manifest persists the maintenance *state*; the refresh algorithm and
    policy are deployment configuration, exactly as in
    :meth:`SampleCatalog.reopen`).
    """
    # Imported here: serve builds on replication (the simulator creates
    # links), so the module-level direction is serve -> replication.
    from repro.serve.catalog import SampleCatalog

    catalog = SampleCatalog(
        cost_model=cost_model,
        instrumentation=instrumentation,
        pool_capacity=pool_capacity,
    )
    images = applier.images()
    result = RecoveryResult(
        catalog=catalog,
        applied_seq=applier.applied_seq,
        replica_digest=applier.digest(),
    )
    for name in _sample_names(images):
        role_images = {
            role: images.get(f"{name}.{role}", {}) for role in _ROLES
        }
        if not any(role_images.values()):
            continue  # attached but never written: nothing to recover
        policy = policy_factory(name) if policy_factory is not None else None
        try:
            catalog.adopt(
                name,
                role_images,
                algorithm=algorithm,
                policy=policy,
                record_size=record_size,
            )
        except CheckpointError:
            result.skipped.append(name)
            continue
        result.recovered.append(name)
    recovered_images: dict[str, dict[int, bytes]] = {}
    for name in result.recovered:
        entry = catalog.entry(name)
        recovered_images[f"{name}.sample"] = device_image(entry.sample_device)
        recovered_images[f"{name}.log"] = device_image(entry.log_device)
        recovered_images[f"{name}.meta"] = device_image(entry.meta_device)
    result.images = recovered_images
    result.recovered_digest = image_digest(recovered_images)
    if instrumentation is not None:
        instrumentation.emit(
            "replication.recovered",
            samples=len(result.recovered),
            skipped=len(result.skipped),
            applied_seq=result.applied_seq,
            consistent=result.consistent,
        )
    return result
