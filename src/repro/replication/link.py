"""Continuous, cost-clocked shipping of commit batches to a replica.

The :class:`ReplicationLink` is the primary-side half of the replication
pair.  It owns three things:

* the **capture set** -- every catalog device is wrapped in a
  :class:`~repro.storage.replicated.ReplicatedDevice` via
  :meth:`attach`, so all durable mutations are recorded in device order;
* the **commit stream** -- each
  :class:`~repro.storage.group_commit.GroupCommitBarrier` commit seals
  the pending records of its member devices into one
  :class:`CommitBatch`, stamped with the primary cost clock and a digest
  of the primary's durable state at that boundary;
* the **outbox** -- sealed batches wait (primary RAM, lost on crash)
  until the configured replication-lag budget expires, then ship to the
  :class:`~repro.replication.applier.ReplicaApplier`.

Time is the paper's cost clock
(:meth:`~repro.storage.cost_model.CostModel.cost_seconds`), not wall
time, so lag accounting is deterministic and seed-reproducible: a batch
sealed at cost-second *t* ships at the first shipping opportunity at or
after ``t + lag_budget``.  ``lag_budget=0`` ships every batch at the
next opportunity (the serve scheduler offers one after every event).

The per-batch **digest** is the disaster-recovery witness.  The link
maintains a shadow image per device -- a plain ``block -> bytes`` map
replayed from the sealed records, never read back from any device -- and
hashes all shadows at each seal.  After a primary crash, a catalog
rebuilt from the replica must reproduce the digest of the last *shipped*
batch byte-for-byte; sealed-but-unshipped batches are the (bounded,
budgeted) replication loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.obs.api import maybe_span
from repro.replication.applier import ReplicaApplier
from repro.storage.block_device import BlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.replicated import (
    BlockRecord,
    ReplicatedDevice,
    apply_to_image,
    image_digest,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.api import Instrumentation

__all__ = ["CommitBatch", "ReplicationLink"]


@dataclass(frozen=True)
class CommitBatch:
    """One sealed group commit: the unit the replica applies atomically.

    ``records`` interleaves the member devices' mutations as
    ``(device_name, record)`` pairs in capture order.  ``seal_time`` is
    the primary cost clock at the sealing barrier, and ``digest`` hashes
    the primary's durable state (all attached devices) at this boundary.
    """

    seq: int
    seal_time: float
    records: tuple[tuple[str, BlockRecord], ...]
    digest: str

    @property
    def payload_bytes(self) -> int:
        return sum(record.payload_bytes for _, record in self.records)


class ReplicationLink:
    """Primary-side capture, sealing and budget-clocked shipping."""

    def __init__(
        self,
        lag_budget: float = 0.0,
        applier: ReplicaApplier | None = None,
        instrumentation: "Instrumentation | None" = None,
    ) -> None:
        if lag_budget < 0:
            raise ValueError("lag_budget must be non-negative")
        self._lag_budget = lag_budget
        self._instr = instrumentation
        self._applier = (
            applier
            if applier is not None
            else ReplicaApplier(instrumentation=instrumentation)
        )
        self._devices: dict[str, ReplicatedDevice] = {}
        self._shadow: dict[str, dict[int, bytes]] = {}
        self._cost_model: CostModel | None = None
        #: every sealed batch, in order (the drill's primary-side witness)
        self.history: list[CommitBatch] = []
        #: sealed but not yet shipped (primary RAM; lost at a crash)
        self._outbox: list[CommitBatch] = []
        self.batches_sealed = 0
        self.batches_shipped = 0
        self.records_shipped = 0
        self.bytes_shipped = 0
        #: per-shipped-batch lag samples (cost-seconds), for the report
        self.lag_samples: list[float] = []
        if instrumentation is not None:
            self._g_lag = instrumentation.gauge("replication.lag_seconds")
            self._g_backlog = instrumentation.gauge("replication.backlog_batches")
            self._c_batches = instrumentation.counter("replication.shipped_batches")
            self._c_bytes = instrumentation.counter("replication.shipped_bytes")

    # -- introspection -------------------------------------------------------

    @property
    def lag_budget(self) -> float:
        return self._lag_budget

    @property
    def applier(self) -> ReplicaApplier:
        return self._applier

    @property
    def device_names(self) -> list[str]:
        return sorted(self._devices)

    @property
    def backlog(self) -> int:
        """Sealed batches not yet shipped (bounded by the lag budget)."""
        return len(self._outbox)

    # -- capture set ---------------------------------------------------------

    def attach(self, device: BlockDevice, name: str = "") -> ReplicatedDevice:
        """Wrap a primary device for capture and register its replica twin."""
        wrapped = ReplicatedDevice(device, name=name)
        if wrapped.name in self._devices:
            raise ValueError(f"device {wrapped.name!r} already attached")
        self._devices[wrapped.name] = wrapped
        self._shadow[wrapped.name] = {}
        self._applier.register(wrapped.name)
        if self._cost_model is None:
            self._cost_model = device.cost_model
        return wrapped

    # -- sealing (called by the group commit barrier) ------------------------

    def seal(self, devices: Sequence[ReplicatedDevice]) -> "CommitBatch | None":
        """Seal the members' pending records into one commit batch.

        Called by :meth:`GroupCommitBarrier.commit` *after* its flush
        phase, so every sealed record describes a block that is already
        durable on the primary.  Commits with nothing pending seal no
        batch (a refresh that moved no blocks ships nothing).
        """
        records: list[tuple[str, BlockRecord]] = []
        for device in devices:
            drained = device.drain_pending()
            if not drained:
                continue
            apply_to_image(self._shadow[device.name], drained)
            records.extend((device.name, record) for record in drained)
        if not records:
            return None
        now = self._cost_model.cost_seconds() if self._cost_model is not None else 0.0
        batch = CommitBatch(
            seq=self.batches_sealed + 1,
            seal_time=now,
            records=tuple(records),
            digest=image_digest(self._shadow),
        )
        self.batches_sealed += 1
        self.history.append(batch)
        self._outbox.append(batch)
        if self._instr is not None:
            self._g_backlog.set(len(self._outbox))
        return batch

    # -- shipping ------------------------------------------------------------

    def ship_due(self, now: float) -> int:
        """Ship every batch whose lag budget has expired; returns how many.

        The serve scheduler calls this after each processed event with
        the current cost clock -- the deterministic analogue of an async
        shipping daemon waking up.
        """
        shipped = 0
        while self._outbox and self._outbox[0].seal_time + self._lag_budget <= now:
            self._ship(self._outbox.pop(0), now)
            shipped += 1
        return shipped

    def ship_all(self) -> int:
        """Drain the outbox unconditionally (end-of-run / clean shutdown)."""
        now = self._cost_model.cost_seconds() if self._cost_model is not None else 0.0
        shipped = 0
        while self._outbox:
            batch = self._outbox.pop(0)
            self._ship(batch, max(now, batch.seal_time))
            shipped += 1
        return shipped

    def _ship(self, batch: CommitBatch, now: float) -> None:
        lag = max(0.0, now - batch.seal_time)
        with maybe_span(
            self._instr,
            "replication.ship",
            seq=batch.seq,
            records=len(batch.records),
            lag_seconds=round(lag, 9),
        ):
            self._applier.apply(batch)
        self.batches_shipped += 1
        self.records_shipped += len(batch.records)
        self.bytes_shipped += batch.payload_bytes
        self.lag_samples.append(lag)
        if self._instr is not None:
            self._g_lag.set(lag)
            self._g_backlog.set(len(self._outbox))
            self._c_batches.inc()
            self._c_bytes.inc(batch.payload_bytes)

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict:
        """The serve report's ``replication`` section (byte-stable)."""
        lags = self.lag_samples
        return {
            "enabled": True,
            "lag_budget": self._lag_budget,
            "devices": len(self._devices),
            "batches_sealed": self.batches_sealed,
            "batches_shipped": self.batches_shipped,
            "records_shipped": self.records_shipped,
            "bytes_shipped": self.bytes_shipped,
            "backlog_batches": len(self._outbox),
            "applied_seq": self._applier.applied_seq,
            "last_digest": self._applier.last_digest,
            "lag_seconds": {
                "count": len(lags),
                "max": round(max(lags), 9) if lags else 0.0,
                "mean": round(sum(lags) / len(lags), 9) if lags else 0.0,
            },
        }

    def __repr__(self) -> str:
        return (
            f"ReplicationLink(devices={len(self._devices)} "
            f"sealed={self.batches_sealed} shipped={self.batches_shipped} "
            f"backlog={len(self._outbox)})"
        )
