"""The replica site: devices rebuilt from the shipped commit stream.

A :class:`ReplicaApplier` models the secondary in a primary/secondary
pair.  It owns its *own* devices and its own
:class:`~repro.storage.cost_model.CostModel` -- replication is real I/O,
it just happens asynchronously on other hardware -- so attaching a
replica never perturbs the primary's paper-exact access accounting
(property-tested: a replicated run's primary stats are bit-identical to
an unreplicated run's).

The applier replays :class:`~repro.replication.link.CommitBatch`\\ es in
sequence order through :func:`repro.storage.apply_records`, which keeps
the device layer inside ``repro.storage`` (lint rule IO002).  Because a
batch is sealed only after the primary's group commit barrier, replica
state after any prefix of batches is a *commit-consistent* view: sample
file, candidate log and superblock manifest all as-of one barrier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.api import maybe_span
from repro.storage.block_device import SimulatedBlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.replicated import apply_records, device_image, image_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.api import Instrumentation
    from repro.replication.link import CommitBatch

__all__ = ["ReplicaApplier"]


class ReplicaApplier:
    """Replays shipped commit batches onto replica block devices."""

    def __init__(
        self,
        cost_model: CostModel | None = None,
        instrumentation: "Instrumentation | None" = None,
    ) -> None:
        self._cost_model = cost_model if cost_model is not None else CostModel()
        self._instr = instrumentation
        self._devices: dict[str, SimulatedBlockDevice] = {}
        #: sequence number of the newest applied batch (0 = nothing applied)
        self.applied_seq = 0
        #: the primary-computed digest carried by the newest applied batch
        self.last_digest = ""
        self.batches_applied = 0
        self.records_applied = 0
        self.bytes_applied = 0

    @property
    def cost_model(self) -> CostModel:
        """The replica's own cost clock (independent of the primary's)."""
        return self._cost_model

    @property
    def device_names(self) -> list[str]:
        return sorted(self._devices)

    def register(self, name: str) -> None:
        """Ensure a replica device exists for a primary device name.

        Called by the link at attach time (a control-plane handshake), so
        the replica's device set mirrors the primary's even before any
        data ships.
        """
        if name not in self._devices:
            self._devices[name] = SimulatedBlockDevice(self._cost_model, name=name)

    def device(self, name: str) -> SimulatedBlockDevice:
        self.register(name)
        return self._devices[name]

    def apply(self, batch: "CommitBatch") -> int:
        """Replay one commit batch, in stream order; returns payload bytes.

        Batches must arrive in sequence order -- the link ships its
        outbox FIFO, which guarantees it -- so replica state is always
        the primary's checkpoint-boundary prefix ``1..applied_seq``.
        """
        if batch.seq != self.applied_seq + 1:
            raise ValueError(
                f"commit batch {batch.seq} out of order "
                f"(replica has applied up to {self.applied_seq})"
            )
        applied = 0
        with maybe_span(
            self._instr,
            "replication.apply",
            seq=batch.seq,
            records=len(batch.records),
        ) as span:
            for name, record in batch.records:
                applied += apply_records(self.device(name), [record])
            if span is not None:
                span.set("bytes", applied)
        self.applied_seq = batch.seq
        self.last_digest = batch.digest
        self.batches_applied += 1
        self.records_applied += len(batch.records)
        self.bytes_applied += applied
        return applied

    # -- imaging (recovery + verification) -----------------------------------

    def images(self) -> dict[str, dict[int, bytes]]:
        """Snapshot every replica device's durable blocks, uncharged."""
        return {name: device_image(dev) for name, dev in self._devices.items()}

    def digest(self) -> str:
        """Digest of the replica's current state, computed replica-side.

        Matching this against the primary-computed ``last_digest`` is the
        non-circular consistency witness the DR drill checks: the two
        sites hash the same bytes via two independent code paths.
        """
        return image_digest(self.images())

    def stats(self) -> dict:
        return {
            "applied_seq": self.applied_seq,
            "batches_applied": self.batches_applied,
            "records_applied": self.records_applied,
            "bytes_applied": self.bytes_applied,
            "devices": len(self._devices),
            "last_digest": self.last_digest,
        }

    def __repr__(self) -> str:
        return (
            f"ReplicaApplier(applied_seq={self.applied_seq} "
            f"devices={len(self._devices)})"
        )
