"""Continuous catalog replication and disaster recovery.

The paper's durability story (superblock manifests, candidate logs,
idempotent refresh) makes every catalogued sample recoverable from its
*own* devices.  This subpackage extends that to losing the devices
themselves: a primary/secondary pair where every manifest save's group
commit seals a batch that ships, the secondary is always a prefix of
*checkpoint boundaries* (the only states a failover can resume), and
failover rebuilds a bit-identical catalog.

* :mod:`~repro.replication.link` -- primary-side capture, commit-batch
  sealing and lag-budgeted shipping (:class:`ReplicationLink`,
  :class:`CommitBatch`);
* :mod:`~repro.replication.applier` -- the replica site replaying the
  stream (:class:`ReplicaApplier`);
* :mod:`~repro.replication.recovery` -- failover
  (:func:`recover_from_replica`);
* :mod:`~repro.replication.drill` -- the seeded disaster-recovery drill
  the CI runs: crash the primary at an arbitrary (including
  mid-group-commit) write, recover from the replica, compare bytes;
* :mod:`~repro.replication.cli` -- the ``repro dr-drill`` command.

See ``docs/replication.md`` for the design and its invariants.
"""

from repro.replication.applier import ReplicaApplier
from repro.replication.drill import DrillConfig, run_drill
from repro.replication.link import CommitBatch, ReplicationLink
from repro.replication.recovery import RecoveryResult, recover_from_replica

__all__ = [
    "CommitBatch",
    "ReplicationLink",
    "ReplicaApplier",
    "RecoveryResult",
    "recover_from_replica",
    "DrillConfig",
    "run_drill",
]
