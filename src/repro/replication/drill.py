"""The disaster-recovery drill: crash the primary, fail over, compare bytes.

A drill is a fully deterministic, seed-reproducible experiment:

1. **Probe** -- run the configured serve workload (replicated catalog,
   buffer-pooled devices, group commits) with an *unarmed* shared
   :class:`~repro.storage.fault_injection.CrashBudget`, which counts
   every durable write across all devices and records the write-index
   windows that fall inside group-commit barriers.
2. **Aim** -- derive a crash point from the seed: any write in the run
   (``crash_phase="any"``), or one strictly inside a commit barrier
   (``crash_phase="barrier"``, the hardest case -- the multi-device
   flush is mid-flight, with torn-write splicing enabled).
3. **Crash** -- re-run the identical workload with the budget armed; the
   chosen write raises
   :class:`~repro.storage.fault_injection.InjectedCrash`, killing the
   primary.  Sealed-but-unshipped batches die with it.
4. **Recover** -- :func:`~repro.replication.recovery.recover_from_replica`
   rebuilds a catalog from what the replica had applied.
5. **Verify** -- three independent byte-level checks must agree:
   the replica's self-computed digest equals the primary's shadow digest
   for the recovery boundary (the non-circular witness); the recovered
   catalog's devices equal the replica's; and the recovered canonical
   image equals one rebuilt purely from the primary's sealed history
   prefix.  The CI job additionally ``cmp``\\ s the dumped artifacts
   across two same-seed runs to pin determinism.

Artifacts (``primary.img``, ``recovered.img``, ``drill-report.json``)
are byte-stable: no wall-clock timestamps, canonical serialisation,
sorted JSON keys.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.replication.link import ReplicationLink
from repro.replication.recovery import RecoveryResult, recover_from_replica
from repro.rng.random_source import RandomSource
from repro.storage.fault_injection import CrashBudget, InjectedCrash
from repro.storage.replicated import apply_to_image, canonical_image, image_digest

__all__ = ["DrillConfig", "run_drill"]

_CRASH_PHASES = ("any", "barrier")


@dataclass(frozen=True)
class DrillConfig:
    """One drill's complete, deterministic parameterisation."""

    seed: int = 1
    samples: int = 2
    sample_size: int = 48
    events: int = 120
    batch_size: int = 16
    refresh_every: int = 5
    checkpoint_every: int = 9
    algorithm: str = "stack"
    lag_budget: float = 0.0
    pool_capacity: int = 8
    record_size: int = 32
    #: explicit 1-based crash write index; ``None`` derives one from the seed
    crash_after: "int | None" = None
    #: ``"any"`` write, or only writes inside a group-commit ``"barrier"``
    crash_phase: str = "any"

    def __post_init__(self) -> None:
        if self.crash_phase not in _CRASH_PHASES:
            raise ValueError(
                f"crash_phase must be one of {_CRASH_PHASES}, got "
                f"{self.crash_phase!r}"
            )
        if self.samples < 1 or self.events < 1:
            raise ValueError("samples and events must be positive")
        if self.crash_after is not None and self.crash_after < 1:
            raise ValueError("crash_after is a 1-based write index")


def _mix(seed: int, salt: str) -> int:
    """Seed-derived deterministic integer (no ambient randomness)."""
    digest = hashlib.sha256(f"{seed}:{salt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _build_catalog(
    config: DrillConfig, link: ReplicationLink, budget: CrashBudget
):
    """The drill's primary: a replicated, pooled, crash-instrumented catalog."""
    from repro.serve.catalog import SampleCatalog

    catalog = SampleCatalog(
        pool_capacity=config.pool_capacity,
        replication=link,
        crash_budget=budget,
        torn_writes=True,
    )
    for index in range(config.samples):
        catalog.create(
            f"drill{index:02d}",
            sample_size=config.sample_size,
            algorithm=config.algorithm,
            seed=config.seed + index,
            record_size=config.record_size,
        )
        link.ship_due(catalog.cost_model.cost_seconds())
    return catalog


def _run_workload(config: DrillConfig, catalog, link: ReplicationLink) -> None:
    """Seeded ingest/refresh/checkpoint mix over every catalogued sample."""
    rng = RandomSource(_mix(config.seed, "workload") & 0x7FFFFFFF)
    names = catalog.names()
    for step in range(config.events):
        name = names[step % len(names)]
        batch = [rng.randrange(1 << 30) for _ in range(config.batch_size)]
        catalog.ingest(name, batch)
        if (step + 1) % config.refresh_every == 0:
            catalog.refresh(name)
        if (step + 1) % config.checkpoint_every == 0:
            catalog.checkpoint(name)
        link.ship_due(catalog.cost_model.cost_seconds())


def _probe(config: DrillConfig) -> CrashBudget:
    """Unarmed dry run: count writes, map the group-commit windows."""
    budget = CrashBudget()
    link = ReplicationLink(lag_budget=config.lag_budget)
    catalog = _build_catalog(config, link, budget)
    _run_workload(config, catalog, link)
    return budget

def _aim(config: DrillConfig, probe: CrashBudget) -> tuple[int, bool]:
    """(crash write index, lands-inside-a-barrier) for this drill."""
    total = probe.writes_seen
    if total == 0:
        raise RuntimeError("probe run performed no durable writes")
    if config.crash_after is not None:
        point = config.crash_after
    elif config.crash_phase == "barrier":
        windows = probe.commit_windows
        if not windows:
            raise RuntimeError("probe run recorded no group-commit windows")
        first, last = windows[_mix(config.seed, "window") % len(windows)]
        point = first + _mix(config.seed, "offset") % (last - first + 1)
    else:
        point = 1 + _mix(config.seed, "point") % total
    in_barrier = any(
        first <= point <= last for first, last in probe.commit_windows
    )
    return point, in_barrier


def run_drill(config: DrillConfig, out_dir: "str | Path | None" = None) -> dict:
    """Execute one drill end to end; returns the byte-stable report dict.

    When ``out_dir`` is given, dumps ``primary.img`` (canonical primary
    state at the recovery boundary, rebuilt from the sealed history),
    ``recovered.img`` (canonical recovered-catalog state) and
    ``drill-report.json`` there for the CI job's ``cmp`` checks.
    """
    probe = _probe(config)
    point, in_barrier = _aim(config, probe)

    # The armed run: identical stream, write #point raises InjectedCrash.
    budget = CrashBudget(writes_until_crash=point - 1)
    link = ReplicationLink(lag_budget=config.lag_budget)
    crashed = False
    try:
        catalog = _build_catalog(config, link, budget)
        _run_workload(config, catalog, link)
    except InjectedCrash:
        crashed = True

    applied = link.applier.applied_seq
    expected_digest = (
        link.history[applied - 1].digest if applied > 0 else image_digest({})
    )
    replica_digest = link.applier.digest()
    recovery: RecoveryResult = recover_from_replica(
        link.applier,
        algorithm=config.algorithm,
        record_size=config.record_size,
    )

    # Rebuild the primary's durable state at the recovery boundary from
    # the sealed history alone -- a third, independent reconstruction.
    rebuilt: dict[str, dict[int, bytes]] = {}
    for batch in link.history[:applied]:
        for name, record in batch.records:
            apply_to_image(rebuilt.setdefault(name, {}), [record])
    primary_bytes = canonical_image(rebuilt)
    recovered_bytes = canonical_image(recovery.images)

    checks = {
        "crash_injected": crashed,
        "witness_digest": replica_digest == expected_digest,
        "recovered_matches_replica": recovery.consistent,
        "bytes_identical": primary_bytes == recovered_bytes,
    }
    report = {
        "config": asdict(config),
        "probe": {
            "total_writes": probe.writes_seen,
            "commit_windows": len(probe.commit_windows),
        },
        "crash": {
            "point": point,
            "phase": config.crash_phase,
            "in_barrier": in_barrier,
        },
        "replication": {
            "batches_sealed": link.batches_sealed,
            "batches_shipped": link.batches_shipped,
            "batches_lost": link.batches_sealed - link.batches_shipped,
            "bytes_shipped": link.bytes_shipped,
            "applied_seq": applied,
        },
        "recovery": {
            "recovered": recovery.recovered,
            "skipped": recovery.skipped,
        },
        "digests": {
            "expected": expected_digest,
            "replica": replica_digest,
            "recovered": recovery.recovered_digest,
        },
        "checks": checks,
        "ok": all(checks.values()),
    }
    if out_dir is not None:
        directory = Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "primary.img").write_bytes(primary_bytes)
        (directory / "recovered.img").write_bytes(recovered_bytes)
        (directory / "drill-report.json").write_text(
            json.dumps(report, sort_keys=True, indent=2) + "\n"
        )
    return report
