"""Immediate (eager) reservoir maintenance of the disk sample.

The baseline every figure compares against: each accepted insertion is
written to a uniformly random sample slot at once, paying one random block
write per candidate.  It is a thin, self-contained convenience over
``SampleMaintainer(strategy="immediate")`` so experiments can treat all
baselines uniformly.
"""

from __future__ import annotations

from repro.core.reservoir import ReservoirSampler
from repro.obs.api import Instrumentation
from repro.rng.random_source import RandomSource
from repro.storage.files import SampleFile

__all__ = ["ImmediateMaintainer"]


class ImmediateMaintainer:
    """Keeps the on-disk sample exactly up to date, one insert at a time."""

    name = "immediate"

    def __init__(
        self,
        sample: SampleFile,
        rng: RandomSource,
        initial_dataset_size: int,
        skip_method: str = "auto",
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if initial_dataset_size < sample.size:
            raise ValueError(
                "immediate maintenance needs an existing full sample: dataset "
                f"size {initial_dataset_size} < sample size {sample.size}"
            )
        self._sample = sample
        self._reservoir = ReservoirSampler(
            sample.size, rng, initial_size=initial_dataset_size,
            skip_method=skip_method,
        )
        self.accepted = 0
        self._instr = instrumentation
        if instrumentation is not None:
            labels = {"strategy": self.name}
            self._c_inserts = instrumentation.counter("maintenance.inserts", labels)
            self._c_accepted = instrumentation.counter("maintenance.accepted", labels)
            self._c_rejected = instrumentation.counter("maintenance.rejected", labels)

    @property
    def sample(self) -> SampleFile:
        return self._sample

    @property
    def dataset_size(self) -> int:
        return self._reservoir.seen

    def insert(self, element) -> bool:
        """Process one insertion; True if it entered the sample."""
        slot = self._reservoir.offer(element)
        if slot is None:
            if self._instr is not None:
                self._c_inserts.inc()
                self._c_rejected.inc()
            return False
        self._sample.write_random(slot, element)
        self.accepted += 1
        if self._instr is not None:
            self._c_inserts.inc()
            self._c_accepted.inc()
        return True

    def insert_many(self, elements) -> None:
        for element in elements:
            self.insert(element)
