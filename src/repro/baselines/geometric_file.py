"""Geometric File reconstruction (Jermaine, Pol & Arumugam, SIGMOD 2004).

The GF is the only prior algorithm for deferred maintenance of a
disk-based reservoir sample, and the paper's head-to-head baseline
(Sec. 6.5, Fig. 14).  No open-source implementation exists; this module
reconstructs it from the published description, preserving the properties
the EDBT paper's comparison rests on:

1. arriving candidates are buffered **in memory**; the buffer is part of
   the sample, is accessed randomly, and "cannot be serialized to disk
   without losing performance";
2. a refresh happens exactly when the buffer fills -- the refresh cadence
   and the buffer size cannot be chosen independently (Sec. 6.5);
3. a flush writes the buffer **sequentially** as a fresh segment -- "the
   major part of the GF is never read, most updates have block-level
   granularity and are written sequentially";
4. victims displaced by buffered candidates are shed from the existing
   segments: because segment contents are randomly ordered, shedding a
   uniform victim is equivalent to truncating a segment tail, but every
   segment must still have its tail block compacted and its header
   rewritten -- per-segment random I/O that does not shrink with the
   buffer (the GF's small-buffer penalty).

Cost model (documented substitution -- see DESIGN.md): the data path is
fully implemented (membership, victim replacement, flush movement), while
the per-flush I/O charge follows the mechanics above:

* ``ceil(flushed/elements_per_block)`` sequential writes for the new
  segment plus one seek (random write);
* per existing segment, ``boundary_ios`` random read/write pairs for tail
  compaction and header update, with the segment count tracking
  ``sample_size / buffer_capacity`` (segments are sized like the buffer
  that created them, as flushes are what create segments).

With the default ``boundary_ios = 2`` this lands the Fig. 14 crossovers
where the paper reports them (GF loses to candidate refresh below ~3-4 %
buffer fraction and wins above), which is the behaviour the comparison is
about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.api import Instrumentation, maybe_span
from repro.rng.random_source import RandomSource
from repro.storage.cost_model import CostModel
from repro.storage.memory import MemoryReport

__all__ = ["GeometricFile", "GeometricFileParameters"]


@dataclass(frozen=True)
class GeometricFileParameters:
    """Tunables of the GF reconstruction.

    ``boundary_ios`` is the number of random read/write pairs charged per
    segment per flush (tail compaction + header rewrite).  ``min_segment``
    is the segment-size floor corresponding to the paper's fixed GF
    segment parameter (footnote 5: "block-aligned segments, beta = 32k");
    the default is calibrated so the Fig. 14 crossovers land at the
    paper's ~3 % (vs. full) and ~4 % (vs. candidate) buffer fractions.
    """

    boundary_ios: int = 2
    min_segment: int = 16_384

    def __post_init__(self) -> None:
        if self.boundary_ios < 1:
            raise ValueError("boundary_ios must be at least 1")
        if self.min_segment < 1:
            raise ValueError("min_segment must be at least 1")


class GeometricFile:
    """Disk-based reservoir sample with an in-memory candidate buffer.

    The sample always has exactly ``sample_size`` members; up to
    ``buffer_capacity`` of them live in the in-memory buffer, the rest on
    disk.  ``on_flush`` (if given) is called after every flush -- the
    Fig. 14 experiment uses it to refresh the competing algorithms at the
    GF's cadence.
    """

    name = "geometric-file"

    def __init__(
        self,
        sample_size: int,
        buffer_capacity: int,
        rng: RandomSource,
        cost_model: CostModel,
        initial_sample: list | None = None,
        initial_dataset_size: int | None = None,
        parameters: GeometricFileParameters = GeometricFileParameters(),
        on_flush=None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        if not 0 < buffer_capacity <= sample_size:
            raise ValueError(
                f"buffer_capacity must be in (0, {sample_size}], got {buffer_capacity}"
            )
        if initial_dataset_size is None:
            initial_dataset_size = sample_size
        if initial_dataset_size < sample_size:
            raise ValueError("dataset must be at least as large as the sample")
        self._size = sample_size
        self._capacity = buffer_capacity
        self._rng = rng
        self._cost = cost_model
        self._params = parameters
        self._on_flush = on_flush
        self._seen = initial_dataset_size
        self._buffer: list = []
        if initial_sample is None:
            self._disk: list = list(range(sample_size))
        else:
            if len(initial_sample) != sample_size:
                raise ValueError(
                    f"initial sample must have {sample_size} elements, "
                    f"got {len(initial_sample)}"
                )
            self._disk = list(initial_sample)
        # Write the initial sample sequentially, as the paper does for
        # every on-disk sample.
        self._cost.charge("write", sequential=True, count=self._blocks(sample_size))
        self.flushes = 0
        self.memory = MemoryReport()
        self._instr = instrumentation
        if instrumentation is not None:
            self._c_flushes = instrumentation.counter("gf.flushes")
            self._g_buffered = instrumentation.gauge("gf.buffered_elements")

    # -- public state ---------------------------------------------------------

    @property
    def sample_size(self) -> int:
        return self._size

    @property
    def buffer_capacity(self) -> int:
        return self._capacity

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    @property
    def dataset_size(self) -> int:
        return self._seen

    @property
    def segment_count(self) -> int:
        """Live segments on disk: sized like the buffer, floored at beta."""
        segment_elements = max(self._capacity, self._params.min_segment)
        return max(1, round(self._size / segment_elements))

    def members(self) -> list:
        """Current sample membership, buffer included (testing aid)."""
        return list(self._disk) + list(self._buffer)

    # -- maintenance ------------------------------------------------------------

    def insert(self, element) -> bool:
        """Process one insertion; True if it became a candidate."""
        self._seen += 1
        if self._rng.random() * self._seen >= self._size:
            return False
        # The candidate displaces a uniform victim among all M members.
        victim = self._rng.randrange(self._size)
        if victim < len(self._buffer):
            # Victim is itself buffered: replace it in memory, free of I/O.
            self._buffer[victim] = element
        else:
            # Victim is on disk: it is shed at the next flush; buffer grows.
            disk_victim = self._rng.randrange(len(self._disk))
            self._disk[disk_victim] = self._disk[-1]
            self._disk.pop()
            self._buffer.append(element)
            self.memory.account_elements(
                len(self._buffer), self._cost.disk.element_size
            )
            if self._instr is not None:
                self._g_buffered.set(len(self._buffer))
            if len(self._buffer) >= self._capacity:
                self.flush()
        return True

    def insert_many(self, elements) -> None:
        for element in elements:
            self.insert(element)

    def flush(self) -> None:
        """Write the buffer to disk as a new segment and shed victims.

        No-op when the buffer is empty.
        """
        flushed = len(self._buffer)
        if flushed == 0:
            return
        with maybe_span(
            self._instr, "gf.flush", flushed=flushed, segments=self.segment_count
        ):
            # New segment: one seek plus sequential block writes.
            self._cost.charge("write", sequential=False)
            self._cost.charge("write", sequential=True, count=self._blocks(flushed))
            # Tail compaction and header rewrite on every live segment.
            ios = self.segment_count * self._params.boundary_ios
            self._cost.charge("read", sequential=False, count=ios)
            self._cost.charge("write", sequential=False, count=ios)
            self._disk.extend(self._buffer)
            self._buffer = []
            self.flushes += 1
        if self._instr is not None:
            self._c_flushes.inc()
            self._g_buffered.set(0)
        if self._on_flush is not None:
            self._on_flush(self)

    # -- internals ---------------------------------------------------------------

    def _blocks(self, elements: int) -> int:
        return self._cost.disk.blocks_for_elements(elements)
