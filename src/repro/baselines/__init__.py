"""Comparison baselines from the paper's evaluation.

* :class:`~repro.baselines.immediate.ImmediateMaintainer` -- classic
  reservoir maintenance applied to the disk sample element by element
  (the "Immediate" line in Figs. 6-11);
* :class:`~repro.baselines.geometric_file.GeometricFile` -- a
  reconstruction of Jermaine et al.'s geometric file (SIGMOD 2004), the
  only prior deferred disk-sample maintainer (Sec. 6.5, Fig. 14).
"""

from repro.baselines.immediate import ImmediateMaintainer
from repro.baselines.geometric_file import GeometricFile, GeometricFileParameters

__all__ = ["ImmediateMaintainer", "GeometricFile", "GeometricFileParameters"]
