"""Data-stream environment (the paper's Sec. 1/2 motivation).

A data stream management system samples for two reasons the paper cites:
bounding state for whole-stream statistics, and load shedding.  This
subpackage provides synthetic stream sources and a sampling operator whose
online path is exactly the paper's log phase -- cheap enough for high
arrival rates -- while refresh runs out-of-band ("the refresh may be
conducted by an independent system which has access to the log file,
thereby not affecting online processing", Sec. 6).
"""

from repro.stream.source import (
    StreamSource,
    counter_stream,
    uniform_stream,
    zipf_stream,
    bursty_stream,
    batched,
    counter_batches,
    uniform_batches,
    zipf_batches,
    bursty_batches,
)
from repro.stream.operator import StreamSampleOperator

__all__ = [
    "StreamSource",
    "counter_stream",
    "uniform_stream",
    "zipf_stream",
    "bursty_stream",
    "batched",
    "counter_batches",
    "uniform_batches",
    "zipf_batches",
    "bursty_batches",
    "StreamSampleOperator",
]
