"""Synthetic stream sources for workloads and tests.

All sources are deterministic generators over a :class:`RandomSource`, so
experiments are reproducible.  Values are integers (they round-trip
through :class:`~repro.storage.records.IntRecordCodec` unchanged).
"""

from __future__ import annotations

import math
from typing import Iterator, Protocol

from repro.rng.random_source import RandomSource

__all__ = [
    "StreamSource",
    "counter_stream",
    "uniform_stream",
    "zipf_stream",
    "bursty_stream",
    "batched",
    "counter_batches",
    "uniform_batches",
    "zipf_batches",
    "bursty_batches",
]


class StreamSource(Protocol):
    """An (optionally unbounded) iterator of stream elements."""

    def __iter__(self) -> Iterator[int]:  # pragma: no cover - protocol
        ...


def counter_stream(start: int = 0, count: int | None = None) -> Iterator[int]:
    """Monotonically increasing integers -- the paper's workload shape.

    The experiments only care about arrival *counts*, so distinct,
    recognisable values make verification easy.
    """
    value = start
    emitted = 0
    while count is None or emitted < count:
        yield value
        value += 1
        emitted += 1


def uniform_stream(rng: RandomSource, low: int, high: int, count: int) -> Iterator[int]:
    """``count`` integers uniform over ``[low, high]``."""
    if high < low:
        raise ValueError(f"empty range [{low}, {high}]")
    for _ in range(count):
        yield rng.randint(low, high)


def zipf_stream(
    rng: RandomSource, universe: int, count: int, exponent: float = 1.2
) -> Iterator[int]:
    """Zipf-distributed values over ``[0, universe)`` -- skewed streams.

    Inverse-CDF over precomputed cumulative weights; adequate for the
    moderate universes used in examples and tests.
    """
    if universe <= 0:
        raise ValueError("universe must be positive")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    weights = [1.0 / math.pow(rank + 1, exponent) for rank in range(universe)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    for _ in range(count):
        u = rng.random()
        yield _bisect(cumulative, u)


def bursty_stream(
    rng: RandomSource,
    count: int,
    burst_length: int = 100,
    quiet_length: int = 900,
    value_start: int = 0,
) -> Iterator[tuple[int, int]]:
    """``(timestamp, value)`` pairs alternating bursts and quiet periods.

    Used by the load-shedding example: bursts model arrival spikes the
    online phase must absorb cheaply.
    """
    if burst_length <= 0 or quiet_length < 0:
        raise ValueError("invalid burst/quiet lengths")
    timestamp = 0
    value = value_start
    emitted = 0
    while emitted < count:
        for _ in range(min(burst_length, count - emitted)):
            yield timestamp, value
            timestamp += 1  # back-to-back arrivals
            value += 1
            emitted += 1
        timestamp += quiet_length  # idle gap
    return


# ---------------------------------------------------------------------------
# Batched variants: lists of elements, for the skip-based ingestion path
# ---------------------------------------------------------------------------
#
# ``StreamSampleOperator.process_many`` / ``SampleMaintainer.insert_many``
# do O(accepted) work per batch, so per-element generator overhead on the
# *producer* side would dominate.  Each batched source yields lists and
# draws exactly the same variates in the same order as its scalar
# counterpart: ``list(chain(*batches))`` equals the scalar stream for the
# same seed.


def batched(stream: "StreamSource | Iterator[int]", batch_size: int) -> Iterator[list]:
    """Chunk any stream source into lists of at most ``batch_size``."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    batch: list = []
    for element in stream:
        batch.append(element)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def counter_batches(
    batch_size: int, start: int = 0, count: int | None = None
) -> Iterator[range]:
    """Batched :func:`counter_stream`: consecutive ``range`` objects.

    Ranges support ``len``/slicing without materialising elements, so the
    batch insert path can consume them with zero per-element cost.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    value = start
    emitted = 0
    while count is None or emitted < count:
        n = batch_size if count is None else min(batch_size, count - emitted)
        yield range(value, value + n)
        value += n
        emitted += n


def uniform_batches(
    rng: RandomSource, low: int, high: int, count: int, batch_size: int
) -> Iterator[list[int]]:
    """Batched :func:`uniform_stream`: same values, one list per batch."""
    if high < low:
        raise ValueError(f"empty range [{low}, {high}]")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    randint = rng.randint
    for start in range(0, count, batch_size):
        n = min(batch_size, count - start)
        yield [randint(low, high) for _ in range(n)]


def zipf_batches(
    rng: RandomSource,
    universe: int,
    count: int,
    batch_size: int,
    exponent: float = 1.2,
) -> Iterator[list[int]]:
    """Batched :func:`zipf_stream`: same values, one list per batch."""
    if universe <= 0:
        raise ValueError("universe must be positive")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    weights = [1.0 / math.pow(rank + 1, exponent) for rank in range(universe)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    random = rng.random
    for start in range(0, count, batch_size):
        n = min(batch_size, count - start)
        yield [_bisect(cumulative, random()) for _ in range(n)]


def bursty_batches(
    rng: RandomSource,
    count: int,
    batch_size: int,
    burst_length: int = 100,
    quiet_length: int = 900,
    value_start: int = 0,
) -> Iterator[list[tuple[int, int]]]:
    """Batched :func:`bursty_stream`: same ``(timestamp, value)`` pairs."""
    return batched(
        bursty_stream(
            rng,
            count,
            burst_length=burst_length,
            quiet_length=quiet_length,
            value_start=value_start,
        ),
        batch_size,
    )


def _bisect(cumulative: list[float], u: float) -> int:
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return lo
