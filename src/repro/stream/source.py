"""Synthetic stream sources for workloads and tests.

All sources are deterministic generators over a :class:`RandomSource`, so
experiments are reproducible.  Values are integers (they round-trip
through :class:`~repro.storage.records.IntRecordCodec` unchanged).
"""

from __future__ import annotations

import math
from typing import Iterator, Protocol

from repro.rng.random_source import RandomSource

__all__ = [
    "StreamSource",
    "counter_stream",
    "uniform_stream",
    "zipf_stream",
    "bursty_stream",
]


class StreamSource(Protocol):
    """An (optionally unbounded) iterator of stream elements."""

    def __iter__(self) -> Iterator[int]:  # pragma: no cover - protocol
        ...


def counter_stream(start: int = 0, count: int | None = None) -> Iterator[int]:
    """Monotonically increasing integers -- the paper's workload shape.

    The experiments only care about arrival *counts*, so distinct,
    recognisable values make verification easy.
    """
    value = start
    emitted = 0
    while count is None or emitted < count:
        yield value
        value += 1
        emitted += 1


def uniform_stream(rng: RandomSource, low: int, high: int, count: int) -> Iterator[int]:
    """``count`` integers uniform over ``[low, high]``."""
    if high < low:
        raise ValueError(f"empty range [{low}, {high}]")
    for _ in range(count):
        yield rng.randint(low, high)


def zipf_stream(
    rng: RandomSource, universe: int, count: int, exponent: float = 1.2
) -> Iterator[int]:
    """Zipf-distributed values over ``[0, universe)`` -- skewed streams.

    Inverse-CDF over precomputed cumulative weights; adequate for the
    moderate universes used in examples and tests.
    """
    if universe <= 0:
        raise ValueError("universe must be positive")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    weights = [1.0 / math.pow(rank + 1, exponent) for rank in range(universe)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    for _ in range(count):
        u = rng.random()
        yield _bisect(cumulative, u)


def bursty_stream(
    rng: RandomSource,
    count: int,
    burst_length: int = 100,
    quiet_length: int = 900,
    value_start: int = 0,
) -> Iterator[tuple[int, int]]:
    """``(timestamp, value)`` pairs alternating bursts and quiet periods.

    Used by the load-shedding example: bursts model arrival spikes the
    online phase must absorb cheaply.
    """
    if burst_length <= 0 or quiet_length < 0:
        raise ValueError("invalid burst/quiet lengths")
    timestamp = 0
    value = value_start
    emitted = 0
    while emitted < count:
        for _ in range(min(burst_length, count - emitted)):
            yield timestamp, value
            timestamp += 1  # back-to-back arrivals
            value += 1
            emitted += 1
        timestamp += quiet_length  # idle gap
    return


def _bisect(cumulative: list[float], u: float) -> int:
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return lo
