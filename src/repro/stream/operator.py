"""Stream sampling operator: cheap online path, out-of-band refresh.

Wraps a :class:`~repro.core.maintenance.SampleMaintainer` as a stream
operator.  ``process()`` is the per-tuple online path a DSMS would run
inside its operator pipeline; ``refresh_due()`` and ``refresh()`` expose
the offline path so an independent refresher (or a quiet period) can run
it -- the decoupling the paper's online/offline cost split models.
"""

from __future__ import annotations

from repro.core.maintenance import SampleMaintainer
from repro.core.refresh.base import RefreshResult

__all__ = ["StreamSampleOperator"]


class StreamSampleOperator:
    """Per-tuple sampling operator over a maintainer with a manual policy.

    ``refresh_interval`` is the number of stream tuples between refreshes;
    the operator never refreshes inside :meth:`process` -- it only reports
    that a refresh is due, so the caller controls when offline work runs.
    """

    def __init__(self, maintainer: SampleMaintainer, refresh_interval: int) -> None:
        if refresh_interval <= 0:
            raise ValueError("refresh_interval must be positive")
        self._maintainer = maintainer
        self._interval = refresh_interval
        self._since_refresh = 0
        self.tuples_processed = 0
        self.refreshes = 0

    @property
    def maintainer(self) -> SampleMaintainer:
        return self._maintainer

    def process(self, element) -> None:
        """Online path: log-phase work only."""
        self._maintainer.insert(element)
        self.tuples_processed += 1
        self._since_refresh += 1

    def process_many(self, elements) -> int:
        """Process a batch on the skip-based fast path; returns tuples consumed.

        Consumption stops at the refresh boundary: a batch spanning it is
        split, the prefix up to the boundary is consumed, and the
        remainder is left to the caller -- who runs :meth:`refresh` (or
        schedules it out of band) and re-offers the rest.  Without the
        split, a large batch would silently defer the refresh past its
        due point (the operator itself never refreshes inside the online
        path).
        """
        if not isinstance(elements, (list, tuple, range)):
            elements = list(elements)
        budget = self._interval - self._since_refresh
        if budget <= 0:
            return 0
        chunk = elements[:budget] if len(elements) > budget else elements
        consumed = self._maintainer.insert_many(chunk)
        self.tuples_processed += consumed
        self._since_refresh += consumed
        return consumed

    def refresh_due(self) -> bool:
        return self._since_refresh >= self._interval

    def refresh(self) -> RefreshResult | None:
        """Offline path; runnable from an independent thread of control."""
        result = self._maintainer.refresh()
        self._since_refresh = 0
        self.refreshes += 1
        return result
