"""Stream sampling operator: cheap online path, out-of-band refresh.

Wraps a :class:`~repro.core.maintenance.SampleMaintainer` as a stream
operator.  ``process()`` is the per-tuple online path a DSMS would run
inside its operator pipeline; ``refresh_due()`` and ``refresh()`` expose
the offline path so an independent refresher (or a quiet period) can run
it -- the decoupling the paper's online/offline cost split models.
"""

from __future__ import annotations

from repro.core.maintenance import SampleMaintainer
from repro.core.refresh.base import RefreshResult

__all__ = ["StreamSampleOperator"]


class StreamSampleOperator:
    """Per-tuple sampling operator over a maintainer with a manual policy.

    ``refresh_interval`` is the number of stream tuples between refreshes;
    the operator never refreshes inside :meth:`process` -- it only reports
    that a refresh is due, so the caller controls when offline work runs.
    """

    def __init__(self, maintainer: SampleMaintainer, refresh_interval: int) -> None:
        if refresh_interval <= 0:
            raise ValueError("refresh_interval must be positive")
        self._maintainer = maintainer
        self._interval = refresh_interval
        self._since_refresh = 0
        self.tuples_processed = 0
        self.refreshes = 0

    @property
    def maintainer(self) -> SampleMaintainer:
        return self._maintainer

    def process(self, element) -> None:
        """Online path: log-phase work only."""
        self._maintainer.insert(element)
        self.tuples_processed += 1
        self._since_refresh += 1

    def process_many(self, elements) -> int:
        """Process a batch; returns how many tuples were consumed."""
        consumed = 0
        for element in elements:
            self.process(element)
            consumed += 1
        return consumed

    def refresh_due(self) -> bool:
        return self._since_refresh >= self._interval

    def refresh(self) -> RefreshResult | None:
        """Offline path; runnable from an independent thread of control."""
        result = self._maintainer.refresh()
        self._since_refresh = 0
        self.refreshes += 1
        return result
