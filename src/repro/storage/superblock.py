"""Durable maintenance checkpoints (superblock).

One of the paper's arguments against the geometric file is crash safety:
the GF keeps part of the sample in a randomly-accessed memory buffer that
"cannot be serialized to disk without losing performance", so a failure
loses sample state (Sec. 6.5).  The candidate-log design has no such
problem -- the log and the sample are both on disk -- *provided* the small
amount of maintenance state (dataset size, log length, PRNG state) is also
durable.  This module makes it so:

* :class:`MaintenanceCheckpoint` -- the complete resumable state of a
  :class:`~repro.core.maintenance.SampleMaintainer`, including the full
  MT19937 state so that maintenance resumed from a checkpoint makes
  *bit-identical* decisions to an uninterrupted run (the same property
  Nomem Refresh exploits, applied to durability);
* :class:`CheckpointStore` -- serialises a checkpoint into a single
  4 096-byte superblock on a block device (one random write to save, one
  random read to load).

Everything fits one block: MT19937 state is 624 words (~2.5 kB), the rest
a few integers.  Recovery semantics are write-ahead-log style: a
checkpoint captures the state *as of its moment*; elements inserted after
it must be replayed by the upstream source, and -- because the PRNG state
is restored exactly -- the replay reproduces the original acceptance
decisions verbatim.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.rng.mt19937 import MTState
from repro.rng.random_source import RandomSource
from repro.storage.block_device import BlockDevice
from repro.storage.bufferpool import flush_barrier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.group_commit import GroupCommitBarrier

__all__ = [
    "MaintenanceCheckpoint",
    "CheckpointStore",
    "DualSlotCheckpointStore",
    "CheckpointError",
]

_MAGIC = b"RSMP"
_VERSION = 3
_STRATEGIES = ("immediate", "candidate", "full")
# Must mirror repro.core.kinds.KINDS (append-only; asserted by the kind
# tests).  Kept as a local tuple so the storage layer stays below core/.
_KINDS = ("uniform", "weighted", "window")

# magic(4) version(H) strategy(B) flags(B) sample_size(q) dataset_size(q)
# dataset_at_refresh(q) log_count(q) inserts(q) refreshes(q)
# pending_accept(q) ops_since_refresh(q) seed(Q) spawn_count(I) w(d)
# mt_position(i) kind(B) kind_param(q) kind_threshold(d)
# crc(I) + 624 mt words
_HEADER = struct.Struct("<4sHBBqqqqqqqqQIdiBqd")
_MT_WORDS = struct.Struct("<624I")
_CRC = struct.Struct("<I")
_FLAG_HAS_W = 1


class CheckpointError(RuntimeError):
    """Raised when a superblock is missing, corrupt, or incompatible."""


@dataclass(frozen=True)
class MaintenanceCheckpoint:
    """Everything needed to resume maintenance exactly where it stopped."""

    strategy: str
    sample_size: int
    dataset_size: int
    dataset_size_at_refresh: int
    log_count: int
    inserts: int
    refreshes: int
    #: the reservoir's precomputed next-acceptance position (skip-based
    #: acceptance keeps one pending draw); None when not yet determined
    pending_accept: int | None
    ops_since_refresh: int
    rng_seed: int
    rng_spawn_count: int
    rng_state: MTState
    rng_w: float | None
    #: sample-kind manifest fields (version 3+).  ``kind_name`` is one of
    #: the registered kinds; ``kind_param`` its integer parameter
    #: (weighted: weight modulus; window: window size); ``kind_threshold``
    #: the weighted kind's stale acceptance threshold, serialised
    #: bit-exactly so reopened samples accept the same candidates.
    kind_name: str = "uniform"
    kind_param: int = 0
    kind_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.kind_name not in _KINDS:
            raise ValueError(f"unknown sample kind {self.kind_name!r}")
        for name in (
            "sample_size", "dataset_size", "dataset_size_at_refresh",
            "log_count", "inserts", "refreshes", "rng_spawn_count",
            "ops_since_refresh",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # -- serialisation ------------------------------------------------------

    def to_bytes(self, block_size: int = 4096) -> bytes:
        """Encode into exactly one zero-padded block, CRC-protected."""
        flags = _FLAG_HAS_W if self.rng_w is not None else 0
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            _STRATEGIES.index(self.strategy),
            flags,
            self.sample_size,
            self.dataset_size,
            self.dataset_size_at_refresh,
            self.log_count,
            self.inserts,
            self.refreshes,
            self.pending_accept if self.pending_accept is not None else -1,
            self.ops_since_refresh,
            self.rng_seed & 0xFFFFFFFFFFFFFFFF,
            self.rng_spawn_count,
            self.rng_w if self.rng_w is not None else 0.0,
            self.rng_state.position,
            _KINDS.index(self.kind_name),
            self.kind_param,
            self.kind_threshold,
        )
        body = header + _MT_WORDS.pack(*self.rng_state.key)
        payload = body + _CRC.pack(zlib.crc32(body))
        if len(payload) > block_size:
            raise ValueError(
                f"checkpoint needs {len(payload)} bytes; block is {block_size}"
            )
        return payload.ljust(block_size, b"\x00")

    @classmethod
    def from_bytes(cls, data: bytes) -> "MaintenanceCheckpoint":
        if len(data) < _HEADER.size + _MT_WORDS.size + _CRC.size:
            raise CheckpointError("superblock too short")
        body_len = _HEADER.size + _MT_WORDS.size
        body = data[:body_len]
        (stored_crc,) = _CRC.unpack_from(data, body_len)
        if stored_crc != zlib.crc32(body):
            raise CheckpointError("superblock CRC mismatch (corrupt or torn write)")
        (
            magic, version, strategy_idx, flags,
            sample_size, dataset_size, dataset_at_refresh, log_count,
            inserts, refreshes, pending_accept, ops_since_refresh,
            seed, spawn_count, w, position,
            kind_idx, kind_param, kind_threshold,
        ) = _HEADER.unpack_from(body)
        if magic != _MAGIC:
            raise CheckpointError(f"bad superblock magic {magic!r}")
        if version != _VERSION:
            raise CheckpointError(
                f"superblock version {version} unsupported (expected {_VERSION})"
            )
        if not 0 <= strategy_idx < len(_STRATEGIES):
            raise CheckpointError(f"invalid strategy index {strategy_idx}")
        if not 0 <= kind_idx < len(_KINDS):
            raise CheckpointError(f"invalid sample-kind index {kind_idx}")
        key = _MT_WORDS.unpack_from(body, _HEADER.size)
        return cls(
            strategy=_STRATEGIES[strategy_idx],
            sample_size=sample_size,
            dataset_size=dataset_size,
            dataset_size_at_refresh=dataset_at_refresh,
            log_count=log_count,
            inserts=inserts,
            refreshes=refreshes,
            pending_accept=pending_accept if pending_accept >= 0 else None,
            ops_since_refresh=ops_since_refresh,
            rng_seed=seed,
            rng_spawn_count=spawn_count,
            rng_state=MTState(key=key, position=position),
            rng_w=w if (flags & _FLAG_HAS_W) else None,
            kind_name=_KINDS[kind_idx],
            kind_param=kind_param,
            kind_threshold=kind_threshold,
        )

    # -- RNG reconstruction ----------------------------------------------------

    def restore_rng(self) -> RandomSource:
        """Rebuild the maintainer's RandomSource exactly as checkpointed.

        Restores the generator state, the Algorithm-Z auxiliary variable
        *and* the spawn counter, so child streams derived after recovery
        match the ones an uninterrupted run would derive.
        """
        rng = RandomSource.__new__(RandomSource)
        rng._seed = self.rng_seed
        from repro.rng.mt19937 import MT19937

        generator = MT19937.__new__(MT19937)
        generator.setstate(self.rng_state)
        rng._gen = generator
        rng._spawn_count = self.rng_spawn_count
        rng._w = self.rng_w
        return rng

    @staticmethod
    def capture_rng(rng: RandomSource) -> tuple[int, int, MTState, float | None]:
        """Extract the serialisable RNG fields from a live source."""
        state, w = rng.snapshot()
        return rng.seed, rng._spawn_count, state, w


class CheckpointStore:
    """Persists one checkpoint in a superblock on a block device.

    ``block_index`` defaults to 0 -- give the store its own small device
    (or reserve the first block of an existing one).
    """

    def __init__(
        self,
        device: BlockDevice,
        block_index: int = 0,
        commit_barrier: "GroupCommitBarrier | None" = None,
    ) -> None:
        if block_index < 0:
            raise ValueError("block_index must be non-negative")
        self._device = device
        self._block_index = block_index
        self._barrier = commit_barrier

    def save(self, checkpoint: MaintenanceCheckpoint) -> None:
        """Write the superblock: one random block write, flushed through.

        A checkpoint that sits in a buffer pool is no checkpoint at all,
        so the save ends with a flush barrier -- the group commit across
        the sample's devices when one is attached (which also seals the
        replication batch), else a barrier on this store's own device.
        """
        data = checkpoint.to_bytes(self._device.block_size)
        self._device.write_block(self._block_index, data, sequential=False)
        if self._barrier is not None:
            self._barrier.commit()
        else:
            flush_barrier(self._device)

    def load(self) -> MaintenanceCheckpoint:
        """Read and validate the superblock: one random block read."""
        data = self._device.read_block(self._block_index, sequential=False)
        return MaintenanceCheckpoint.from_bytes(data)

    def exists(self) -> bool:
        """True if the superblock location holds a valid checkpoint."""
        data = self._device.peek_block(self._block_index)
        try:
            MaintenanceCheckpoint.from_bytes(data)
        except CheckpointError:
            return False
        return True


class DualSlotCheckpointStore:
    """Torn-write-tolerant checkpoint persistence over two alternating slots.

    A single-slot :class:`CheckpointStore` has a crash window: a power
    failure *during* the superblock write leaves a torn block whose CRC no
    longer validates, losing both the new checkpoint and the one it was
    overwriting.  The classic fix (every journalled file system uses it)
    is two slots written alternately: a save always targets the slot *not*
    holding the newest valid checkpoint, so the previous checkpoint
    survives any torn write untouched.

    Recovery (:meth:`load`) validates both slots and returns the one with
    the most progress -- checkpoints carry monotone ``inserts``/``refreshes``
    counters, so ``(inserts, refreshes)`` orders generations without a
    separate sequence number.  Only when *both* slots are invalid (fresh
    device, or two consecutive torn writes) does it raise
    :class:`CheckpointError`.

    Costs mirror the single-slot store: one random write per save, and up
    to two random reads per load.
    """

    def __init__(
        self,
        device: BlockDevice,
        block_indexes: tuple[int, int] = (0, 1),
        commit_barrier: "GroupCommitBarrier | None" = None,
    ) -> None:
        first, second = block_indexes
        if first < 0 or second < 0:
            raise ValueError("block indexes must be non-negative")
        if first == second:
            raise ValueError("the two slots must be distinct blocks")
        self._device = device
        self._slots = (first, second)
        self._barrier = commit_barrier

    def _peek_slot(self, index: int) -> "MaintenanceCheckpoint | None":
        """Validate one slot without charging I/O (recovery probes charge)."""
        try:
            return MaintenanceCheckpoint.from_bytes(self._device.peek_block(index))
        except CheckpointError:
            return None

    def _newest(self) -> "tuple[int, MaintenanceCheckpoint] | None":
        """(slot block index, checkpoint) of the newest valid slot, if any."""
        best: tuple[int, MaintenanceCheckpoint] | None = None
        for slot in self._slots:
            checkpoint = self._peek_slot(slot)
            if checkpoint is None:
                continue
            if best is None or (checkpoint.inserts, checkpoint.refreshes) > (
                best[1].inserts, best[1].refreshes
            ):
                best = (slot, checkpoint)
        return best

    def save(self, checkpoint: MaintenanceCheckpoint) -> None:
        """Write into the slot NOT holding the newest valid checkpoint.

        One random block write; the surviving slot is never touched, so a
        crash mid-write degrades to "the previous checkpoint", never to
        "no checkpoint".
        """
        newest = self._newest()
        target = (
            self._slots[0]
            if newest is None or newest[0] != self._slots[0]
            else self._slots[1]
        )
        data = checkpoint.to_bytes(self._device.block_size)
        self._device.write_block(target, data, sequential=False)
        if self._barrier is not None:
            self._barrier.commit()
        else:
            flush_barrier(self._device)

    def load(self) -> MaintenanceCheckpoint:
        """Read both slots, return the newest valid checkpoint.

        Charges one random read per probed slot (recovery-path I/O).
        Raises :class:`CheckpointError` when neither slot validates.
        """
        best: tuple[int, MaintenanceCheckpoint] | None = None
        for slot in self._slots:
            data = self._device.read_block(slot, sequential=False)
            try:
                checkpoint = MaintenanceCheckpoint.from_bytes(data)
            except CheckpointError:
                continue
            if best is None or (checkpoint.inserts, checkpoint.refreshes) > (
                best[1].inserts, best[1].refreshes
            ):
                best = (slot, checkpoint)
        if best is None:
            raise CheckpointError(
                "no valid checkpoint in either superblock slot "
                f"{self._slots} (fresh device or both slots torn)"
            )
        return best[1]

    def exists(self) -> bool:
        """True when at least one slot holds a valid checkpoint."""
        return self._newest() is not None
