"""Fixed-size record codecs.

The paper assumes 32-byte elements, 128 to a 4 096-byte block.  The storage
layer moves opaque fixed-size byte strings; codecs translate between domain
values and those byte strings so tests and examples can round-trip real
payloads through the simulated (or real) disk.
"""

from __future__ import annotations

import struct
from typing import Generic, Protocol, TypeVar

__all__ = [
    "RecordCodec",
    "IntRecordCodec",
    "BytesRecordCodec",
    "WeightedRecordCodec",
    "TimestampedRecordCodec",
]

T = TypeVar("T")


class RecordCodec(Protocol[T]):
    """Encodes values of some type into fixed-size byte records."""

    @property
    def record_size(self) -> int:  # pragma: no cover - protocol
        ...

    def encode(self, value: T) -> bytes:  # pragma: no cover - protocol
        ...

    def decode(self, record: bytes) -> T:  # pragma: no cover - protocol
        ...


class IntRecordCodec:
    """Stores a signed 64-bit integer padded to the element size.

    This is the codec the tests and examples use: stream elements and
    dataset keys are integers, padded to the paper's 32-byte element size.
    """

    def __init__(self, record_size: int = 32) -> None:
        if record_size < 8:
            raise ValueError("record_size must hold at least an 8-byte integer")
        self._record_size = record_size
        self._padding = b"\x00" * (record_size - 8)

    @property
    def record_size(self) -> int:
        return self._record_size

    def encode(self, value: int) -> bytes:
        return struct.pack("<q", value) + self._padding

    def decode(self, record: bytes) -> int:
        if len(record) != self._record_size:
            raise ValueError(
                f"record has {len(record)} bytes, expected {self._record_size}"
            )
        return struct.unpack_from("<q", record)[0]


class BytesRecordCodec:
    """Pass-through codec for byte payloads, with zero padding.

    Encoded records embed the payload length so trailing padding is
    stripped exactly on decode.
    """

    def __init__(self, record_size: int = 32) -> None:
        if record_size < 3:
            raise ValueError("record_size must be at least 3 (2-byte length prefix)")
        self._record_size = record_size
        self._max_payload = record_size - 2

    @property
    def record_size(self) -> int:
        return self._record_size

    def encode(self, value: bytes) -> bytes:
        if len(value) > self._max_payload:
            raise ValueError(
                f"payload of {len(value)} bytes exceeds capacity {self._max_payload}"
            )
        return struct.pack("<H", len(value)) + value.ljust(self._max_payload, b"\x00")

    def decode(self, record: bytes) -> bytes:
        if len(record) != self._record_size:
            raise ValueError(
                f"record has {len(record)} bytes, expected {self._record_size}"
            )
        (length,) = struct.unpack_from("<H", record)
        if length > self._max_payload:
            raise ValueError("corrupt record: length prefix exceeds capacity")
        return record[2 : 2 + length]


class WeightedRecordCodec:
    """Stores a weighted-reservoir row: ``(value, key)``.

    The value is a signed 64-bit integer and the key its A-ES exponential
    key, an IEEE-754 double serialised bit-exactly (``<d``) -- checkpoint
    and replica round-trips must reproduce acceptance decisions, so the
    key cannot be truncated or re-derived.
    """

    def __init__(self, record_size: int = 32) -> None:
        if record_size < 16:
            raise ValueError("record_size must hold an 8-byte value + 8-byte key")
        self._record_size = record_size
        self._padding = b"\x00" * (record_size - 16)

    @property
    def record_size(self) -> int:
        return self._record_size

    def encode(self, value: tuple[int, float]) -> bytes:
        return struct.pack("<qd", value[0], value[1]) + self._padding

    def decode(self, record: bytes) -> tuple[int, float]:
        if len(record) != self._record_size:
            raise ValueError(
                f"record has {len(record)} bytes, expected {self._record_size}"
            )
        element, key = struct.unpack_from("<qd", record)
        return (element, key)


class TimestampedRecordCodec:
    """Stores a sliding-window row: ``(value, sequence)``.

    The sequence is the row's arrival index in the stream (a signed
    64-bit integer); the window kind derives both the row's slot and its
    expiry from it, so it is part of the durable record.
    """

    def __init__(self, record_size: int = 32) -> None:
        if record_size < 16:
            raise ValueError("record_size must hold an 8-byte value + 8-byte sequence")
        self._record_size = record_size
        self._padding = b"\x00" * (record_size - 16)

    @property
    def record_size(self) -> int:
        return self._record_size

    def encode(self, value: tuple[int, int]) -> bytes:
        return struct.pack("<qq", value[0], value[1]) + self._padding

    def decode(self, record: bytes) -> tuple[int, int]:
        if len(record) != self._record_size:
            raise ValueError(
                f"record has {len(record)} bytes, expected {self._record_size}"
            )
        element, seq = struct.unpack_from("<qq", record)
        return (element, seq)
