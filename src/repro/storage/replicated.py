"""Replication capture at the block-device layer.

The paper's candidate-log design makes a sample's *entire* durable state
three small on-disk structures: the sample file, the candidate log and
the superblock manifest.  Replicating a sample therefore reduces to
replicating the block mutations those structures perform -- there is no
hidden in-memory state to ship (the contrast with the geometric file's
un-serialisable buffer, Sec. 6.5).

:class:`ReplicatedDevice` decorates any
:class:`~repro.storage.block_device.BlockDevice` and records every
*durable* mutation -- charged writes, uncharged pokes, discards and
truncations -- as a :class:`BlockRecord`, in device order.  The records
accumulate as *pending* until a
:class:`~repro.storage.group_commit.GroupCommitBarrier` seals them into a
commit batch (see :mod:`repro.replication.link`), so the shipped stream
is always a sequence of consistent checkpoint-boundary prefixes.

Layering (enforced by lint rule IO002: raw device methods live only
under ``storage/``): the replication *transport* in
:mod:`repro.replication` never touches devices directly -- it calls
:func:`apply_records`, :func:`device_image` and the digest helpers here.

The crash-ordering contract comes from the decorator stack::

    BufferPool(FaultInjectionDevice(ReplicatedDevice(SimulatedBlockDevice)))

The fault layer sits *outside* the replicated device, so a write killed
by an injected crash is neither applied to the primary nor recorded for
shipping; a torn-write fragment is poked through (and recorded) but the
crash raises before any barrier can seal it, so it never ships.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from repro.storage.block_device import BlockDevice
from repro.storage.cost_model import CostModel

__all__ = [
    "BlockRecord",
    "ReplicatedDevice",
    "apply_records",
    "apply_to_image",
    "base_device",
    "canonical_image",
    "clone_image",
    "device_image",
    "image_digest",
    "replicated_in",
]

#: Mutation kinds a :class:`BlockRecord` can carry.
_OPS = ("write", "poke", "discard", "discard_from")


@dataclass(frozen=True)
class BlockRecord:
    """One durable block mutation, as shipped over the replication stream.

    ``op`` is ``"write"`` (charged), ``"poke"`` (uncharged bookkeeping),
    ``"discard"`` or ``"discard_from"`` (logical truncation; ``data`` is
    empty).  ``sequential`` preserves the primary's access classification
    so the replica can mirror the charge if it wants to.
    """

    op: str
    index: int
    data: bytes = b""
    sequential: bool = True

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown record op {self.op!r}")
        if self.index < 0:
            raise ValueError("block index must be non-negative")

    @property
    def payload_bytes(self) -> int:
        """Bytes this record contributes to the shipped stream."""
        return len(self.data)


class ReplicatedDevice:
    """Block-device decorator that records every durable mutation.

    Reads pass straight through; mutations are applied to the inner
    device *and* appended to the pending record list, which the group
    commit barrier drains at each seal.  The decorator itself never
    charges extra I/O, so a replicated primary's
    :class:`~repro.storage.cost_model.AccessStats` are bit-identical to
    an unreplicated run.
    """

    def __init__(self, inner: BlockDevice, name: str = "") -> None:
        self._inner = inner
        self._name = name or getattr(inner, "name", "") or "replicated"
        self._pending: list[BlockRecord] = []
        #: lifetime count of recorded mutations (pending + sealed)
        self.records_captured = 0

    @property
    def block_size(self) -> int:
        return self._inner.block_size

    @property
    def cost_model(self) -> CostModel:
        return self._inner.cost_model

    @property
    def inner(self) -> BlockDevice:
        return self._inner

    @property
    def name(self) -> str:
        return self._name

    @property
    def pending_records(self) -> int:
        """Mutations captured since the last seal (primary-RAM state)."""
        return len(self._pending)

    def drain_pending(self) -> list[BlockRecord]:
        """Hand the pending records to a sealing commit batch and reset."""
        records = self._pending
        self._pending = []
        return records

    def _record(self, record: BlockRecord) -> None:
        self._pending.append(record)
        self.records_captured += 1

    # -- the BlockDevice protocol --------------------------------------------

    def read_block(self, index: int, sequential: bool) -> bytes:
        return self._inner.read_block(index, sequential)

    def write_block(self, index: int, data: bytes, sequential: bool) -> None:
        self._inner.write_block(index, data, sequential)
        self._record(BlockRecord("write", index, bytes(data), sequential))

    def peek_block(self, index: int) -> bytes:
        return self._inner.peek_block(index)

    def poke_block(self, index: int, data: bytes) -> None:
        self._inner.poke_block(index, data)
        self._record(BlockRecord("poke", index, bytes(data)))

    def discard(self, index: int) -> None:
        self._inner.discard(index)
        self._record(BlockRecord("discard", index))

    def discard_from(self, first_index: int) -> None:
        self._inner.discard_from(first_index)
        self._record(BlockRecord("discard_from", first_index))

    def __repr__(self) -> str:
        return (
            f"ReplicatedDevice({self._name!r} pending={len(self._pending)} "
            f"captured={self.records_captured})"
        )


# -- applying a shipped stream ------------------------------------------------


def apply_records(device: BlockDevice, records: list[BlockRecord]) -> int:
    """Replay shipped records onto a replica device, in stream order.

    Every ``write`` is charged on the *replica's* cost model with the
    primary's sequential/random classification (the replica does real
    I/O; it just does it asynchronously).  ``poke`` mutations were free
    on the primary and stay free here.  Returns the payload bytes
    applied.
    """
    applied = 0
    for record in records:
        if record.op == "write":
            device.write_block(record.index, record.data, record.sequential)
        elif record.op == "poke":
            device.poke_block(record.index, record.data)
        elif record.op == "discard":
            device.discard(record.index)
        else:  # discard_from
            device.discard_from(record.index)
        applied += record.payload_bytes
    return applied


def apply_to_image(image: dict[int, bytes], records: list[BlockRecord]) -> None:
    """Replay records onto a plain block->bytes image (no device, no I/O).

    This is the primary-side *shadow*: the replication link keeps one per
    device, updated at every seal, so each commit boundary's digest is
    computed from the primary's own write stream before anything ships.
    """
    for record in records:
        if record.op in ("write", "poke"):
            image[record.index] = record.data
        elif record.op == "discard":
            image.pop(record.index, None)
        else:  # discard_from
            for block in [b for b in image if b >= record.index]:
                del image[block]


# -- canonical device images and digests --------------------------------------


def base_device(device: BlockDevice) -> BlockDevice:
    """Unwrap decorators (pool, fault, replication) down to the base device."""
    while True:
        inner = getattr(device, "inner", None)
        if inner is None:
            return device
        device = inner


def replicated_in(device: BlockDevice) -> "ReplicatedDevice | None":
    """The :class:`ReplicatedDevice` inside a decorator stack, if any."""
    current: BlockDevice | None = device
    while current is not None:
        if isinstance(current, ReplicatedDevice):
            return current
        current = getattr(current, "inner", None)
    return None


def device_image(device: BlockDevice) -> dict[int, bytes]:
    """Snapshot the *durable* blocks of a device stack (base device only).

    Anything a buffer pool still holds dirty is RAM, not durable state,
    and is deliberately excluded -- this is what a crash leaves behind.
    """
    base = base_device(device)
    snapshot = getattr(base, "snapshot_blocks", None)
    if snapshot is None:
        raise TypeError(
            f"device {base!r} cannot be imaged (no snapshot_blocks support)"
        )
    return snapshot()


def clone_image(device: BlockDevice, image: dict[int, bytes]) -> None:
    """Load a block image onto a fresh device without charging I/O.

    Recovery-workflow helper: the rebuilt catalog's devices start as
    byte-copies of the replica, then everything above charges normally.
    """
    for index in sorted(image):
        device.poke_block(index, image[index])


def canonical_image(images: dict[str, dict[int, bytes]]) -> bytes:
    """Serialise a multi-device image deterministically (for cmp/digest).

    Format per device, names sorted lexicographically::

        name_len(u32) name block_count(u32) { index(u64) data_len(u32) data }*

    Blocks are sorted by index and devices holding *no* blocks are
    skipped -- a never-written device is indistinguishable from an absent
    one, so two sites that attached devices at different moments still
    serialise identical durable state to identical bytes.  That property
    is what the DR drill's ``cmp`` check and the commit-batch digests
    rest on.
    """
    out = bytearray()
    for name in sorted(images):
        blocks = images[name]
        if not blocks:
            continue
        encoded = name.encode("utf-8")
        out += struct.pack("<I", len(encoded)) + encoded
        out += struct.pack("<I", len(blocks))
        for index in sorted(blocks):
            data = blocks[index]
            out += struct.pack("<QI", index, len(data)) + data
    return bytes(out)


def image_digest(images: dict[str, dict[int, bytes]]) -> str:
    """SHA-256 over the canonical serialisation of a multi-device image."""
    return hashlib.sha256(canonical_image(images)).hexdigest()
