"""Block-aligned on-disk structures: the sample file and the log file.

These two files are the only disk-resident structures in the paper's
setting: a :class:`SampleFile` holds the ``M`` sample elements, a
:class:`LogFile` accumulates logged insertions between refreshes.  Both
pack fixed-size elements into blocks (128 per 4 096-byte block with the
paper's 32-byte elements) and charge block-level I/O through the device.

Charging rules (matching Sec. 6.1 of the paper):

* appends charge one **sequential write** per filled block; the first block
  written after the log is truncated/reused charges a **random write**
  instead -- the "one random I/O ... to move from the current position to
  the beginning of the log file" of Sec. 6.2;
* scans charge one **sequential read** per block;
* indexed forward reads (refresh algorithms touching only the blocks that
  contain final candidates) charge one sequential read per *distinct*
  block;
* random element writes (immediate refresh, naive candidate refresh)
  charge one **random write** per access, coalescing consecutive accesses
  to the same block (the single-block file-system cache the paper grants);
* the paper charges writes without a preceding block read ("due to
  asynchronous writes" its random-write time is below its random-read
  time), so neither do we -- block contents are fetched without charge to
  keep the data itself correct.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, TypeVar

from repro.storage.block_device import BlockDevice
from repro.storage.bufferpool import declare_scan
from repro.storage.records import RecordCodec

__all__ = ["SampleFile", "LogFile"]

T = TypeVar("T")


class _BlockStore:
    """Shared element-in-block packing over a block device."""

    def __init__(self, device: BlockDevice, codec: RecordCodec) -> None:
        if device.block_size % codec.record_size != 0:
            raise ValueError(
                f"record size {codec.record_size} must divide block size "
                f"{device.block_size}"
            )
        self._device = device
        self._codec = codec
        self._per_block = device.block_size // codec.record_size

    @property
    def device(self) -> BlockDevice:
        return self._device

    @property
    def elements_per_block(self) -> int:
        return self._per_block

    def _locate(self, index: int) -> tuple[int, int]:
        """Map an element index to (block index, byte offset)."""
        block, slot = divmod(index, self._per_block)
        return block, slot * self._codec.record_size

    def _decode_at(self, block_data: bytes, offset: int) -> T:
        return self._codec.decode(block_data[offset : offset + self._codec.record_size])

    def _patch(self, block_data: bytes, offset: int, value: T) -> bytes:
        record = self._codec.encode(value)
        return block_data[:offset] + record + block_data[offset + len(record) :]


class SampleFile(_BlockStore):
    """The disk-resident sample: ``M`` elements at fixed positions.

    ``cached_blocks`` models the Fig. 14 experiment where the non-GF
    algorithms are granted the same amount of main memory as the geometric
    file's buffer and use it to pin a prefix of the sample: accesses to
    pinned blocks are free.
    """

    def __init__(
        self,
        device: BlockDevice,
        codec: RecordCodec,
        size: int,
        cached_blocks: int = 0,
    ) -> None:
        super().__init__(device, codec)
        if size <= 0:
            raise ValueError("sample size must be positive")
        if cached_blocks < 0:
            raise ValueError("cached_blocks must be non-negative")
        self._size = size
        self._cached_blocks = cached_blocks
        self._last_random_write_block: int | None = None
        self._last_random_read_block: int | None = None

    @property
    def size(self) -> int:
        """Number of sample elements (``M`` in the paper)."""
        return self._size

    @property
    def block_count(self) -> int:
        return -(-self._size // self.elements_per_block)

    @property
    def cached_blocks(self) -> int:
        return self._cached_blocks

    def initialize(self, values: Sequence[T]) -> None:
        """Bulk-load the initial sample with one sequential pass."""
        if len(values) != self._size:
            raise ValueError(
                f"initialize() needs exactly {self._size} values, got {len(values)}"
            )
        for block_index in range(self.block_count):
            start = block_index * self.elements_per_block
            chunk = values[start : start + self.elements_per_block]
            data = b"".join(self._codec.encode(v) for v in chunk)
            data = data.ljust(self._device.block_size, b"\x00")
            self._charge_write(block_index, data, sequential=True)
        self._last_random_write_block = None

    # -- random access (immediate refresh, naive candidate refresh) -------

    def write_random(self, index: int, value: T) -> None:
        """Overwrite one element at a random position: one random write.

        Consecutive writes landing in the same block coalesce into a single
        charged access (single-block write cache).
        """
        self._check_index(index)
        block, offset = self._locate(index)
        data = self._patch(self._device.peek_block(block), offset, value)
        if block == self._last_random_write_block:
            self._store_free(block, data)
        else:
            self._charge_write(block, data, sequential=False)
            self._last_random_write_block = block

    def read_random(self, index: int) -> T:
        """Read one element at a random position: one random read."""
        self._check_index(index)
        block, offset = self._locate(index)
        if block == self._last_random_read_block:
            data = self._device.peek_block(block)
        else:
            data = self._device.read_block(block, sequential=False)
            self._last_random_read_block = block
        return self._decode_at(data, offset)

    # -- sequential access (deferred refresh write phase, scans) ----------

    def write_sequential(self, items: Iterable[tuple[int, T]]) -> int:
        """Write ``(index, value)`` pairs with strictly increasing indexes.

        Charges one sequential write per distinct touched block; returns the
        number of blocks written.  This is the refresh write phase: stable
        elements are never read, blocks without displaced elements are
        skipped entirely.
        """
        blocks_written = 0
        current_block = -1
        current_data: bytes | None = None
        previous_index = -1
        for index, value in items:
            self._check_index(index)
            if index <= previous_index:
                raise ValueError(
                    f"write_sequential() indexes must be strictly increasing "
                    f"({index} after {previous_index})"
                )
            previous_index = index
            block, offset = self._locate(index)
            if block != current_block:
                if current_data is not None:
                    self._charge_write(current_block, current_data, sequential=True)
                    blocks_written += 1
                current_block = block
                current_data = self._device.peek_block(block)
            current_data = self._patch(current_data, offset, value)
        if current_data is not None:
            self._charge_write(current_block, current_data, sequential=True)
            blocks_written += 1
        return blocks_written

    def scan(self) -> Iterator[T]:
        """Yield every element front to back: one sequential read per block."""
        declare_scan(self._device, 0, self.block_count)
        emitted = 0
        for block_index in range(self.block_count):
            data = self._charge_read(block_index, sequential=True)
            for slot in range(self.elements_per_block):
                if emitted >= self._size:
                    return
                yield self._decode_at(data, slot * self._codec.record_size)
                emitted += 1

    def resize(self, new_size: int) -> None:
        """Shrink the logical sample size (Sec. 5 deletion handling).

        Deletions remove sample members; the refresh then runs "using a
        potentially smaller sample size".  Only shrinking is allowed -- a
        sample cannot be grown without access to the base data, which the
        paper's setting forbids.
        """
        if not 0 < new_size <= self._size:
            raise ValueError(
                f"resize target must be in (0, {self._size}], got {new_size}"
            )
        self._size = new_size

    def peek(self, index: int) -> T:
        """Read an element without charging I/O (test/verification aid)."""
        self._check_index(index)
        block, offset = self._locate(index)
        return self._decode_at(self._device.peek_block(block), offset)

    def peek_all(self) -> list[T]:
        """Return all elements without charging I/O (test/verification aid)."""
        return [self.peek(i) for i in range(self._size)]

    # -- internals ---------------------------------------------------------

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise IndexError(f"sample index {index} out of range [0, {self._size})")

    def _charge_write(self, block: int, data: bytes, sequential: bool) -> None:
        if block < self._cached_blocks:
            self._store_free(block, data)
        else:
            self._device.write_block(block, data, sequential)

    def _charge_read(self, block: int, sequential: bool) -> bytes:
        if block < self._cached_blocks:
            return self._device.peek_block(block)
        return self._device.read_block(block, sequential)

    def _store_free(self, block: int, data: bytes) -> None:
        """Update block contents without an I/O charge (cache hit)."""
        self._device.poke_block(block, data)


class LogFile(_BlockStore):
    """Append-only log file, reused (rewound) after every refresh.

    Used for the full log, the candidate log and the update log alike --
    what differs is only *which* elements the maintenance strategy appends.
    """

    def __init__(self, device: BlockDevice, codec: RecordCodec) -> None:
        super().__init__(device, codec)
        self._count = 0
        self._buffer: list[T] = []
        self._next_block = 0
        self._repositioned = True  # first write ever needs a seek
        self._flushed_partial = False

    def __len__(self) -> int:
        """Number of elements appended since the last truncation."""
        return self._count

    @property
    def block_count(self) -> int:
        """Blocks the current log occupies, counting the partial tail."""
        return self._next_block + (1 if self._buffer else 0)

    def append(self, value: T) -> None:
        """Append one element; charges a write whenever a block fills."""
        self._buffer.append(value)
        self._count += 1
        # The tail block's on-disk image (if any) is stale again.
        self._flushed_partial = False
        if len(self._buffer) == self.elements_per_block:
            self._write_tail_block(self._buffer)
            self._buffer = []
            self._next_block += 1

    def extend(self, values: Iterable[T]) -> None:
        self.append_many(values)

    def append_many(self, values: "Iterable[T] | Sequence[T]") -> None:
        """Append a batch with one Python-level pass per *block*.

        Charges exactly the block writes that element-wise :meth:`append`
        calls would charge, in the same order (full blocks flush as they
        fill; the partial tail stays buffered), so :class:`AccessStats`
        and on-device bytes are bit-identical to the scalar path.
        """
        if not isinstance(values, (list, tuple)):
            values = list(values)
        n = len(values)
        if n == 0:
            return
        per_block = self.elements_per_block
        buffer = self._buffer
        self._count += n
        self._flushed_partial = False
        taken = 0
        while taken < n:
            take = min(per_block - len(buffer), n - taken)
            if take == per_block and not buffer:
                buffer = list(values[taken : taken + per_block])
            else:
                buffer.extend(values[taken : taken + take])
            taken += take
            if len(buffer) == per_block:
                self._write_tail_block(buffer)
                buffer = []
                self._next_block += 1
        self._buffer = buffer

    def flush(self) -> None:
        """Force the partial tail block to disk (at most one block write).

        Flushing an unchanged tail twice charges once: the paper notes the
        candidate log "often consists of only a single block, which is the
        minimum" for short refresh periods.
        """
        if self._buffer and not self._flushed_partial:
            self._write_tail_block(list(self._buffer), partial=True)
            self._flushed_partial = True

    def reopen(self, element_count: int) -> None:
        """Re-attach to a log whose blocks already exist on the device.

        Recovery path (see :mod:`repro.storage.superblock`): the checkpoint
        records how many elements the on-disk log held; reopening reloads
        the partial tail block into the append buffer (one random read --
        the recovery seek) so appends continue exactly where they stopped.
        Only valid on a freshly constructed, empty ``LogFile`` over the
        original device.
        """
        if self._count or self._buffer:
            raise RuntimeError("reopen() requires a fresh, empty LogFile")
        if element_count < 0:
            raise ValueError("element_count must be non-negative")
        self._count = element_count
        self._next_block, tail = divmod(element_count, self.elements_per_block)
        if tail:
            data = self._device.read_block(self._next_block, sequential=False)
            self._buffer = [
                self._decode_at(data, slot * self._codec.record_size)
                for slot in range(tail)
            ]
            self._flushed_partial = True
        # Continuing the same generation: no rewind seek on the next write
        # (an empty generation still owes its initial seek).
        self._repositioned = element_count == 0

    def truncate(self) -> None:
        """Reset the log for reuse; the next write will pay a seek."""
        self._device.discard_from(0)
        self._count = 0
        self._buffer = []
        self._next_block = 0
        self._repositioned = True
        self._flushed_partial = False

    def scan_all(self) -> list[T]:
        """Read the whole log: one sequential read per block."""
        self.flush()
        declare_scan(self._device, 0, self.block_count)
        values: list[T] = []
        for block_index in range(self.block_count):
            data = self._device.read_block(block_index, sequential=True)
            remaining = self._count - len(values)
            for slot in range(min(self.elements_per_block, remaining)):
                values.append(self._decode_at(data, slot * self._codec.record_size))
        return values

    def read_indexed_sorted(self, indices: Sequence[int]) -> list[T]:
        """Read elements at ascending positions; one seq read per distinct block.

        This is how the refresh algorithms touch the log: forward-only, and
        only the blocks that contain final candidates.
        """
        self.flush()
        declare_scan(self._device, 0, self.block_count)
        values: list[T] = []
        current_block = -1
        data = b""
        previous = -1
        for index in indices:
            if not 0 <= index < self._count:
                raise IndexError(f"log index {index} out of range [0, {self._count})")
            if index <= previous:
                raise ValueError(
                    f"read_indexed_sorted() indexes must be strictly increasing "
                    f"({index} after {previous})"
                )
            previous = index
            block, offset = self._locate(index)
            if block != current_block:
                data = self._device.read_block(block, sequential=True)
                current_block = block
            values.append(self._decode_at(data, offset))
        return values

    def open_sequential_reader(self) -> "SequentialLogReader":
        """Return a forward-only reader charging one seq read per new block.

        Stack and Nomem Refresh interleave log reads with sample writes;
        this reader lets them do that one candidate at a time while keeping
        the block-level accounting identical to a batched
        :meth:`read_indexed_sorted`.
        """
        self.flush()
        declare_scan(self._device, 0, self.block_count)
        return SequentialLogReader(self)

    def read_one_random(self, index: int) -> T:
        """Read one element by random access: one random read.

        Only the *unsorted* Array Refresh variant (the ablation of the
        optional sort in Sec. 4.1) uses this path.
        """
        self.flush()
        if not 0 <= index < self._count:
            raise IndexError(f"log index {index} out of range [0, {self._count})")
        block, offset = self._locate(index)
        data = self._device.read_block(block, sequential=False)
        return self._decode_at(data, offset)

    def peek(self, index: int) -> T:
        """Read one element without charging I/O (test/verification aid)."""
        if not 0 <= index < self._count:
            raise IndexError(f"log index {index} out of range [0, {self._count})")
        block, offset = self._locate(index)
        in_buffer_from = self._next_block * self.elements_per_block
        if index >= in_buffer_from:
            return self._buffer[index - in_buffer_from]
        return self._decode_at(self._device.peek_block(block), offset)

    def peek_all(self) -> list[T]:
        return [self.peek(i) for i in range(self._count)]

    # -- internals ---------------------------------------------------------

    def _read_block_charged(self, block: int) -> bytes:
        return self._device.read_block(block, sequential=True)

    def _write_tail_block(self, values: Sequence[T], partial: bool = False) -> None:
        data = b"".join(self._codec.encode(v) for v in values)
        data = data.ljust(self._device.block_size, b"\x00")
        sequential = not self._repositioned
        self._device.write_block(self._next_block, data, sequential)
        self._repositioned = False
        if partial:
            # Tail stays addressable at the same block; later fills rewrite it.
            return


class SequentialLogReader:
    """Forward-only element reader over a :class:`LogFile`.

    Indexes must be strictly increasing across calls; each *new* block
    touched charges one sequential read.
    """

    __slots__ = ("_log", "_current_block", "_data", "_previous")

    def __init__(self, log: LogFile) -> None:
        self._log = log
        self._current_block = -1
        self._data = b""
        self._previous = -1

    def read(self, index: int) -> T:
        if not 0 <= index < len(self._log):
            raise IndexError(f"log index {index} out of range [0, {len(self._log)})")
        if index <= self._previous:
            raise ValueError(
                f"sequential reader requires strictly increasing indexes "
                f"({index} after {self._previous})"
            )
        self._previous = index
        block, offset = self._log._locate(index)
        if block != self._current_block:
            self._data = self._log._read_block_charged(block)
            self._current_block = block
        return self._log._decode_at(self._data, offset)
