"""Real-file block backend and access-time calibration.

Two jobs:

* :class:`RealBlockDevice` implements the same interface as
  :class:`~repro.storage.block_device.SimulatedBlockDevice` on top of an
  actual file, so the reference algorithms can be run against a real file
  system (integration tests do this at small scale);
* :func:`calibrate_disk` re-measures the Sec. 6.1 access-time table
  (sequential read/write, random read, random write per block) on the
  machine at hand and returns a
  :class:`~repro.storage.cost_model.DiskParameters` to weight counts with.
  The paper measured 0.094 ms sequential, 8.45 ms random read, 5.50 ms
  random write on a 7 200 RPM IDE disk; modern SSDs compress the gap but
  keep the ordering.
"""

from __future__ import annotations

# This module's whole job is to time real hardware and feed the measured
# access times INTO the cost model; wall-clock reads here are calibration,
# not accounting.
# repro-lint: disable-file=TIME001

import os
import time
from dataclasses import dataclass

from repro.storage.cost_model import CostModel, DiskParameters

__all__ = ["RealBlockDevice", "CalibrationResult", "calibrate_disk", "WallClock"]


class WallClock:
    """The sanctioned wall clock for span timing on the real-disk path.

    Implements the :class:`repro.obs.trace.Clock` protocol.  Simulated
    runs price spans with the cost model (:class:`repro.obs.trace.CostClock`);
    when the reference algorithms run against a :class:`RealBlockDevice`,
    elapsed time *is* the measurement, so this clock -- living in the one
    module exempt from TIME001 -- may be injected into a
    :class:`repro.obs.Tracer` instead.
    """

    def now(self) -> float:
        return time.perf_counter()


class RealBlockDevice:
    """Block device over a real file.

    Access statistics are still charged through the cost model (with the
    caller-declared sequential/random classification), so reference runs on
    real files produce the same counters as simulated runs -- plus the
    bytes actually hit the file system.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        cost_model: CostModel,
        instrumentation=None,
    ) -> None:
        self._path = os.fspath(path)
        self._cost_model = cost_model
        self._instr = instrumentation
        flags = os.O_RDWR | os.O_CREAT
        self._fd = os.open(self._path, flags, 0o644)

    @property
    def block_size(self) -> int:
        return self._cost_model.disk.block_size

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    @property
    def path(self) -> str:
        return self._path

    def read_block(self, index: int, sequential: bool) -> bytes:
        self._check_index(index)
        self._cost_model.charge("read", sequential)
        if self._instr is not None:
            self._instr.record_device_access(self._path, "read", sequential)
        data = os.pread(self._fd, self.block_size, index * self.block_size)
        return data.ljust(self.block_size, b"\x00")

    def write_block(self, index: int, data: bytes, sequential: bool) -> None:
        self._check_index(index)
        if len(data) != self.block_size:
            raise ValueError(
                f"block write must be exactly {self.block_size} bytes, got {len(data)}"
            )
        self._cost_model.charge("write", sequential)
        if self._instr is not None:
            self._instr.record_device_access(self._path, "write", sequential)
        os.pwrite(self._fd, data, index * self.block_size)

    def peek_block(self, index: int) -> bytes:
        self._check_index(index)
        data = os.pread(self._fd, self.block_size, index * self.block_size)
        return data.ljust(self.block_size, b"\x00")

    def poke_block(self, index: int, data: bytes) -> None:
        self._check_index(index)
        if len(data) != self.block_size:
            raise ValueError(
                f"block write must be exactly {self.block_size} bytes, got {len(data)}"
            )
        os.pwrite(self._fd, data, index * self.block_size)

    def discard(self, index: int) -> None:
        self._check_index(index)
        os.pwrite(self._fd, b"\x00" * self.block_size, index * self.block_size)

    def discard_from(self, first_index: int) -> None:
        self._check_index(first_index)
        os.ftruncate(self._fd, first_index * self.block_size)

    def sync(self) -> None:
        os.fsync(self._fd)

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __enter__(self) -> "RealBlockDevice":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def _check_index(index: int) -> None:
        if index < 0:
            raise ValueError(f"block index must be non-negative, got {index}")


@dataclass(frozen=True)
class CalibrationResult:
    """Measured per-block access times, in milliseconds (the Sec. 6.1 table)."""

    seq_read_ms: float
    seq_write_ms: float
    random_read_ms: float
    random_write_ms: float
    blocks_measured: int
    block_size: int

    def as_disk_parameters(self, element_size: int = 32) -> DiskParameters:
        return DiskParameters(
            block_size=self.block_size,
            element_size=element_size,
            seq_read_ms=self.seq_read_ms,
            seq_write_ms=self.seq_write_ms,
            random_read_ms=self.random_read_ms,
            random_write_ms=self.random_write_ms,
        )


def calibrate_disk(
    path: str | os.PathLike,
    file_blocks: int = 4096,
    probes: int = 512,
    block_size: int = 4096,
    seed: int = 0x5EED,
) -> CalibrationResult:
    """Measure per-block access times on a scratch file.

    The paper measured a 1.6 GB sample file; callers choose ``file_blocks``
    to fit their patience.  Buffered I/O means page-cache effects make these
    numbers optimistic relative to the paper's cold-cache disk; the paper's
    own constants remain the defaults for all figures
    (:data:`repro.storage.cost_model.PAPER_DISK`).
    """
    if file_blocks < 2 or probes < 1:
        raise ValueError("need at least 2 blocks and 1 probe")
    probes = min(probes, file_blocks)
    payload = os.urandom(block_size)
    fd = os.open(os.fspath(path), os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        # Sequential write pass (also allocates the file).
        start = time.perf_counter()
        for block in range(file_blocks):
            os.pwrite(fd, payload, block * block_size)
        os.fsync(fd)
        seq_write_ms = (time.perf_counter() - start) * 1000.0 / file_blocks

        # Sequential read pass.
        start = time.perf_counter()
        for block in range(file_blocks):
            os.pread(fd, block_size, block * block_size)
        seq_read_ms = (time.perf_counter() - start) * 1000.0 / file_blocks

        # Deterministic pseudo-random probe positions (LCG; no numpy needed).
        positions = []
        state = seed & 0x7FFFFFFF
        for _ in range(probes):
            state = (1103515245 * state + 12345) & 0x7FFFFFFF
            positions.append(state % file_blocks)

        start = time.perf_counter()
        for block in positions:
            os.pread(fd, block_size, block * block_size)
        random_read_ms = (time.perf_counter() - start) * 1000.0 / probes

        start = time.perf_counter()
        for block in positions:
            os.pwrite(fd, payload, block * block_size)
        os.fsync(fd)
        random_write_ms = (time.perf_counter() - start) * 1000.0 / probes
    finally:
        os.close(fd)

    return CalibrationResult(
        seq_read_ms=seq_read_ms,
        seq_write_ms=seq_write_ms,
        random_read_ms=random_read_ms,
        random_write_ms=random_write_ms,
        blocks_measured=file_blocks,
        block_size=block_size,
    )
