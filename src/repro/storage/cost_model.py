"""Disk parameters, access statistics and the count-to-seconds cost model.

This module encodes the paper's Sec. 6.1 methodology verbatim: algorithms
are charged per *block-level* access, classified as sequential or random,
and the four counters are weighted with per-access times calibrated on real
hardware.  :data:`PAPER_DISK` carries the paper's published measurements
(7 200 RPM IDE disk, ext3, 4 096-byte blocks, 32-byte elements), so cost
figures come out in the same units -- seconds -- as the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DiskParameters", "AccessStats", "CostModel", "PAPER_DISK"]


@dataclass(frozen=True)
class DiskParameters:
    """Physical characteristics and per-access times of a disk.

    Times are in milliseconds per block access, as in the paper.
    """

    block_size: int = 4096
    element_size: int = 32
    seq_read_ms: float = 0.094
    seq_write_ms: float = 0.094
    random_read_ms: float = 8.45
    random_write_ms: float = 5.50

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.element_size <= 0:
            raise ValueError("element_size must be positive")
        if self.element_size > self.block_size:
            raise ValueError(
                f"element ({self.element_size} B) does not fit in a block "
                f"({self.block_size} B)"
            )
        for name in ("seq_read_ms", "seq_write_ms", "random_read_ms", "random_write_ms"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def elements_per_block(self) -> int:
        """How many fixed-size elements one block holds (128 in the paper)."""
        return self.block_size // self.element_size

    def blocks_for_elements(self, n_elements: int) -> int:
        """Blocks needed to store ``n_elements``, rounding up."""
        if n_elements < 0:
            raise ValueError("n_elements must be non-negative")
        per_block = self.elements_per_block
        return -(-n_elements // per_block)


#: The disk the paper measured (Sec. 6.1): Athlon XP 3000+ system, IDE disk
#: at 7 200 RPM, ext3 with 4 096-byte blocks, 32-byte elements.
PAPER_DISK = DiskParameters()


@dataclass
class AccessStats:
    """Categorised block-access counters.

    These four counters are the entire experimental currency of the paper:
    every figure is a weighting of them.
    """

    seq_reads: int = 0
    seq_writes: int = 0
    random_reads: int = 0
    random_writes: int = 0

    def record(self, kind: str, sequential: bool, count: int = 1) -> None:
        """Add ``count`` block accesses of the given kind.

        ``kind`` is ``"read"`` or ``"write"``.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if kind == "read":
            if sequential:
                self.seq_reads += count
            else:
                self.random_reads += count
        elif kind == "write":
            if sequential:
                self.seq_writes += count
            else:
                self.random_writes += count
        else:
            raise ValueError(f"unknown access kind: {kind!r}")

    @property
    def total_accesses(self) -> int:
        return self.seq_reads + self.seq_writes + self.random_reads + self.random_writes

    def add(self, other: "AccessStats") -> None:
        """Accumulate another stats object into this one."""
        self.seq_reads += other.seq_reads
        self.seq_writes += other.seq_writes
        self.random_reads += other.random_reads
        self.random_writes += other.random_writes

    def __add__(self, other: "AccessStats") -> "AccessStats":
        result = AccessStats()
        result.add(self)
        result.add(other)
        return result

    def difference(self, other: "AccessStats", clamp: bool = False) -> "AccessStats":
        """Difference, e.g. ``after - before`` around one operation.

        Access counters are monotone, so a negative component means the
        operands were swapped or the checkpoint belongs to a different
        (e.g. reset) stats object -- silent negative counts once masked
        exactly that bug.  By default such a difference raises; pass
        ``clamp=True`` to explicitly floor each component at zero instead
        (for consumers comparing unrelated runs).
        """
        result = AccessStats(
            seq_reads=self.seq_reads - other.seq_reads,
            seq_writes=self.seq_writes - other.seq_writes,
            random_reads=self.random_reads - other.random_reads,
            random_writes=self.random_writes - other.random_writes,
        )
        negative = [
            name
            for name in ("seq_reads", "seq_writes", "random_reads", "random_writes")
            if getattr(result, name) < 0
        ]
        if not negative:
            return result
        if clamp:
            for name in negative:
                setattr(result, name, 0)
            return result
        raise ValueError(
            "AccessStats difference went negative in "
            f"{', '.join(negative)} ({self!r} - {other!r}); counters are "
            "monotone -- operands are swapped or from different stats "
            "objects (pass clamp=True to floor at zero)"
        )

    def __sub__(self, other: "AccessStats") -> "AccessStats":
        """Strict difference: raises if any component would go negative."""
        return self.difference(other)

    def copy(self) -> "AccessStats":
        return AccessStats(
            seq_reads=self.seq_reads,
            seq_writes=self.seq_writes,
            random_reads=self.random_reads,
            random_writes=self.random_writes,
        )

    def reset(self) -> None:
        self.seq_reads = 0
        self.seq_writes = 0
        self.random_reads = 0
        self.random_writes = 0

    def cost_seconds(self, disk: DiskParameters = PAPER_DISK) -> float:
        """Weight the counters with per-access times; result in seconds."""
        ms = (
            self.seq_reads * disk.seq_read_ms
            + self.seq_writes * disk.seq_write_ms
            + self.random_reads * disk.random_read_ms
            + self.random_writes * disk.random_write_ms
        )
        return ms / 1000.0

    def __repr__(self) -> str:
        return (
            f"AccessStats(seq_reads={self.seq_reads}, seq_writes={self.seq_writes}, "
            f"random_reads={self.random_reads}, random_writes={self.random_writes})"
        )


@dataclass
class CostModel:
    """Binds a disk's parameters to a running total of access statistics.

    One :class:`CostModel` typically spans a whole experiment; each on-disk
    structure (sample file, log file, geometric file) registers its
    accesses here so online, offline and total cost can be split out the
    way the paper's figures do.
    """

    disk: DiskParameters = PAPER_DISK
    stats: AccessStats = field(default_factory=AccessStats)

    def charge(self, kind: str, sequential: bool, count: int = 1) -> None:
        self.stats.record(kind, sequential, count)

    def cost_seconds(self) -> float:
        return self.stats.cost_seconds(self.disk)

    def checkpoint(self) -> AccessStats:
        """Snapshot the counters; subtract later to isolate one phase."""
        return self.stats.copy()

    def since(self, checkpoint: AccessStats) -> AccessStats:
        return self.stats - checkpoint
