"""Crash-injection block device for failure testing.

Wraps any block device and kills the "process" -- by raising
:class:`InjectedCrash` -- after a configured number of block writes.
Everything written before the crash stays on the underlying device, and
nothing after it happens, which is exactly the torn state a power failure
leaves behind.

Used by the recovery tests to demonstrate the refresh algorithms'
*idempotence*: a deferred refresh reads only the log, never the sample
(stable elements are skipped unread; displaced ones are overwritten), so
re-running the same refresh from the same PRNG state writes the same
values to the same places.  A crash mid-refresh therefore needs no undo:
recover the pre-refresh checkpoint and simply run the refresh again.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.storage.block_device import BlockDevice
from repro.storage.cost_model import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs uses storage)
    from repro.obs.api import Instrumentation

__all__ = ["InjectedCrash", "CrashBudget", "FaultInjectionDevice"]


class InjectedCrash(RuntimeError):
    """The simulated process died mid-operation."""


class CrashBudget:
    """A write budget shared by every device of one simulated process.

    A per-device ``writes_until_crash`` can only land a crash at a chosen
    point in *that device's* write sequence.  Disaster-recovery drills
    need the opposite: one global, seeded crash point in the process's
    interleaved write stream across sample + log + manifest devices --
    including points *inside* a multi-device group commit.  Every
    :class:`FaultInjectionDevice` of the process shares one budget; the
    Nth durable write overall raises, whichever device it lands on.

    The budget also records **commit windows**: a
    :class:`~repro.storage.group_commit.GroupCommitBarrier` brackets its
    flush phase with :meth:`begin_commit`/:meth:`end_commit`, and every
    window in which at least one write happened is kept as a
    ``(first_write_index, last_write_index)`` pair (1-based, inclusive).
    A probe run collects the windows; the drill then arms a crash point
    chosen *inside* one to exercise the mid-barrier case.
    """

    def __init__(self, writes_until_crash: int | None = None) -> None:
        if writes_until_crash is not None and writes_until_crash < 0:
            raise ValueError("writes_until_crash must be non-negative")
        self._remaining = writes_until_crash
        self.writes_seen = 0
        self.crashes = 0
        #: (first, last) 1-based write indexes inside group-commit flushes
        self.commit_windows: list[tuple[int, int]] = []
        self._commit_start: int | None = None

    @property
    def armed(self) -> bool:
        return self._remaining is not None

    def arm(self, writes_until_crash: int) -> None:
        if writes_until_crash < 0:
            raise ValueError("writes_until_crash must be non-negative")
        self._remaining = writes_until_crash

    def disarm(self) -> None:
        self._remaining = None

    def consume(self) -> bool:
        """Account one write; True when this write must crash instead."""
        if self._remaining is not None and self._remaining == 0:
            self.crashes += 1
            return True
        self.writes_seen += 1
        if self._remaining is not None:
            self._remaining -= 1
        return False

    # -- group-commit observation (see storage.group_commit) ----------------

    def begin_commit(self) -> None:
        self._commit_start = self.writes_seen

    def end_commit(self) -> None:
        start = self._commit_start
        self._commit_start = None
        if start is not None and self.writes_seen > start:
            self.commit_windows.append((start + 1, self.writes_seen))


class FaultInjectionDevice:
    """Decorates a block device; crashes after ``writes_until_crash`` writes.

    ``writes_until_crash=None`` disarms the device (pass-through).  The
    counter spans the device's lifetime, not a single operation, so a
    crash can land in the middle of any multi-block write sequence.

    ``crash_budget`` shares one :class:`CrashBudget` across every device
    of a simulated process: when given, it replaces the per-device
    counter, so the drill's seeded crash point addresses the process's
    global write sequence (and can land mid-group-commit).
    """

    def __init__(
        self,
        inner: BlockDevice,
        writes_until_crash: int | None = None,
        instrumentation: "Instrumentation | None" = None,
        torn_writes: bool = False,
        crash_budget: CrashBudget | None = None,
    ) -> None:
        if writes_until_crash is not None and writes_until_crash < 0:
            raise ValueError("writes_until_crash must be non-negative")
        self._inner = inner
        self._budget = writes_until_crash
        self._shared = crash_budget
        self._instr = instrumentation
        self._torn = torn_writes
        self._crash_reported = False
        self.writes_survived = 0

    @property
    def block_size(self) -> int:
        return self._inner.block_size

    @property
    def cost_model(self) -> CostModel:
        return self._inner.cost_model

    @property
    def inner(self) -> BlockDevice:
        """The undecorated device -- the 'disk' that survives the crash."""
        return self._inner

    def arm(self, writes_until_crash: int, torn_writes: bool | None = None) -> None:
        """(Re-)arm the crash trigger; optionally toggle torn-write mode."""
        if writes_until_crash < 0:
            raise ValueError("writes_until_crash must be non-negative")
        self._budget = writes_until_crash
        if torn_writes is not None:
            self._torn = torn_writes
        self._crash_reported = False

    def disarm(self) -> None:
        self._budget = None
        self._crash_reported = False

    def read_block(self, index: int, sequential: bool) -> bytes:
        return self._inner.read_block(index, sequential)

    def write_block(self, index: int, data: bytes, sequential: bool) -> None:
        if self._shared is not None:
            if self._shared.consume():
                self._crash(index, data)
        elif self._budget is not None:
            if self._budget == 0:
                self._crash(index, data)
            self._budget -= 1
        self._inner.write_block(index, data, sequential)
        self.writes_survived += 1

    def _crash(self, index: int, data: bytes) -> None:
        """Report, optionally tear the in-flight block, and raise."""
        self._report_crash(index)
        if self._torn:
            # A torn write: power fails mid-block, leaving the first
            # half of the new data spliced onto the old tail.  The
            # landed fragment is not a charged, completed access --
            # CRC-protected readers (the superblock) must detect it.
            old = self._inner.peek_block(index)
            half = self._inner.block_size // 2
            self._inner.poke_block(index, data[:half] + old[half:])
        raise InjectedCrash(
            f"simulated crash after {self.writes_survived} writes"
        )

    def _report_crash(self, block_index: int) -> None:
        """Telemetry for the crash: one event + counter per armed trigger.

        A dead process keeps failing every subsequent write with the same
        armed budget; reporting only the first failure keeps the event
        stream one-crash-one-event, which is what recovery dashboards and
        the fault-injection tests key on.  Re-arming resets the latch.
        """
        if self._instr is None or self._crash_reported:
            return
        self._crash_reported = True
        device = getattr(self._inner, "name", "") or "faulty"
        self._instr.counter("device.crashes", labels={"device": device}).inc()
        self._instr.emit(
            "device.crash_injected",
            device=device,
            block_index=block_index,
            writes_survived=self.writes_survived,
        )

    def peek_block(self, index: int) -> bytes:
        return self._inner.peek_block(index)

    def poke_block(self, index: int, data: bytes) -> None:
        # Bookkeeping mutations (cache hits) are not disk writes; a crash
        # loses them anyway, so they do not consume the budget.
        self._inner.poke_block(index, data)

    def discard(self, index: int) -> None:
        self._inner.discard(index)

    def discard_from(self, first_index: int) -> None:
        self._inner.discard_from(first_index)
