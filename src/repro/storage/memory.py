"""Main-memory accounting for the Fig. 12 experiment.

The paper compares the in-memory footprint of the refresh implementations:
Array Refresh always holds ``M`` 4-byte indexes, Stack Refresh holds one
4-byte index per final candidate (``Psi`` of them at the peak), Nomem
Refresh holds only the PRNG state, and the geometric file needs a buffer of
full elements as large as the number of candidates it defers.  Each
algorithm fills in a :class:`MemoryReport`; the Fig. 12 bench just plots
``peak_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryReport", "INDEX_BYTES", "MT19937_STATE_BYTES"]

#: The paper counts candidate indexes as 4-byte integers (Sec. 6.4).
INDEX_BYTES = 4

#: MT19937 state: 624 32-bit words + position -- the paper's "negligible"
#: footprint of Nomem Refresh.
MT19937_STATE_BYTES = 624 * 4 + 4


@dataclass
class MemoryReport:
    """Peak main-memory use of one refresh (or logging) operation."""

    #: bytes of index arrays / stacks (4 bytes per entry, as in the paper)
    index_bytes: int = 0
    #: bytes of buffered full elements (geometric file buffer)
    element_bytes: int = 0
    #: bytes of PRNG state snapshots
    prng_state_bytes: int = 0

    @property
    def peak_bytes(self) -> int:
        return self.index_bytes + self.element_bytes + self.prng_state_bytes

    @property
    def peak_megabytes(self) -> float:
        return self.peak_bytes / 1_000_000.0

    def account_indexes(self, count: int) -> None:
        """Track the high-water mark of live index entries."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.index_bytes = max(self.index_bytes, count * INDEX_BYTES)

    def account_elements(self, count: int, element_size: int) -> None:
        if count < 0 or element_size <= 0:
            raise ValueError("invalid element accounting")
        self.element_bytes = max(self.element_bytes, count * element_size)

    def account_prng_snapshots(self, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.prng_state_bytes = max(self.prng_state_bytes, count * MT19937_STATE_BYTES)
