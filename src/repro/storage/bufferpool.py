"""Buffer-pool page cache over any :class:`~repro.storage.block_device.BlockDevice`.

The paper's cost model charges every block access (Sec. 6.1); a
production sample-view backend -- the ROADMAP north star -- puts a page
cache between the file layer and the device, exactly as the geometric
file's in-memory buffer and CacheDiff's block reuse do for their
workloads.  :class:`BufferPool` is that cache: a fixed budget of page
frames over an inner device, with

* **pin/unpin** -- a pinned frame is never evicted (callers bracket
  multi-step reads);
* **LRU eviction** -- the least-recently-used unpinned frame makes room,
  writing its page back first when dirty;
* **sequential readahead** -- inside a *declared* scan window
  (:func:`declare_scan` / :meth:`BufferPool.begin_scan`), a sequential
  read miss prefetches the next blocks of the window in one go, so a
  rescan of a cached file costs zero device accesses;
* **write coalescing** -- writes land in the frame and reach the device
  only at eviction or at an explicit **flush barrier**
  (:meth:`BufferPool.flush`, reachable through :func:`flush_barrier`).
  Barriers are issued at refresh commit and at checkpoint points, so the
  crash semantics the fault-injection tests rely on are preserved: after
  a barrier, everything the checkpoint describes is on the device.

**Paper-fidelity contract.**  ``capacity=0`` (the default everywhere an
experiment runs) disables the pool: every call passes straight through to
the inner device, so :class:`~repro.storage.cost_model.AccessStats`,
block contents and PRNG state are bit-identical to a run without the
pool.  With ``capacity > 0`` the data path is still exact -- reads always
observe the newest write -- but hits, readahead and coalescing reduce the
*device* access counts (surfaced as the ``storage.pool.*`` instruments
and :class:`PoolStats`).

Layering: the pool is the **outermost** device decorator --
``BufferPool(FaultInjectionDevice(SimulatedBlockDevice(...)))`` -- so an
injected crash lands on the write-back path exactly where a power failure
would, and everything the pool still holds dirty is lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.storage.block_device import BlockDevice

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs uses storage)
    from repro.obs.api import Instrumentation

__all__ = ["BufferPool", "PoolStats", "declare_scan", "flush_barrier"]


def declare_scan(device: BlockDevice, start: int, blocks: int) -> None:
    """Declare a forthcoming sequential scan of ``blocks`` blocks at ``start``.

    The file layer calls this before every scan-shaped access pattern;
    a :class:`BufferPool` turns the declaration into a readahead window,
    any other device ignores it.  Free on plain devices (one getattr).
    """
    begin = getattr(device, "begin_scan", None)
    if begin is not None:
        begin(start, blocks)


def flush_barrier(device: BlockDevice) -> None:
    """Force deferred writes to the device (refresh commit / checkpoint).

    A :class:`BufferPool` writes back every dirty frame; plain devices
    have nothing buffered and ignore the barrier.  Callers above the
    storage layer must use this -- never raw block writes -- to make
    state durable (lint rule IO002).
    """
    flush = getattr(device, "flush", None)
    if flush is not None:
        flush()


@dataclass
class PoolStats:
    """Lifetime counters of one :class:`BufferPool` (plain ints, always on)."""

    hits: int = 0
    misses: int = 0
    readahead_blocks: int = 0
    evictions: int = 0
    flushed_blocks: int = 0
    coalesced_writes: int = 0
    flush_barriers: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of charged reads served from a frame (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 6),
            "readahead_blocks": self.readahead_blocks,
            "evictions": self.evictions,
            "flushed_blocks": self.flushed_blocks,
            "coalesced_writes": self.coalesced_writes,
            "flush_barriers": self.flush_barriers,
        }


class _Frame:
    """One resident page: its bytes, dirty state and pin count.

    ``write_sequential`` remembers the access classification the *last*
    writer declared, so a deferred write-back charges the device with the
    classification the write would have carried uncoalesced.
    """

    __slots__ = ("data", "dirty", "pins", "write_sequential")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.dirty = False
        self.pins = 0
        self.write_sequential = True


class BufferPool:
    """Page cache implementing the :class:`BlockDevice` protocol itself.

    Because the pool *is* a block device, every existing consumer --
    :class:`~repro.storage.files.SampleFile`,
    :class:`~repro.storage.files.LogFile`, the checkpoint stores -- works
    over it unchanged; routing a stack through the pool is a construction
    choice, not a code change.

    Parameters
    ----------
    inner:
        The device to cache (may itself be a
        :class:`~repro.storage.fault_injection.FaultInjectionDevice`).
    capacity:
        Page-frame budget.  ``0`` disables the pool entirely: every
        operation passes through and the accounting is bit-identical to
        the bare device (the default for all paper experiments).
    readahead:
        Blocks to prefetch on a sequential read miss inside a declared
        scan window.  ``0`` disables readahead.
    instrumentation:
        Optional obs facade; mirrors :class:`PoolStats` into the
        ``storage.pool.*`` counters, labelled with the pool's name.
    """

    def __init__(
        self,
        inner: BlockDevice,
        capacity: int,
        readahead: int = 8,
        instrumentation: "Instrumentation | None" = None,
        name: str = "",
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if readahead < 0:
            raise ValueError("readahead must be non-negative")
        self._inner = inner
        self._capacity = capacity
        self._readahead = readahead
        self._name = name or getattr(inner, "name", "") or "pool"
        #: insertion order == recency order: oldest (LRU) first.
        self._frames: dict[int, _Frame] = {}
        self._scan_end = 0
        self.stats = PoolStats()
        self._instr = instrumentation
        if instrumentation is not None and capacity > 0:
            labels = {"device": self._name}
            self._c_hits = instrumentation.counter("storage.pool.hits", labels)
            self._c_misses = instrumentation.counter("storage.pool.misses", labels)
            self._c_readahead = instrumentation.counter(
                "storage.pool.readahead_blocks", labels
            )
            self._c_evictions = instrumentation.counter(
                "storage.pool.evictions", labels
            )
            self._c_flushed = instrumentation.counter(
                "storage.pool.flushed_blocks", labels
            )
            self._c_coalesced = instrumentation.counter(
                "storage.pool.coalesced_writes", labels
            )
        else:
            self._instr = None

    # -- introspection -------------------------------------------------------

    @property
    def block_size(self) -> int:
        return self._inner.block_size

    @property
    def cost_model(self):
        return self._inner.cost_model

    @property
    def inner(self) -> BlockDevice:
        """The cached device (what survives a crash)."""
        return self._inner

    @property
    def name(self) -> str:
        return self._name

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def enabled(self) -> bool:
        return self._capacity > 0

    @property
    def frames_in_use(self) -> int:
        return len(self._frames)

    @property
    def dirty_blocks(self) -> list[int]:
        """Block indexes with unflushed writes, in ascending order."""
        return sorted(i for i, f in self._frames.items() if f.dirty)

    # -- the BlockDevice protocol --------------------------------------------

    def read_block(self, index: int, sequential: bool) -> bytes:
        """Serve from a frame when resident; otherwise read through.

        A sequential miss inside a declared scan window also prefetches
        the next ``readahead`` blocks of the window (each a charged
        sequential device read, issued now instead of later).
        """
        if self._capacity == 0:
            return self._inner.read_block(index, sequential)
        if self._instr is not None and self._instr.trace_storage:
            with self._instr.span(
                "storage.pool.read", device=self._name, block=index
            ) as span:
                data, hit = self._read_enabled(index, sequential)
                span.set("hit", hit)
            return data
        data, _ = self._read_enabled(index, sequential)
        return data

    def _read_enabled(self, index: int, sequential: bool) -> tuple[bytes, bool]:
        frame = self._frames.get(index)
        if frame is not None:
            self._touch(index, frame)
            self.stats.hits += 1
            if self._instr is not None:
                self._c_hits.inc()
            return frame.data, True
        self.stats.misses += 1
        if self._instr is not None:
            self._c_misses.inc()
        data = self._inner.read_block(index, sequential)
        self._install(index, _Frame(data))
        if sequential and self._readahead:
            self._prefetch(index + 1)
        return data, False

    def write_block(self, index: int, data: bytes, sequential: bool) -> None:
        """Buffer the write; the device is touched at eviction or barrier."""
        if self._capacity == 0:
            self._inner.write_block(index, data, sequential)
            return
        if index < 0:
            raise ValueError(f"block index must be non-negative, got {index}")
        if len(data) != self.block_size:
            raise ValueError(
                f"block write must be exactly {self.block_size} bytes, got {len(data)}"
            )
        if self._instr is not None and self._instr.trace_storage:
            with self._instr.span(
                "storage.pool.write", device=self._name, block=index
            ):
                self._write_enabled(index, data, sequential)
            return
        self._write_enabled(index, data, sequential)

    def _write_enabled(self, index: int, data: bytes, sequential: bool) -> None:
        frame = self._frames.get(index)
        if frame is not None:
            if frame.dirty:
                # Two buffered writes to one page reach the device once.
                self.stats.coalesced_writes += 1
                if self._instr is not None:
                    self._c_coalesced.inc()
            frame.data = bytes(data)
            frame.dirty = True
            frame.write_sequential = sequential
            self._touch(index, frame)
            return
        frame = _Frame(bytes(data))
        frame.dirty = True
        frame.write_sequential = sequential
        self._install(index, frame)

    def peek_block(self, index: int) -> bytes:
        """Uncharged read; a dirty frame is newer than the device copy."""
        frame = self._frames.get(index)
        if frame is not None:
            return frame.data
        return self._inner.peek_block(index)

    def poke_block(self, index: int, data: bytes) -> None:
        """Uncharged bookkeeping write: through to the device, frames kept

        coherent.  The dirty flag is untouched -- a poke is already
        durable below, so it must not induce a later charged write-back.
        """
        frame = self._frames.get(index)
        if frame is not None:
            frame.data = bytes(data)
        self._inner.poke_block(index, data)

    def discard(self, index: int) -> None:
        """Drop one block; a buffered write to it is abandoned, not flushed."""
        self._frames.pop(index, None)
        self._inner.discard(index)

    def discard_from(self, first_index: int) -> None:
        """Logical truncation: frames at or beyond ``first_index`` vanish."""
        for block in [b for b in self._frames if b >= first_index]:
            del self._frames[block]
        if self._scan_end > first_index:
            self._scan_end = first_index
        self._inner.discard_from(first_index)

    # -- pool-specific API ---------------------------------------------------

    def begin_scan(self, start: int, blocks: int) -> None:
        """Open a readahead window over ``[start, start + blocks)``.

        Only reads inside the newest window prefetch; the window shrinks
        as truncation discards blocks and is replaced by the next scan.
        """
        if start < 0 or blocks < 0:
            raise ValueError("scan window must be non-negative")
        self._scan_end = start + blocks

    def flush(self) -> None:
        """Flush barrier: write back every dirty frame, ascending by index.

        Each write-back charges the inner device with the classification
        the buffered write declared.  Frames stay resident (clean), so a
        barrier costs durability, not cache warmth.  A crash injected
        mid-barrier leaves exactly the frames written so far clean -- the
        torn state a power failure produces.
        """
        if self._capacity == 0:
            return
        if self._instr is not None and self._instr.trace_storage:
            with self._instr.span("storage.pool.flush", device=self._name) as span:
                span.set("dirty", len(self.dirty_blocks))
                self._flush_enabled()
            return
        self._flush_enabled()

    def _flush_enabled(self) -> None:
        self.stats.flush_barriers += 1
        for index in self.dirty_blocks:
            frame = self._frames[index]
            self._inner.write_block(index, frame.data, frame.write_sequential)
            frame.dirty = False
            self.stats.flushed_blocks += 1
            if self._instr is not None:
                self._c_flushed.inc()

    def invalidate(self) -> None:
        """Drop every frame, dirty ones included, without writing back.

        Frames are RAM: this is what a process crash does to them.  The
        recovery tests call it before reopening files over the pool, so
        recovery reads observe only what barriers made durable.
        """
        self._frames.clear()
        self._scan_end = 0

    def pin(self, index: int, sequential: bool = False) -> bytes:
        """Fault the block in (charged read on miss) and pin its frame."""
        if self._capacity == 0:
            raise RuntimeError("cannot pin frames on a disabled (capacity 0) pool")
        data = self.read_block(index, sequential)
        frame = self._frames.get(index)
        if frame is None:  # pragma: no cover - requires a fully pinned pool
            raise RuntimeError(
                f"block {index} could not be kept resident: every frame is pinned"
            )
        frame.pins += 1
        return data

    def unpin(self, index: int) -> None:
        frame = self._frames.get(index)
        if frame is None or frame.pins == 0:
            raise RuntimeError(f"block {index} is not pinned")
        frame.pins -= 1

    # -- internals -----------------------------------------------------------

    def _touch(self, index: int, frame: _Frame) -> None:
        """Move a frame to the most-recently-used position."""
        del self._frames[index]
        self._frames[index] = frame

    def _install(self, index: int, frame: _Frame) -> None:
        self._frames[index] = frame
        while len(self._frames) > self._capacity:
            # Never evict the page being faulted in: a pool whose every
            # other frame is pinned is out of buffers, not out of victims.
            self._evict(exclude=index)

    def _evict(self, exclude: int = -1) -> None:
        for index, frame in self._frames.items():
            if frame.pins == 0 and index != exclude:
                break
        else:
            del self._frames[exclude]
            raise RuntimeError(
                f"buffer pool over capacity ({self._capacity}) with every "
                "frame pinned; unpin before reading further"
            )
        if frame.dirty:
            self._inner.write_block(index, frame.data, frame.write_sequential)
            self.stats.flushed_blocks += 1
            if self._instr is not None:
                self._c_flushed.inc()
        del self._frames[index]
        self.stats.evictions += 1
        if self._instr is not None:
            self._c_evictions.inc()

    def _prefetch(self, start: int) -> None:
        """Readahead within the declared scan window, starting at ``start``."""
        end = min(self._scan_end, start + self._readahead)
        for ahead in range(start, end):
            if ahead in self._frames:
                continue
            data = self._inner.read_block(ahead, True)
            self._install(ahead, _Frame(data))
            self.stats.readahead_blocks += 1
            if self._instr is not None:
                self._c_readahead.inc()

    def __repr__(self) -> str:
        return (
            f"BufferPool({self._name!r} capacity={self._capacity} "
            f"frames={len(self._frames)} dirty={len(self.dirty_blocks)})"
        )
