"""Multi-device group commit: one fsync-equivalent across a sample's devices.

A catalogued sample's durable state spans *three* devices -- sample file,
candidate log, superblock manifest -- but the commit discipline used to
be per-device: :meth:`SampleMaintainer.refresh` flushed the sample and
log devices separately, and the checkpoint stores flushed only their own
device.  That is correct for durability but leaves no single point that
says "these devices are now mutually consistent", which is exactly the
point a replication stream must ship from.

:class:`GroupCommitBarrier` is that point.  ``commit()`` write-backs
every member device (one barrier spanning the group), then -- when a
replication link is attached and the commit is a *sealing* one -- packs
the devices' pending block records into one commit batch.  Mid-sequence
commits (a refresh, a checkpoint's pre-save flush) run flush-only
(``seal=False``) so their records accumulate and ship with the next
manifest save: replica state is therefore always a prefix of *checkpoint
boundaries* -- the only states a failover can resume bit-identically --
never a torn mid-operation view.

Without a link the barrier degrades to exactly the flushes the
per-device code performed, in member order, so an unreplicated run is
bit-identical to the pre-group-commit behaviour (property-tested).

A fault budget (see
:class:`~repro.storage.fault_injection.CrashBudget`) can observe the
barrier: the drill harness uses the recorded commit windows to aim
injected crashes *inside* the multi-device flush, the hardest crash
point for consistency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.storage.block_device import BlockDevice
from repro.storage.bufferpool import flush_barrier
from repro.storage.replicated import ReplicatedDevice, replicated_in

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.api import Instrumentation
    from repro.storage.fault_injection import CrashBudget

__all__ = ["GroupCommitBarrier"]


class GroupCommitBarrier:
    """One commit point spanning several block devices.

    Parameters
    ----------
    devices:
        The member devices, flushed in the given order at every commit
        (order is part of the crash semantics: a mid-commit crash leaves
        a prefix of members durable).
    link:
        Optional replication link (duck-typed:
        :class:`repro.replication.link.ReplicationLink`).  When present,
        a sealing commit packs the members' pending block records into
        one commit batch -- the unit the replica applies atomically.
    fault_budget:
        Optional shared crash budget; the barrier brackets its flush
        phase with ``begin_commit``/``end_commit`` so fault-injection
        drills can target writes *inside* the barrier.
    instrumentation:
        Optional obs facade; opens a ``storage.group_commit`` span per
        commit when storage tracing is on.
    """

    def __init__(
        self,
        devices: Sequence[BlockDevice],
        link=None,
        fault_budget: "CrashBudget | None" = None,
        instrumentation: "Instrumentation | None" = None,
    ) -> None:
        if not devices:
            raise ValueError("a group commit barrier needs at least one device")
        # Preserve order but commit each device once even when shared.
        unique: list[BlockDevice] = []
        for device in devices:
            if all(device is not seen for seen in unique):
                unique.append(device)
        self._devices: tuple[BlockDevice, ...] = tuple(unique)
        self._link = link
        self._budget = fault_budget
        self._instr = instrumentation
        self._replicated: tuple[ReplicatedDevice, ...] = tuple(
            replica
            for replica in (replicated_in(device) for device in self._devices)
            if replica is not None
        )
        self.commits = 0

    @property
    def devices(self) -> tuple[BlockDevice, ...]:
        return self._devices

    @property
    def link(self):
        return self._link

    def commit(self, seal: bool = True) -> None:
        """Flush every member device, then seal the replication batch.

        The flush phase *strictly precedes* the seal: a sealed batch only
        ever describes blocks that are already durable on the primary, so
        replica state is a checkpoint-boundary prefix by construction (this
        ordering is what lint rule BAR002 checks at every commit site).

        ``seal=False`` runs the flush phase only (durability without a
        ship point).  Mid-sequence commits -- a refresh that truncated the
        log, a checkpoint's pre-save flush -- use it so their captured
        records *accumulate* and ship with the next manifest save: a
        sealed batch always ends on a checkpoint boundary, the only state
        a failover can resume bit-identically (an older shipped manifest
        over newer shipped device bytes could describe a log the refresh
        already truncated).
        """
        if self._instr is not None and self._instr.trace_storage:
            with self._instr.span(
                "storage.group_commit", devices=len(self._devices)
            ) as span:
                self._flush_all()
                span.set("commit", self.commits)
                span.set("seal", seal)
                if seal and self._link is not None:
                    self._link.seal(self._replicated)
            return
        self._flush_all()
        if seal and self._link is not None:
            self._link.seal(self._replicated)

    def _flush_all(self) -> None:
        """The barrier's flush phase: write back every member, in order."""
        if self._budget is not None:
            self._budget.begin_commit()
        for device in self._devices:
            flush_barrier(device)
        if self._budget is not None:
            self._budget.end_commit()
        self.commits += 1

    def __repr__(self) -> str:
        names = [getattr(device, "name", "?") for device in self._devices]
        return (
            f"GroupCommitBarrier({names} commits={self.commits} "
            f"replicated={len(self._replicated)})"
        )
