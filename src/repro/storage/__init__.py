"""Disk substrate: block devices, block-aligned files and cost accounting.

The paper's experimental methodology (Sec. 6.1) is: run every algorithm,
*count* its block-level sequential/random reads and writes, and weight the
counts with access times measured once on real hardware (0.094 ms per
sequential block, 8.45 ms per random read, 5.50 ms per random write; 4096-
byte blocks holding 128 32-byte elements).  This subpackage reproduces that
methodology:

* :mod:`~repro.storage.cost_model` -- disk parameters, access statistics
  and the count-to-seconds weighting;
* :mod:`~repro.storage.block_device` -- an in-memory block store that keeps
  the categorised counts while faithfully round-tripping data;
* :mod:`~repro.storage.files` -- :class:`SampleFile` and :class:`LogFile`,
  the two block-aligned on-disk structures every algorithm manipulates;
* :mod:`~repro.storage.real_disk` -- a real-file backend plus the
  access-time calibration that regenerates the Sec. 6.1 table;
* :mod:`~repro.storage.bufferpool` -- an optional page cache between the
  files and any device (pin/unpin, LRU, readahead, write coalescing with
  flush barriers); disabled by default for bit-exact paper accounting;
* :mod:`~repro.storage.memory` -- main-memory accounting for Fig. 12.

Every backend -- simulated, real-disk, fault-injected, buffer-pooled --
satisfies the :class:`~repro.storage.block_device.BlockDevice` protocol,
and everything above the device layer is typed against that protocol, so
backends compose and interchange freely (see ``docs/storage.md``).
"""

from repro.storage.cost_model import (
    AccessStats,
    CostModel,
    DiskParameters,
    PAPER_DISK,
)
from repro.storage.block_device import BlockDevice, SimulatedBlockDevice
from repro.storage.bufferpool import (
    BufferPool,
    PoolStats,
    declare_scan,
    flush_barrier,
)
from repro.storage.fault_injection import (
    CrashBudget,
    FaultInjectionDevice,
    InjectedCrash,
)
from repro.storage.files import LogFile, SampleFile, SequentialLogReader
from repro.storage.group_commit import GroupCommitBarrier
from repro.storage.memory import MemoryReport
from repro.storage.real_disk import RealBlockDevice, WallClock, calibrate_disk
from repro.storage.records import BytesRecordCodec, IntRecordCodec, RecordCodec
from repro.storage.replicated import (
    BlockRecord,
    ReplicatedDevice,
    apply_records,
    apply_to_image,
    base_device,
    canonical_image,
    clone_image,
    device_image,
    image_digest,
    replicated_in,
)
from repro.storage.superblock import (
    CheckpointError,
    CheckpointStore,
    DualSlotCheckpointStore,
    MaintenanceCheckpoint,
)

__all__ = [
    "AccessStats",
    "CostModel",
    "DiskParameters",
    "PAPER_DISK",
    "BlockDevice",
    "SimulatedBlockDevice",
    "BufferPool",
    "PoolStats",
    "declare_scan",
    "flush_barrier",
    "RealBlockDevice",
    "WallClock",
    "calibrate_disk",
    "LogFile",
    "SampleFile",
    "SequentialLogReader",
    "MemoryReport",
    "IntRecordCodec",
    "BytesRecordCodec",
    "RecordCodec",
    "MaintenanceCheckpoint",
    "CheckpointStore",
    "DualSlotCheckpointStore",
    "CheckpointError",
    "FaultInjectionDevice",
    "InjectedCrash",
    "CrashBudget",
    "GroupCommitBarrier",
    "ReplicatedDevice",
    "BlockRecord",
    "apply_records",
    "apply_to_image",
    "base_device",
    "canonical_image",
    "clone_image",
    "device_image",
    "image_digest",
    "replicated_in",
]
