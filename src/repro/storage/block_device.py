"""Simulated block device with categorised access counting.

The device stores real block contents (so algorithms are verified to move
the right bytes, not just the right counts) and charges every block access
to an :class:`~repro.storage.cost_model.AccessStats` via a shared
:class:`~repro.storage.cost_model.CostModel`.

Classification (sequential vs. random) is declared by the caller -- the
file layer in :mod:`repro.storage.files` -- because only it knows the
access *pattern* an operation belongs to (a scan, an append stream, a
random probe).  This mirrors the paper's accounting, which counts "the
number of sequential/random reads and writes on a block-level basis"
per algorithm phase (Sec. 6.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.storage.cost_model import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs uses storage)
    from repro.obs.api import Instrumentation

__all__ = ["BlockDevice", "SimulatedBlockDevice"]


class BlockDevice(Protocol):
    """Block-device interface shared by every backend.

    The simulated, real-disk, fault-injected and buffer-pooled devices all
    satisfy this protocol, which makes them interchangeable throughout the
    stack: the file layer, the checkpoint stores and the serve catalog are
    typed against it and never name a concrete device.

    ``read_block``/``write_block`` are *charged* accesses (counted by the
    cost model with the caller-declared sequential/random classification,
    Sec. 6.1).  ``peek_block``/``poke_block`` are uncharged bookkeeping
    accesses -- cache hits the paper's accounting grants for free --
    and ``discard``/``discard_from`` model logical truncation, which moves
    no data.
    """

    @property
    def block_size(self) -> int:  # pragma: no cover - protocol
        ...

    @property
    def cost_model(self) -> CostModel:  # pragma: no cover - protocol
        ...

    def read_block(self, index: int, sequential: bool) -> bytes:  # pragma: no cover
        ...

    def write_block(self, index: int, data: bytes, sequential: bool) -> None:  # pragma: no cover
        ...

    def peek_block(self, index: int) -> bytes:  # pragma: no cover - protocol
        ...

    def poke_block(self, index: int, data: bytes) -> None:  # pragma: no cover
        ...

    def discard(self, index: int) -> None:  # pragma: no cover - protocol
        ...

    def discard_from(self, first_index: int) -> None:  # pragma: no cover
        ...


class SimulatedBlockDevice:
    """In-memory block store that meters accesses through a cost model.

    Blocks spring into existence zero-filled on first touch, so files can
    grow by simply writing past the end, as on a sparse file.
    """

    def __init__(
        self,
        cost_model: CostModel,
        name: str = "",
        instrumentation: "Instrumentation | None" = None,
    ) -> None:
        self._cost_model = cost_model
        self._blocks: dict[int, bytes] = {}
        self._name = name
        self._instr = instrumentation

    @property
    def block_size(self) -> int:
        return self._cost_model.disk.block_size

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    @property
    def name(self) -> str:
        return self._name

    @property
    def instrumentation(self) -> "Instrumentation | None":
        return self._instr

    @instrumentation.setter
    def instrumentation(self, value: "Instrumentation | None") -> None:
        self._instr = value

    @property
    def allocated_blocks(self) -> int:
        """How many blocks have ever been written."""
        return len(self._blocks)

    def snapshot_blocks(self) -> dict[int, bytes]:
        """Copy of the allocated block map, without charging any I/O.

        The replication and disaster-recovery tooling images devices
        through this (see :func:`repro.storage.replicated.device_image`)
        to compare durable state byte-for-byte across crash boundaries.
        """
        return dict(self._blocks)

    def read_block(self, index: int, sequential: bool) -> bytes:
        """Return the contents of a block, charging one read access."""
        self._check_index(index)
        if self._instr is not None and self._instr.trace_storage:
            with self._instr.span(
                "storage.device.read",
                device=self._name,
                block=index,
                pattern="seq" if sequential else "random",
            ):
                self._cost_model.charge("read", sequential)
            self._instr.record_device_access(self._name, "read", sequential)
        else:
            self._cost_model.charge("read", sequential)
            if self._instr is not None:
                self._instr.record_device_access(self._name, "read", sequential)
        return self._blocks.get(index, b"\x00" * self.block_size)

    def write_block(self, index: int, data: bytes, sequential: bool) -> None:
        """Overwrite a block, charging one write access."""
        self._check_index(index)
        if len(data) != self.block_size:
            raise ValueError(
                f"block write must be exactly {self.block_size} bytes, got {len(data)}"
            )
        if self._instr is not None and self._instr.trace_storage:
            with self._instr.span(
                "storage.device.write",
                device=self._name,
                block=index,
                pattern="seq" if sequential else "random",
            ):
                self._cost_model.charge("write", sequential)
            self._instr.record_device_access(self._name, "write", sequential)
        else:
            self._cost_model.charge("write", sequential)
            if self._instr is not None:
                self._instr.record_device_access(self._name, "write", sequential)
        self._blocks[index] = bytes(data)

    def peek_block(self, index: int) -> bytes:
        """Read block contents without charging any I/O (test/debug aid)."""
        self._check_index(index)
        return self._blocks.get(index, b"\x00" * self.block_size)

    def poke_block(self, index: int, data: bytes) -> None:
        """Overwrite a block without charging I/O (cache hit / bookkeeping)."""
        self._check_index(index)
        if len(data) != self.block_size:
            raise ValueError(
                f"block write must be exactly {self.block_size} bytes, got {len(data)}"
            )
        self._blocks[index] = bytes(data)

    def discard(self, index: int) -> None:
        """Drop a block without any I/O charge (logical truncation)."""
        self._check_index(index)
        self._blocks.pop(index, None)

    def discard_from(self, first_index: int) -> None:
        """Drop every block at or beyond ``first_index``."""
        self._check_index(first_index)
        for block in [b for b in self._blocks if b >= first_index]:
            del self._blocks[block]

    @staticmethod
    def _check_index(index: int) -> None:
        if index < 0:
            raise ValueError(f"block index must be non-negative, got {index}")

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"SimulatedBlockDevice({label} blocks={len(self._blocks)})"
