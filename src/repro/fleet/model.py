"""The vectorised fleet model: fleet-scale sweeps in seconds.

The full engine executes every sub-query against a real catalog, which
caps it at thousands of events.  This engine keeps the fleet *semantics*
-- seeded consistent-hash placement, per-tenant token buckets, per-shard
single-server queueing, fan-out merge with straggler attribution and
analytic hedging -- but replaces per-sample maintenance with a queueing
**model**: service times are exponential draws around configured means
(``model_read_service_seconds`` / ``model_ingest_service_seconds``)
instead of measured cost deltas.  Model-engine numbers are comparable
only to other model runs, never to full-engine runs; the report's
``engine`` field says which produced it.

Everything is drawn up front from one PCG64 generator seeded by the
``model`` child of the fleet seed, and the only per-event state -- each
shard's busy-server recursion and each token bucket's level -- is
computed either by an exact vector recurrence or a tight loop over
pre-sorted arrays:

* per-shard completion times use the prefix form of the single-server
  recursion ``start_k = max(arrival_k, completion_{k-1})``::

      completion = np.maximum.accumulate(arrival - (cum - svc)) + cum

  with ``cum`` the running sum of service times -- identical to the
  event-by-event recursion, in one vector pass per shard;
* token buckets reuse :class:`~repro.fleet.quota.TenantQuotas` verbatim,
  fed each bucket's own arrivals in time order (a bucket's decisions
  depend only on its own history, so per-bucket processing is exact).

Same seed, same bytes: the CI fleet-smoke step runs this engine twice at
16 shards / 10k samples / 1M+ events and ``cmp``\\ s the reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.fleet.quota import TenantQuotas, parse_quotas
from repro.fleet.ring import HashRing
from repro.fleet.router import _round, ring_section
from repro.rng import RandomSource, numpy_generator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.sim import FleetConfig
    from repro.obs.api import Instrumentation

__all__ = ["run_model_simulation"]


def _dist(values: np.ndarray, p99: bool = False) -> dict:
    """Nearest-rank distribution over a float array, canonical rounding."""
    n = int(values.size)
    if n == 0:
        return {"count": 0}
    ordered = np.sort(values)
    out = {
        "count": n,
        "mean": _round(float(ordered.sum() / n)),
        "p50": _round(float(ordered[(50 * (n - 1)) // 100])),
        "p95": _round(float(ordered[(95 * (n - 1)) // 100])),
        "max": _round(float(ordered[-1])),
    }
    if p99:
        out["p99"] = _round(float(ordered[(99 * (n - 1)) // 100]))
    return out


def _quota_gate(
    quotas: TenantQuotas,
    tenant_names: list[str],
    base_arrival: np.ndarray,
    base_tenant: np.ndarray,
    base_is_ingest: np.ndarray,
    fan_arrival: np.ndarray,
    fan_tenant: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Run every arrival through its (tenant, kind) bucket in time order.

    Base and fan-out reads share one ``reads`` bucket per tenant; on a
    time tie the base event goes first, matching the full engine's
    (time, seq) order (base seqs sort below fan-out seqs).
    """
    base_admit = np.ones(base_arrival.size, dtype=bool)
    fan_admit = np.ones(fan_arrival.size, dtype=bool)
    for t, tenant in enumerate(tenant_names):
        ingest_idx = np.flatnonzero((base_tenant == t) & base_is_ingest)
        for i in ingest_idx:
            base_admit[i] = quotas.check(
                tenant, "ingest", float(base_arrival[i])
            ).admitted
        read_idx = np.flatnonzero((base_tenant == t) & ~base_is_ingest)
        fan_idx = np.flatnonzero(fan_tenant == t)
        times = np.concatenate((base_arrival[read_idx], fan_arrival[fan_idx]))
        # Stable sort keeps base-before-fan-out on exact time ties.
        order = np.argsort(times, kind="stable")
        split = read_idx.size
        for pos in order:
            admitted = quotas.check(tenant, "reads", float(times[pos])).admitted
            if pos < split:
                base_admit[read_idx[pos]] = admitted
            else:
                fan_admit[fan_idx[pos - split]] = admitted
    return base_admit, fan_admit


def run_model_simulation(
    config: "FleetConfig",
    instrumentation: "Instrumentation | None" = None,
) -> dict:
    """Run the vectorised fleet model; returns the report's section dict."""
    obs = instrumentation
    sample_names = config.sample_names()
    shard_names = config.shard_names()
    tenant_names = config.tenant_names()
    K, S, T = len(sample_names), len(shard_names), len(tenant_names)
    E, F = config.events, config.fanout_queries

    ring = HashRing(seed=config.seed, vnodes=config.vnodes, shards=shard_names)
    shard_index = {name: index for index, name in enumerate(shard_names)}
    place_idx = np.array(
        [shard_index[ring.place(name)] for name in sample_names], dtype=np.int64
    )

    rng = numpy_generator(RandomSource(config.seed).spawn("model").seed)

    # -- pre-draw the base stream -----------------------------------------
    base_arrival = np.cumsum(rng.exponential(config.mean_gap_seconds, E))
    base_sample = rng.integers(0, K, E)
    base_is_ingest = rng.random(E) < config.ingest_fraction
    base_service = rng.exponential(1.0, E) * np.where(
        base_is_ingest,
        config.model_ingest_service_seconds,
        config.model_read_service_seconds,
    )
    base_tenant = base_sample % T

    # -- pre-draw the fan-out stream and its sub-queries -------------------
    fan_arrival = np.cumsum(rng.exponential(config.fanout_mean_gap_seconds, F))
    low, high = config.fanout_width
    high = min(high, K)
    low = min(low, high)
    fan_width = low + rng.integers(0, high - low + 1, F)
    fan_tenant = rng.integers(0, T, F)
    # Distinct samples per query: draw with replacement, sort each row
    # with a sentinel K past the width, keep first-of-run uniques.  The
    # effective width (distinct samples) is what the report counts.
    mat = rng.integers(0, K, (F, high if F else 1))
    col_mask = np.arange(mat.shape[1])[None, :] < fan_width[:, None]
    sorted_rows = np.sort(np.where(col_mask, mat, K), axis=1)
    uniq = np.ones_like(sorted_rows, dtype=bool)
    uniq[:, 1:] = np.diff(sorted_rows, axis=1) != 0
    uniq &= sorted_rows < K
    sub_sample = sorted_rows[uniq]
    eff_width = uniq.sum(axis=1)
    sub_fid = np.repeat(np.arange(F), eff_width)
    sub_service = rng.exponential(config.model_read_service_seconds, sub_sample.size)

    # -- front door: per-tenant token buckets ------------------------------
    quotas = TenantQuotas(parse_quotas(config.quotas), instrumentation=obs)
    if quotas.enabled:
        base_admit, fan_admit = _quota_gate(
            quotas,
            tenant_names,
            base_arrival,
            base_tenant,
            base_is_ingest,
            fan_arrival,
            fan_tenant,
        )
    else:
        base_admit = np.ones(E, dtype=bool)
        fan_admit = np.ones(F, dtype=bool)
    fanout_front_shed = int(F - int(fan_admit.sum()))

    # -- unified op table, global (time, seq) order ------------------------
    sub_keep = fan_admit[sub_fid] if F else np.zeros(0, dtype=bool)
    op_arrival = np.concatenate(
        (base_arrival[base_admit], fan_arrival[sub_fid[sub_keep]])
    )
    op_service = np.concatenate(
        (base_service[base_admit], sub_service[sub_keep])
    )
    op_shard = np.concatenate(
        (
            place_idx[base_sample[base_admit]],
            place_idx[sub_sample[sub_keep]],
        )
    )
    op_is_ingest = np.concatenate(
        (base_is_ingest[base_admit], np.zeros(int(sub_keep.sum()), dtype=bool))
    )
    op_fid = np.concatenate(
        (
            np.full(int(base_admit.sum()), -1, dtype=np.int64),
            sub_fid[sub_keep],
        )
    )
    # Sub-query seqs start above every base and fan-out seq -- the same
    # tie-break convention as the full engine's router.
    op_seq = np.concatenate(
        (
            np.flatnonzero(base_admit),
            E + F + np.flatnonzero(sub_keep),
        )
    )
    order = np.lexsort((op_seq, op_arrival))
    op_arrival = op_arrival[order]
    op_service = op_service[order]
    op_shard = op_shard[order]
    op_is_ingest = op_is_ingest[order]
    op_fid = op_fid[order]

    # -- per-shard single-server queueing (exact vector recursion) ---------
    op_completion = np.zeros(op_arrival.size)
    shard_sections: dict[str, dict] = {}
    makespan = 0.0
    busy_total = 0.0
    for s, shard in enumerate(shard_names):
        mask = op_shard == s
        arrival = op_arrival[mask]
        service = op_service[mask]
        cum = np.cumsum(service)
        completion = (
            np.maximum.accumulate(arrival - (cum - service)) + cum
            if arrival.size
            else cum
        )
        op_completion[mask] = completion
        clock = float(completion[-1]) if completion.size else 0.0
        busy = float(service.sum())
        makespan = max(makespan, clock)
        busy_total += busy
        latency = completion - arrival
        shard_sections[shard] = {
            "ops": int(arrival.size),
            "queries": int((~op_is_ingest[mask]).sum()),
            "ingest": int(op_is_ingest[mask].sum()),
            "owned_samples": int((place_idx == s).sum()),
            "busy_seconds": _round(busy),
            "clock_seconds": _round(clock),
            "utilization": _round(busy / clock) if clock > 0 else 0.0,
            "latency": _dist(latency),
        }

    # -- fan-out merge: straggler attribution + analytic hedging -----------
    sub_rows = op_fid >= 0
    sfid = op_fid[sub_rows]
    s_shard = op_shard[sub_rows]
    s_svc = op_service[sub_rows]
    s_lat = op_completion[sub_rows] - op_arrival[sub_rows]
    multiplier = config.hedge_multiplier
    hedges_issued = hedges_won = 0
    hedge_saved = 0.0
    straggler_count = np.zeros(S, dtype=np.int64)
    straggler_seconds = np.zeros(S)
    if sfid.size:
        by_lat = np.lexsort((-s_shard, s_lat, sfid))
        sorted_fid = sfid[by_lat]
        starts = np.flatnonzero(
            np.concatenate(([True], np.diff(sorted_fid) != 0))
        )
        ends = np.concatenate((starts[1:], [sorted_fid.size])) - 1
        counts = ends - starts + 1
        present_fid = sorted_fid[starts]
        raw_max = s_lat[by_lat][ends]
        # Among max-latency ties the smallest shard index sorts last
        # (shard key is descending), so `ends` names the straggler.
        straggler_of = s_shard[by_lat][ends]
        np.add.at(straggler_count, straggler_of, 1)
        np.add.at(straggler_seconds, straggler_of, raw_max)
        effective = raw_max
        if multiplier > 0:
            median_lat = s_lat[by_lat][starts + (counts - 1) // 2]
            by_svc = np.lexsort((s_svc, sfid))
            median_svc = s_svc[by_svc][starts + (counts - 1) // 2]
            deadline_by_fid = np.zeros(F)
            cap_by_fid = np.zeros(F)
            hedgeable = np.zeros(F, dtype=bool)
            deadline_by_fid[present_fid] = multiplier * median_lat
            cap_by_fid[present_fid] = multiplier * median_lat + median_svc
            hedgeable[present_fid] = counts >= 2
            issued = hedgeable[sfid] & (s_lat > deadline_by_fid[sfid])
            hedged_lat = np.where(
                issued, np.minimum(s_lat, cap_by_fid[sfid]), s_lat
            )
            hedges_issued = int(issued.sum())
            hedges_won = int((issued & (hedged_lat < s_lat)).sum())
            eff_by_fid = np.zeros(F)
            np.maximum.at(eff_by_fid, sfid, hedged_lat)
            effective = eff_by_fid[present_fid]
            hedge_saved = float((raw_max - effective).sum())
        fan_latency = _dist(effective, p99=True)
        width_values = eff_width[fan_admit].astype(float) if F else np.zeros(0)
    else:
        fan_latency = {"count": 0}
        width_values = np.zeros(0)

    if obs is not None:
        obs.gauge("fleet.shards").set(S)
        obs.counter("fleet.fanout_queries").inc(F)
        obs.counter("fleet.fanout_subqueries").inc(int(sfid.size))
        if hedges_issued:
            obs.counter("fleet.hedges_issued").inc(hedges_issued)
            obs.counter("fleet.hedges_won").inc(hedges_won)

    base_reads = base_admit & ~base_is_ingest
    base_read_latency = (
        op_completion[op_fid == -1][~op_is_ingest[op_fid == -1]]
        - op_arrival[op_fid == -1][~op_is_ingest[op_fid == -1]]
    )

    fanout_section = {
        "queries": F,
        "front_door_shed": fanout_front_shed,
        "dispatched": int(fan_admit.sum()),
        "answered": int(fan_admit.sum()),
        "partial": 0,
        "unresolved": 0,
        "widths": _dist(width_values),
        "latency": fan_latency,
        "straggler": {
            shard: {
                "count": int(straggler_count[s]),
                "seconds": _round(float(straggler_seconds[s])),
            }
            for s, shard in enumerate(shard_names)
        },
        "hedge": {
            "enabled": multiplier > 0,
            "multiplier": multiplier,
            "issued": hedges_issued,
            "won": hedges_won,
            "saved_seconds": _round(hedge_saved),
        },
    }
    fleet_section = {
        "shards": S,
        "samples": K,
        "tenants": T,
        "ops": int(op_arrival.size),
        "queries_answered": int(base_reads.sum()),
        "ingest_batches": int((base_admit & base_is_ingest).sum()),
        "fanout_subqueries": int(sfid.size),
        "makespan_seconds": _round(makespan),
        "busy_seconds": _round(busy_total),
        "utilization_mean": _round(busy_total / (makespan * S))
        if makespan > 0
        else 0.0,
        "base_read_latency": _dist(base_read_latency, p99=True),
    }
    return {
        "engine": "model",
        "ring": ring_section(ring, sample_names),
        "quota": quotas.stats(),
        "fanout": fanout_section,
        "fleet": fleet_section,
        "shards": shard_sections,
    }
