"""One-call fleet simulation: config, engine dispatch, canonical report.

``run_fleet_simulation(FleetConfig(...))`` is the fleet analogue of
:func:`repro.serve.sim.run_simulation`: one frozen config in, one
canonical byte-stable report out.  Two engines sit behind it:

* **full** (:class:`~repro.fleet.router.FleetRouter`) -- real per-shard
  catalogs and deterministic schedulers; every sub-query actually runs.
  This is the engine the 1-shard-invisibility property pins against
  ``serve-sim``, and the default at small scale.
* **model** (:mod:`repro.fleet.model`) -- a vectorised queueing model
  (numpy pre-draws + exact per-shard busy-server recursions) that scales
  the same placement, quota and straggler semantics to tens of shards,
  10k+ samples and millions of simulated queries in seconds.

``engine="auto"`` picks **full** while the event volume is small enough
to execute for real and **model** beyond that, so one CLI covers both
the property-test regime and the fleet-scale sweep.  Reports always
carry an ``engine`` field -- the two engines' numbers are *not*
comparable to each other, only runs of the same engine are.

The ``FleetConfig`` deliberately embeds a verbatim copy of every
:class:`~repro.serve.sim.SimConfig` knob (``serve_config()`` returns the
mirrored value): the base single-sample workload and per-sample seeds
are shared bit-for-bit with ``serve-sim``, which is what makes the N=1
fleet invisible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.serve.sim import SimConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.api import Instrumentation

__all__ = ["FleetConfig", "FleetReport", "run_fleet_simulation", "ENGINES"]

ENGINES = ("auto", "full", "model")

#: ``engine="auto"`` runs the full engine up to this many workload
#: events (base + fan-out) and this many samples; beyond either bound it
#: switches to the vectorised model.
AUTO_FULL_MAX_EVENTS = 5_000
AUTO_FULL_MAX_SAMPLES = 512


@dataclass(frozen=True)
class FleetConfig:
    """Everything a fleet simulation depends on, in one value.

    The first block mirrors :class:`~repro.serve.sim.SimConfig` field for
    field; the second block is fleet-only.  ``seed`` feeds the same two
    serve streams (per-sample, ``workload``) plus fleet-owned children
    (``fanout``, ``model``) -- all decorrelated by spawn label.
    """

    # -- serve-mirrored knobs (see SimConfig for semantics) ----------------
    seed: int = 0
    samples: int = 8
    sample_size: int = 256
    initial_dataset_size: int | None = None
    algorithm: str = "stack"
    events: int = 200
    mean_gap_seconds: float = 0.05
    ingest_fraction: float = 0.5
    batch_range: tuple[int, int] = (64, 512)
    staleness_bound: int = 256
    policy: str = "longest-log:64"
    max_queue_depth: int | None = None
    max_wait_seconds: float | None = None
    overload_action: str = "shed"
    confidence: float = 0.95
    pool_capacity: int = 0
    pool_readahead: int = 8
    slos: tuple[str, ...] = ()
    timeseries_interval: float = 0.0
    replica: bool = False
    replica_lag_budget: float = 0.0
    #: per-sample kind specs, round-robin over the *global* sample index
    #: (placement-independent, so a sample keeps its kind wherever the
    #: ring puts it); () = all uniform.  Kinds require the full engine.
    kinds: tuple[str, ...] = ()

    # -- fleet-only knobs --------------------------------------------------
    #: shard count; shard names are "shard00", "shard01", ...
    shards: int = 4
    #: virtual nodes per shard on the placement ring
    vnodes: int = 64
    #: tenant count; a sample's tenant is its index modulo this
    tenants: int = 4
    #: front-door quota specs, ``tenant:kind:rate:burst`` (tenant ``*``
    #: declares a per-tenant default); empty = no quota gate
    quotas: tuple[str, ...] = ()
    #: cross-shard fan-out queries (0 = none; base workload untouched)
    fanout_queries: int = 0
    fanout_mean_gap_seconds: float = 0.2
    #: samples per fan-out query, uniform in this range (clipped to catalog)
    fanout_width: tuple[int, int] = (2, 8)
    #: hedged re-read accounting: a sub-query slower than multiplier x the
    #: query's median sub-latency is counted hedged and its latency capped
    #: analytically (0 = off; never perturbs shard schedules)
    hedge_multiplier: float = 0.0
    #: "auto" | "full" | "model" (see module docstring)
    engine: str = "auto"
    #: model-engine service-time means, cost seconds per op (the model
    #: draws exponential service times; the full engine measures real ones)
    model_read_service_seconds: float = 0.004
    model_ingest_service_seconds: float = 0.012

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.samples < 1:
            raise ValueError("samples must be at least 1")
        if self.tenants < 1:
            raise ValueError("tenants must be at least 1")
        if self.fanout_queries < 0:
            raise ValueError("fanout_queries must be non-negative")
        if self.hedge_multiplier < 0:
            raise ValueError("hedge_multiplier must be non-negative")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.kinds and any(k.partition(":")[0] != "uniform" for k in self.kinds):
            if self.engine == "model":
                raise ValueError(
                    "non-uniform sample kinds require the full engine "
                    "(the vectorised model only models uniform reservoirs)"
                )

    def sample_names(self) -> list[str]:
        # Identical format to SimConfig.sample_names -- shared names are
        # part of the bit-identity contract with serve-sim.
        return [f"s{index:02d}" for index in range(self.samples)]

    def shard_names(self) -> list[str]:
        return [f"shard{index:02d}" for index in range(self.shards)]

    def tenant_names(self) -> list[str]:
        return [f"tenant{index:02d}" for index in range(self.tenants)]

    @property
    def run_id(self) -> str:
        return f"{self.seed:08x}"

    def serve_config(self) -> SimConfig:
        """The serve-sim config this fleet config embeds, verbatim."""
        return SimConfig(
            seed=self.seed,
            samples=self.samples,
            sample_size=self.sample_size,
            initial_dataset_size=self.initial_dataset_size,
            algorithm=self.algorithm,
            events=self.events,
            mean_gap_seconds=self.mean_gap_seconds,
            ingest_fraction=self.ingest_fraction,
            batch_range=self.batch_range,
            staleness_bound=self.staleness_bound,
            policy=self.policy,
            max_queue_depth=self.max_queue_depth,
            max_wait_seconds=self.max_wait_seconds,
            overload_action=self.overload_action,
            confidence=self.confidence,
            pool_capacity=self.pool_capacity,
            pool_readahead=self.pool_readahead,
            slos=self.slos,
            timeseries_interval=self.timeseries_interval,
            replica=self.replica,
            replica_lag_budget=self.replica_lag_budget,
            kinds=self.kinds,
        )

    def kind_for(self, index: int) -> str:
        """The kind spec of the index-th sample (global round-robin)."""
        if not self.kinds:
            return "uniform"
        return self.kinds[index % len(self.kinds)]

    def has_non_uniform_kinds(self) -> bool:
        return any(k.partition(":")[0] != "uniform" for k in self.kinds)

    def resolve_engine(self) -> str:
        if self.engine != "auto":
            return self.engine
        if self.has_non_uniform_kinds():
            # The model engine has no kind semantics; kinds pin "auto"
            # to the full engine regardless of scale.
            return "full"
        if (
            self.events + self.fanout_queries <= AUTO_FULL_MAX_EVENTS
            and self.samples <= AUTO_FULL_MAX_SAMPLES
        ):
            return "full"
        return "model"


@dataclass
class FleetReport:
    """Canonical outcome of one fleet run; ``to_json`` is byte-stable."""

    engine: str
    config: dict
    ring: dict
    quota: dict
    fanout: dict
    fleet: dict
    shards: dict = field(default_factory=dict)

    def to_dict(self, include_trace: bool = True) -> dict:
        shards = self.shards
        if not include_trace:
            shards = {
                name: {k: v for k, v in report.items() if k != "trace"}
                for name, report in shards.items()
            }
        return {
            "engine": self.engine,
            "config": dict(self.config),
            "ring": dict(self.ring),
            "quota": dict(self.quota),
            "fanout": dict(self.fanout),
            "fleet": dict(self.fleet),
            "shards": shards,
        }

    def to_json(self, include_trace: bool = True, indent: int = 2) -> str:
        return json.dumps(
            self.to_dict(include_trace=include_trace),
            sort_keys=True,
            indent=indent,
        )


def _config_echo(config: FleetConfig, engine: str) -> dict:
    echo = {
        "seed": config.seed,
        "shards": config.shards,
        "samples": config.samples,
        "tenants": config.tenants,
        "events": config.events,
        "fanout_queries": config.fanout_queries,
        "vnodes": config.vnodes,
        "algorithm": config.algorithm,
        "policy": config.policy,
        "hedge_multiplier": config.hedge_multiplier,
        "engine": engine,
    }
    if config.kinds:
        # Only echoed when configured, so kind-less reports keep their
        # pre-kind bytes.
        echo["kinds"] = list(config.kinds)
    return echo


def run_fleet_simulation(
    config: FleetConfig,
    instrumentation: "Instrumentation | None" = None,
    include_trace: bool = True,
) -> FleetReport:
    """Run one fleet simulation to completion under the resolved engine."""
    engine = config.resolve_engine()
    if engine == "full":
        from repro.fleet.router import FleetRouter

        sections = FleetRouter(config, instrumentation=instrumentation).run(
            include_trace=include_trace
        )
    else:
        from repro.fleet.model import run_model_simulation

        sections = run_model_simulation(config, instrumentation=instrumentation)
    return FleetReport(
        engine=engine,
        config=_config_echo(config, engine),
        ring=sections["ring"],
        quota=sections["quota"],
        fanout=sections["fanout"],
        fleet=sections["fleet"],
        shards=sections["shards"],
    )
