"""Seeded cross-shard fan-out queries.

A fan-out query names *several* samples and wants one merged aggregate
-- the shape a tenant dashboard or group-by produces.  The router
decomposes it into per-shard sub-queries; this module only generates the
arrival stream, from its own ``spawn("fanout")`` child of the fleet
seed, so the base single-sample workload (shared bit-for-bit with
``serve-sim``) is never perturbed by fan-out knobs.

Fan-out aggregates are restricted to ``count`` and ``sum``: those merge
by addition across shards, so the fleet-level answer is exact.
``fraction`` is a ratio and would need count-weighted merging -- callers
who want it issue count and sum fan-outs and divide at the edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.rng.random_source import RandomSource
from repro.serve.session import Freshness

__all__ = ["FanoutQuery", "FANOUT_AGGREGATES", "fanout_workload"]

FANOUT_AGGREGATES = ("count", "sum")  # additive across shards


@dataclass(frozen=True)
class FanoutQuery:
    """One timestamped multi-sample aggregate from one tenant."""

    time: float  # arrival time, cost-model seconds
    seq: int  # global arrival order (after every base event's seq)
    tenant: str
    samples: tuple[str, ...]  # distinct sample names, canonical order
    freshness: Freshness
    aggregate: str  # "count" | "sum"
    threshold: int  # predicate: value >= threshold

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("fan-out query needs at least one sample")
        if len(set(self.samples)) != len(self.samples):
            raise ValueError("fan-out samples must be distinct")
        if self.aggregate not in FANOUT_AGGREGATES:
            raise ValueError(
                f"fan-out aggregate must be one of {FANOUT_AGGREGATES}, "
                f"got {self.aggregate!r}"
            )

    @property
    def width(self) -> int:
        return len(self.samples)


def fanout_workload(
    rng: RandomSource,
    names: Sequence[str],
    tenants: Sequence[str],
    queries: int,
    mean_gap_seconds: float = 0.2,
    width_range: tuple[int, int] = (2, 8),
    value_range: int = 1 << 30,
    staleness_bound: int = 256,
    seq_base: int = 0,
    freshness_weights: tuple[tuple[str, int], ...] = (
        ("serve_stale", 2),
        ("bounded_staleness", 1),
        ("refresh_on_read", 1),
    ),
) -> list[FanoutQuery]:
    """Generate the fan-out arrival stream from one seeded RNG.

    Widths are uniform in ``width_range`` (clipped to the catalog size);
    each query picks that many *distinct* samples by partial
    Fisher-Yates, then canonicalises them in name order.  Seqs start at
    ``seq_base`` so fan-out events sort strictly after same-time base
    events and per-shard heaps never compare two payloads.
    """
    if not names:
        raise ValueError("need at least one sample name")
    if not tenants:
        raise ValueError("need at least one tenant")
    if queries < 0:
        raise ValueError("queries must be non-negative")
    low, high = width_range
    if not 1 <= low <= high:
        raise ValueError(f"bad width_range {width_range}")
    high = min(high, len(names))
    low = min(low, high)
    modes: list[str] = []
    for mode, weight in freshness_weights:
        modes.extend([mode] * weight)
    pool = list(names)
    out: list[FanoutQuery] = []
    clock = 0.0
    for index in range(queries):
        clock += -mean_gap_seconds * math.log(1.0 - rng.random())
        width = low + rng.randrange(high - low + 1)
        # Partial Fisher-Yates: exactly `width` draws, distinct samples.
        for i in range(width):
            j = i + rng.randrange(len(pool) - i)
            pool[i], pool[j] = pool[j], pool[i]
        samples = tuple(sorted(pool[:width]))
        tenant = tenants[rng.randrange(len(tenants))]
        mode = modes[rng.randrange(len(modes))]
        if mode == "bounded_staleness":
            freshness = Freshness.bounded(staleness_bound)
        else:
            freshness = Freshness(mode)
        aggregate = FANOUT_AGGREGATES[index % len(FANOUT_AGGREGATES)]
        threshold = rng.randrange(value_range // 2)
        out.append(
            FanoutQuery(
                time=clock,
                seq=seq_base + index,
                tenant=tenant,
                samples=samples,
                freshness=freshness,
                aggregate=aggregate,
                threshold=threshold,
            )
        )
    return out
