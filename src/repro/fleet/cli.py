"""The ``repro fleet-sim`` subcommand: run one sharded fleet simulation.

Prints a fleet summary (placement balance, quota sheds, fan-out widths
and straggler tail) and can write the full canonical JSON report to a
file.  Same seed, same bytes -- the CI fleet-smoke step runs the model
engine twice at 16 shards / 10k samples / 1M+ events and ``cmp``\\ s the
two reports.

Self-contained on the pattern of :mod:`repro.serve.cli`: the main CLI
calls :func:`add_fleet_sim_parser` at parser-build time and
:func:`run_fleet_sim_command` on dispatch; the fleet stack is imported
lazily so ``repro --help`` stays fast.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["add_fleet_sim_parser", "run_fleet_sim_command"]


def add_fleet_sim_parser(sub) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "fleet-sim",
        help="simulate the sharded fleet catalog (deterministic)",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--shards", type=int, default=4, help="shard count")
    parser.add_argument(
        "--samples", type=int, default=8, help="catalog size across the fleet"
    )
    parser.add_argument(
        "--sample-size", type=int, default=256, help="elements per sample (M)"
    )
    parser.add_argument(
        "--events",
        type=int,
        default=200,
        help="base workload events (ingest + single-sample queries)",
    )
    parser.add_argument(
        "--fanout",
        type=int,
        default=0,
        help="cross-shard fan-out queries (0 = none)",
    )
    parser.add_argument(
        "--fanout-width",
        default="2:8",
        metavar="LOW:HIGH",
        help="samples per fan-out query, uniform in this range",
    )
    parser.add_argument(
        "--tenants", type=int, default=4, help="tenant count (samples rotate)"
    )
    parser.add_argument(
        "--quota",
        action="append",
        default=[],
        metavar="SPEC",
        help=(
            "front-door quota tenant:kind:rate:burst (kind reads|ingest; "
            "tenant * = per-tenant default; repeatable)"
        ),
    )
    parser.add_argument(
        "--hedge",
        type=float,
        default=0.0,
        metavar="MULT",
        help=(
            "hedged re-read accounting: cap sub-queries slower than MULT x "
            "the query's median sub-latency (0 = off)"
        ),
    )
    parser.add_argument(
        "--vnodes",
        type=int,
        default=64,
        help="virtual nodes per shard on the placement ring",
    )
    parser.add_argument(
        "--engine",
        default="auto",
        choices=("auto", "full", "model"),
        help="auto picks full at small scale, the vectorised model beyond",
    )
    parser.add_argument(
        "--mean-gap",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="mean arrival gap of the base workload (cost seconds)",
    )
    parser.add_argument(
        "--algorithm",
        default="stack",
        choices=("array", "stack", "nomem", "naive"),
        help="deferred refresh algorithm for every sample (full engine)",
    )
    parser.add_argument(
        "--kinds",
        default="",
        help="comma-separated sample-kind specs (uniform, weighted[:MOD], "
        "window), round-robin over the global sample index (full engine; "
        "needs --algorithm naive or array)",
    )
    parser.add_argument(
        "--policy",
        default="longest-log:64",
        help="per-shard refresh scheduling policy (full engine)",
    )
    parser.add_argument(
        "--ingest-fraction",
        type=float,
        default=0.5,
        help="fraction of base events that are ingest batches",
    )
    parser.add_argument(
        "--staleness-bound",
        type=int,
        default=256,
        help="k used by bounded_staleness queries",
    )
    parser.add_argument(
        "--pool-capacity",
        type=int,
        default=0,
        help="page-cache frames per shard device (full engine; 0 = off)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the full canonical JSON report to PATH",
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help="omit per-shard traces from the JSON report (full engine)",
    )
    return parser


def _parse_width(text: str) -> tuple[int, int]:
    low, _, high = text.partition(":")
    try:
        return (int(low), int(high or low))
    except ValueError:
        raise ValueError(
            f"bad --fanout-width {text!r}, want LOW:HIGH"
        ) from None


def run_fleet_sim_command(args: argparse.Namespace) -> int:
    from repro.fleet.quota import parse_quotas
    from repro.fleet.sim import FleetConfig, run_fleet_simulation
    from repro.obs.api import Instrumentation
    from repro.storage.cost_model import CostModel

    try:
        parse_quotas(args.quota)  # surface bad specs before the run starts
        config = FleetConfig(
            seed=args.seed,
            shards=args.shards,
            samples=args.samples,
            sample_size=args.sample_size,
            events=args.events,
            mean_gap_seconds=args.mean_gap,
            fanout_queries=args.fanout,
            fanout_width=_parse_width(args.fanout_width),
            tenants=args.tenants,
            quotas=tuple(args.quota),
            hedge_multiplier=args.hedge,
            vnodes=args.vnodes,
            engine=args.engine,
            algorithm=args.algorithm,
            policy=args.policy,
            ingest_fraction=args.ingest_fraction,
            staleness_bound=args.staleness_bound,
            pool_capacity=args.pool_capacity,
            kinds=tuple(
                spec.strip() for spec in args.kinds.split(",") if spec.strip()
            ),
        )
    except ValueError as exc:
        print(f"fleet-sim: {exc}", file=sys.stderr)
        return 2
    instrumentation = Instrumentation(cost_model=CostModel())
    report = run_fleet_simulation(
        config,
        instrumentation=instrumentation,
        include_trace=not args.no_trace,
    )

    print(
        f"fleet-sim  seed={config.seed}  engine={report.engine}  "
        f"shards={config.shards}  samples={config.samples}"
    )
    balance = report.ring["balance"]
    probe = report.ring["rebalance_probe"]
    print(
        f"  placement: min={balance['min']} max={balance['max']} "
        f"mean={balance['mean']:.1f} per shard  "
        f"(+1 shard would move {probe['moved']}/{probe['moved'] + probe['stayed']})"
    )
    quota = report.quota
    if quota.get("enabled"):
        print(
            f"  quota: admitted={quota['total_admitted']} "
            f"shed={quota['total_shed']} across {len(quota['tenants'])} tenants"
        )
    fleet = report.fleet
    print(
        f"  fleet: makespan={fleet['makespan_seconds']:.6f} cost-s  "
        f"queries={fleet['queries_answered']}  "
        f"ingest={fleet['ingest_batches']}"
    )
    fanout = report.fanout
    if fanout["queries"]:
        latency = fanout["latency"]
        print(
            f"  fan-out: {fanout['queries']} queries "
            f"(dispatched={fanout['dispatched']} "
            f"front-door shed={fanout['front_door_shed']} "
            f"answered={fanout['answered']} partial={fanout['partial']} "
            f"unresolved={fanout['unresolved']})"
        )
        if latency.get("count"):
            print(
                "  fan-out latency (cost-s): "
                f"p50={latency['p50']:.6f}  p95={latency['p95']:.6f}  "
                f"p99={latency['p99']:.6f}  max={latency['max']:.6f}"
            )
        stragglers = sorted(
            fanout["straggler"].items(),
            key=lambda item: (-item[1]["count"], item[0]),
        )[:3]
        slowest = ", ".join(
            f"{shard}x{entry['count']}" for shard, entry in stragglers if entry["count"]
        )
        if slowest:
            print(f"  stragglers: {slowest}")
        hedge = fanout["hedge"]
        if hedge["enabled"]:
            print(
                f"  hedges: issued={hedge['issued']} won={hedge['won']} "
                f"saved={hedge['saved_seconds']:.6f} cost-s"
            )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json(include_trace=not args.no_trace))
            handle.write("\n")
        print(f"  report written to {args.json}")
    return 0
