"""The fleet router: placement, quota gating, fan-out, straggler merge.

:class:`FleetRouter` is the **full-fidelity** fleet engine: it really
builds one :class:`~repro.serve.catalog.SampleCatalog` plus
:class:`~repro.serve.scheduler.DeterministicScheduler` per shard (each
with its own cost model -- shards are independent devices whose clocks
all start at the same global t=0), places every sample with the seeded
hash ring, gates arrivals through per-tenant quotas, decomposes fan-out
queries into per-shard sub-queries, and merges sub-answers on the global
cost clock with slowest-shard (straggler) attribution and optional
hedged-re-read accounting.

Two properties anchor the design (both property-tested):

* **a 1-shard fleet is invisible** -- with fan-out and quotas off, shard
  ``shard00`` receives the exact base workload and a catalog built with
  byte-identical per-sample seeds in the same order as
  :func:`repro.serve.sim.build_catalog`, so its per-shard report is
  bit-identical to a plain ``serve-sim`` run of the mirrored config;
* **placement stability** -- adding a shard moves only ~K/N of K placed
  samples, every one of them onto the new shard.

Sub-query bookkeeping: every fan-out sub-query carries a globally unique
sequence number above every base and fan-out seq, so no shard heap ever
compares two event payloads, and the merge finds each sub-answer in its
shard's trace by that seq.  A sub-query deferred by shard-level
admission control is re-queued under a fresh seq the router cannot
predict; such fan-outs are counted ``unresolved`` rather than guessed
at (their sub-answer still appears in the shard trace).

Hedge accounting is **analytic**: with ``hedge_multiplier`` m > 0, a
sub-query whose latency exceeds m x the query's median sub-latency
counts as hedged, and its effective latency is capped at the hedge
deadline plus the query's median service time -- the completion a
re-read issued at the deadline would plausibly achieve.  It models the
tail-cutting of hedged requests without perturbing any shard schedule,
so hedging on/off never changes a shard report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.api import maybe_span
from repro.rng.random_source import RandomSource
from repro.serve.admission import AdmissionController
from repro.serve.catalog import SampleCatalog
from repro.serve.scheduler import DeterministicScheduler, make_scheduling_policy
from repro.serve.session import QuerySession
from repro.serve.workload import WorkloadEvent, synthetic_workload
from repro.obs.slo import SLOTracker, parse_slos
from repro.obs.timeseries import TimeSeriesStore
from repro.fleet.quota import TenantQuotas, parse_quotas
from repro.fleet.ring import HashRing, rebalance_plan
from repro.fleet.workload import fanout_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.sim import FleetConfig
    from repro.obs.api import Instrumentation

__all__ = ["FleetRouter", "latency_distribution", "ring_section"]


def _round(value: float) -> float:
    # Same canonical quantum as the serve trace: 1 ns of cost time.
    return round(value, 9)


def latency_distribution(values: list[float]) -> dict:
    """Nearest-rank distribution with the tail point fan-out cares about.

    Like the serve report's distribution but with ``p99`` -- straggler
    analysis lives in the tail, and p95 of a max-of-width merge hides it.
    """
    if not values:
        return {"count": 0}
    ordered = sorted(values)
    n = len(ordered)
    return {
        "count": n,
        "mean": _round(sum(ordered) / n),
        "p50": _round(ordered[(50 * (n - 1)) // 100]),
        "p95": _round(ordered[(95 * (n - 1)) // 100]),
        "p99": _round(ordered[(99 * (n - 1)) // 100]),
        "max": _round(ordered[-1]),
    }


def ring_section(ring: HashRing, sample_names: list[str]) -> dict:
    """The report's ``ring`` section: histogram, balance, rebalance probe.

    The probe adds a hypothetical next shard and records how many of the
    placed samples would move -- the ~K/N disruption bound, surfaced in
    every report so drift in the ring is immediately visible.
    """
    histogram = ring.histogram(sample_names)
    counts = sorted(histogram.values())
    n = len(counts)
    probe_name = f"shard{len(ring):02d}"
    plan = rebalance_plan(ring, ring.spawn(add=probe_name), sample_names)
    return {
        "shards": len(ring),
        "vnodes": ring.vnodes,
        "histogram": histogram,
        "balance": {
            "min": counts[0] if counts else 0,
            "max": counts[-1] if counts else 0,
            "mean": _round(sum(counts) / n) if n else 0.0,
        },
        "rebalance_probe": {
            "added": probe_name,
            "moved": plan.moved,
            "stayed": plan.stayed,
        },
    }


class FleetRouter:
    """Runs one full-fidelity fleet simulation from a :class:`FleetConfig`.

    Shard-internal components run uninstrumented (each shard would need
    its own registry and clock to share one facade); the router's own
    ``fleet.*`` metrics and spans cover the new surface.  The returned
    value is the report's section dict -- :mod:`repro.fleet.sim` wraps it
    in a :class:`~repro.fleet.sim.FleetReport`.
    """

    def __init__(
        self,
        config: "FleetConfig",
        instrumentation: "Instrumentation | None" = None,
    ) -> None:
        self._config = config
        self._instr = instrumentation
        if instrumentation is not None:
            self._c_fanout = instrumentation.counter("fleet.fanout_queries")
            self._c_subs = instrumentation.counter("fleet.fanout_subqueries")
            self._c_hedge_issued = instrumentation.counter("fleet.hedges_issued")
            self._c_hedge_won = instrumentation.counter("fleet.hedges_won")
            self._h_straggler = instrumentation.histogram(
                "fleet.straggler_latency_seconds"
            )
            self._g_shards = instrumentation.gauge("fleet.shards")

    # -- construction ------------------------------------------------------

    def _build_shard_catalog(
        self, owned: list[tuple[str, int, str]]
    ) -> SampleCatalog:
        """One shard's catalog: its own cost model, samples in global order.

        ``owned`` carries (name, seed, kind) triples whose seeds were
        drawn from the *global* root in global name order, and whose
        kinds follow the global sample index -- so a sample's content
        and scheme never depend on which shard it landed on.
        """
        config = self._config
        replication = None
        if config.replica:
            from repro.replication.link import ReplicationLink

            replication = ReplicationLink(lag_budget=config.replica_lag_budget)
        catalog = SampleCatalog(
            pool_capacity=config.pool_capacity,
            pool_readahead=config.pool_readahead,
            replication=replication,
        )
        for name, seed, kind in owned:
            catalog.create(
                name,
                sample_size=config.sample_size,
                initial_dataset_size=config.initial_dataset_size,
                algorithm=config.algorithm,
                seed=seed,
                kind=kind,
            )
        return catalog

    def _build_shard_scheduler(self, catalog: SampleCatalog) -> DeterministicScheduler:
        """Mirror :func:`repro.serve.sim.run_simulation`'s wiring per shard."""
        config = self._config
        interval = config.timeseries_interval
        return DeterministicScheduler(
            catalog,
            policy=make_scheduling_policy(config.policy),
            admission=AdmissionController(
                max_queue_depth=config.max_queue_depth,
                max_wait_seconds=config.max_wait_seconds,
                overload_action=config.overload_action,
            ),
            session=QuerySession(catalog, confidence=config.confidence),
            slos=SLOTracker(
                parse_slos(list(config.slos)), window_interval=interval
            ),
            timeseries=TimeSeriesStore(interval) if interval > 0 else None,
        )

    # -- the run -----------------------------------------------------------

    def run(self, include_trace: bool = True) -> dict:
        config = self._config
        obs = self._instr
        shard_names = config.shard_names()
        sample_names = config.sample_names()
        tenant_names = config.tenant_names()
        if obs is not None:
            self._g_shards.set(len(shard_names))

        with maybe_span(
            obs, "fleet.place", shards=len(shard_names), samples=len(sample_names)
        ):
            ring = HashRing(
                seed=config.seed, vnodes=config.vnodes, shards=shard_names
            )
            placement = ring.placement(sample_names)

        # Per-sample seeds from one global root, spawned in global name
        # order -- byte-identical to serve's build_catalog, and placement-
        # independent (moving a sample never changes its content).  Kinds
        # follow the global sample index for the same reason.
        root = RandomSource(config.seed)
        sample_seeds = [
            (name, root.spawn(name).seed, config.kind_for(index))
            for index, name in enumerate(sample_names)
        ]
        owned: dict[str, list[tuple[str, int, str]]] = {
            name: [] for name in shard_names
        }
        for name, seed, kind in sample_seeds:
            owned[placement[name]].append((name, seed, kind))

        catalogs = {
            shard: self._build_shard_catalog(owned[shard])
            for shard in shard_names
        }

        # Tenancy is a deterministic function of the sample index, so the
        # same tenant owns a sample in every engine and every layout.
        tenant_of = {
            name: tenant_names[index % len(tenant_names)]
            for index, name in enumerate(sample_names)
        }
        quotas = TenantQuotas(parse_quotas(config.quotas), instrumentation=obs)

        # Base workload: bit-identical to serve-sim's (same child stream,
        # same global name list).  Fan-out draws from its own child so
        # enabling it never perturbs the base stream.
        base_events = synthetic_workload(
            RandomSource(config.seed).spawn("workload"),
            sample_names,
            config.events,
            mean_gap_seconds=config.mean_gap_seconds,
            ingest_fraction=config.ingest_fraction,
            batch_range=config.batch_range,
            staleness_bound=config.staleness_bound,
        )
        fanouts = []
        if config.fanout_queries > 0:
            fanouts = fanout_workload(
                RandomSource(config.seed).spawn("fanout"),
                sample_names,
                tenant_names,
                config.fanout_queries,
                mean_gap_seconds=config.fanout_mean_gap_seconds,
                width_range=config.fanout_width,
                staleness_bound=config.staleness_bound,
                seq_base=config.events,
            )

        # -- front door: quota gate + routing, in global arrival order ----
        shard_events: dict[str, list[WorkloadEvent]] = {
            shard: [] for shard in shard_names
        }
        # (fanout, [(shard, seq), ...]) for every dispatched fan-out; the
        # sub seqs start above every base and fan-out seq so no shard
        # heap ever holds a (time, seq) tie.
        dispatched: list[tuple] = []
        fanout_front_shed = 0
        next_sub_seq = config.events + config.fanout_queries
        gate = quotas.enabled

        arrivals: list[tuple[float, int, object]] = [
            (event.time, event.seq, event) for event in base_events
        ]
        arrivals.extend((query.time, query.seq, query) for query in fanouts)
        arrivals.sort(key=lambda item: (item[0], item[1]))

        for _, _, item in arrivals:
            if isinstance(item, WorkloadEvent):
                if gate:
                    kind = "ingest" if item.kind == "ingest" else "reads"
                    decision = quotas.check(tenant_of[item.sample], kind, item.time)
                    if not decision.admitted:
                        continue  # shed at the front door: no shard sees it
                shard_events[placement[item.sample]].append(item)
            else:
                if obs is not None:
                    self._c_fanout.inc()
                if gate:
                    decision = quotas.check(item.tenant, "reads", item.time)
                    if not decision.admitted:
                        fanout_front_shed += 1
                        continue
                subs: list[tuple[str, int]] = []
                for sample in item.samples:
                    sub = WorkloadEvent(
                        time=item.time,
                        seq=next_sub_seq,
                        kind="query",
                        sample=sample,
                        freshness=item.freshness,
                        aggregate=item.aggregate,
                        threshold=item.threshold,
                    )
                    next_sub_seq += 1
                    shard = placement[sample]
                    shard_events[shard].append(sub)
                    subs.append((shard, sub.seq))
                    if obs is not None:
                        self._c_subs.inc()
                dispatched.append((item, subs))

        # -- per-shard runs (independent devices, shared t=0) --------------
        shard_reports: dict[str, dict] = {}
        for shard in shard_names:
            catalog = catalogs[shard]
            scheduler = self._build_shard_scheduler(catalog)
            with maybe_span(
                obs, "fleet.shard_run", shard=shard, events=len(shard_events[shard])
            ):
                report = scheduler.run(shard_events[shard])
            shard_reports[shard] = report.to_dict(include_trace=include_trace)
            if not include_trace:
                # The merge below still needs the trace; keep it aside.
                shard_reports[shard]["_trace"] = report.trace

        fanout = self._merge_fanouts(
            dispatched, shard_reports, fanout_front_shed, len(fanouts)
        )
        for shard in shard_names:
            shard_reports[shard].pop("_trace", None)

        fleet = self._rollup(shard_reports, catalogs)
        return {
            "engine": "full",
            "ring": ring_section(ring, sample_names),
            "quota": quotas.stats(),
            "fanout": fanout,
            "fleet": fleet,
            "shards": shard_reports,
        }

    # -- fan-out merge -----------------------------------------------------

    def _merge_fanouts(
        self,
        dispatched: list[tuple],
        shard_reports: dict[str, dict],
        front_shed: int,
        total: int,
    ) -> dict:
        config = self._config
        obs = self._instr
        by_seq: dict[str, dict[int, dict]] = {}
        for shard, report in shard_reports.items():
            trace = report.get("trace")
            if trace is None:
                trace = report.get("_trace", [])
            by_seq[shard] = {
                entry["seq"]: entry for entry in trace if "seq" in entry
            }

        latencies: list[float] = []
        widths: list[float] = []
        straggler: dict[str, dict] = {
            shard: {"count": 0, "seconds": 0.0} for shard in shard_reports
        }
        answered = partial = unresolved = 0
        hedges_issued = hedges_won = 0
        hedge_saved = 0.0
        multiplier = config.hedge_multiplier

        for query, subs in dispatched:
            with maybe_span(
                obs,
                "fleet.fanout",
                seq=query.seq,
                tenant=query.tenant,
                width=query.width,
                aggregate=query.aggregate,
            ) as span:
                completions: list[tuple[float, float, str]] = []
                shed = deferred = 0
                for shard, seq in subs:
                    entry = by_seq[shard].get(seq)
                    if entry is None or entry["kind"] == "defer":
                        deferred += 1
                    elif entry["kind"] == "shed":
                        shed += 1
                    else:
                        completions.append(
                            (
                                entry["start"] + entry["service"],
                                entry["service"],
                                shard,
                            )
                        )
                if deferred:
                    unresolved += 1
                    status = "unresolved"
                elif shed:
                    partial += 1
                    status = "partial"
                else:
                    answered += 1
                    status = "answered"
                if span is not None:
                    span.set("status", status)
                if status != "answered":
                    continue

                widths.append(float(len(subs)))
                arrival = query.time
                sub_latencies = [done - arrival for done, _, _ in completions]
                raw = max(sub_latencies)
                slowest = min(
                    shard
                    for (done, _, shard), lat in zip(completions, sub_latencies)
                    if lat == raw
                )
                straggler[slowest]["count"] += 1
                straggler[slowest]["seconds"] += raw

                effective = raw
                if multiplier > 0 and len(completions) >= 2:
                    ordered = sorted(sub_latencies)
                    median = ordered[(len(ordered) - 1) // 2]
                    services = sorted(svc for _, svc, _ in completions)
                    median_service = services[(len(services) - 1) // 2]
                    deadline = multiplier * median
                    capped = []
                    for lat in sub_latencies:
                        if lat > deadline:
                            hedges_issued += 1
                            hedged = min(lat, deadline + median_service)
                            if hedged < lat:
                                hedges_won += 1
                            capped.append(hedged)
                        else:
                            capped.append(lat)
                    effective = max(capped)
                    hedge_saved += raw - effective
                latencies.append(effective)
                if span is not None:
                    span.set("latency", _round(effective))
                    span.set("straggler", slowest)
                if obs is not None:
                    self._h_straggler.observe(raw)

        if obs is not None and hedges_issued:
            self._c_hedge_issued.inc(hedges_issued)
            self._c_hedge_won.inc(hedges_won)

        return {
            "queries": total,
            "front_door_shed": front_shed,
            "dispatched": len(dispatched),
            "answered": answered,
            "partial": partial,
            "unresolved": unresolved,
            "widths": latency_distribution(widths),
            "latency": latency_distribution(latencies),
            "straggler": {
                shard: {
                    "count": entry["count"],
                    "seconds": _round(entry["seconds"]),
                }
                for shard, entry in sorted(straggler.items())
            },
            "hedge": {
                "enabled": multiplier > 0,
                "multiplier": multiplier,
                "issued": hedges_issued,
                "won": hedges_won,
                "saved_seconds": _round(hedge_saved),
            },
        }

    # -- fleet rollup ------------------------------------------------------

    def _rollup(
        self, shard_reports: dict[str, dict], catalogs: dict[str, SampleCatalog]
    ) -> dict:
        totals = {
            "queries_answered": 0,
            "queries_shed": 0,
            "queries_deferred": 0,
            "ingest_batches": 0,
            "elements_ingested": 0,
            "refresh_jobs": 0,
            "forced_refreshes": 0,
        }
        makespan = 0.0
        device_accesses = 0
        for report in shard_reports.values():
            for key in totals:
                totals[key] += report[key]
            makespan = max(makespan, report["clock_seconds"])
            device_accesses += sum(report["device"].values())
        totals["shards"] = len(shard_reports)
        totals["samples"] = sum(len(c.names()) for c in catalogs.values())
        totals["makespan_seconds"] = _round(makespan)
        totals["device_accesses"] = device_accesses
        return totals
