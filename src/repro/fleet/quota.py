"""Per-tenant admission quotas at the fleet front door.

The per-shard :class:`~repro.serve.admission.AdmissionController`
protects a *device* from backlog; it is blind to who is asking.  A
multi-tenant fleet also needs fairness between tenants -- one tenant's
ingest storm must not starve another's reads.  This module supplies the
standard mechanism: one **token bucket per (tenant, kind)**, refilled on
the cost clock, checked before a request ever reaches a shard.

A bucket with rate ``r`` and burst ``b`` accumulates ``r`` tokens per
cost-model second up to a ceiling of ``b``; each admitted request spends
one token, and a request arriving to an empty bucket is **shed** at the
front door (it never touches a shard, so it costs no device time and
does not perturb per-shard schedules).  Refill arithmetic runs entirely
on workload arrival times, so two same-seed runs shed exactly the same
requests -- quota decisions are part of the determinism contract.

Specs parse from ``tenant:kind:rate:burst`` strings (kind is ``reads``
or ``ingest``); the tenant ``*`` declares a default applied to any
tenant without an explicit spec.  A kind with no bucket is unlimited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.serve.admission import AdmissionDecision

__all__ = ["QuotaSpec", "TenantQuotas", "parse_quotas"]

KINDS = ("reads", "ingest")

DEFAULT_TENANT = "*"


@dataclass(frozen=True)
class QuotaSpec:
    """One token bucket declaration: ``tenant:kind:rate:burst``."""

    tenant: str
    kind: str  # "reads" | "ingest"
    rate: float  # tokens per cost-model second
    burst: float  # bucket ceiling, tokens

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("quota tenant must be non-empty")
        if self.kind not in KINDS:
            raise ValueError(f"quota kind must be one of {KINDS}, got {self.kind!r}")
        if self.rate < 0:
            raise ValueError("quota rate must be non-negative")
        if self.burst < 1:
            raise ValueError("quota burst must be at least 1 token")

    @classmethod
    def parse(cls, text: str) -> "QuotaSpec":
        parts = text.split(":")
        if len(parts) != 4:
            raise ValueError(
                f"bad quota spec {text!r}: expected tenant:kind:rate:burst"
            )
        tenant, kind, rate, burst = parts
        try:
            return cls(
                tenant=tenant, kind=kind, rate=float(rate), burst=float(burst)
            )
        except ValueError as exc:
            raise ValueError(f"bad quota spec {text!r}: {exc}") from exc


def parse_quotas(specs: Iterable[str]) -> tuple[QuotaSpec, ...]:
    """Parse a repeatable ``--quota`` flag into specs (order preserved)."""
    return tuple(QuotaSpec.parse(text) for text in specs)


class _Bucket:
    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst  # buckets start full: cold tenants get burst
        self.updated = 0.0

    def take(self, now: float) -> bool:
        if now > self.updated:
            self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
            self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class TenantQuotas:
    """Front-door token buckets for every tenant, clocked in cost seconds.

    The ``*`` tenant's specs are templates: the first request from a
    tenant with no explicit spec materialises private buckets from them
    (buckets are never shared across tenants, so the default still
    isolates tenants from each other).
    """

    def __init__(
        self,
        specs: Iterable[QuotaSpec] = (),
        instrumentation=None,
    ) -> None:
        self._templates: dict[str, QuotaSpec] = {}
        self._buckets: dict[tuple[str, str], _Bucket] = {}
        self._admitted: dict[tuple[str, str], int] = {}
        self._shed: dict[tuple[str, str], int] = {}
        self._tenants: set[str] = set()
        for spec in specs:
            if spec.tenant == DEFAULT_TENANT:
                self._templates[spec.kind] = spec
            else:
                self._buckets[(spec.tenant, spec.kind)] = _Bucket(
                    spec.rate, spec.burst
                )
                self._tenants.add(spec.tenant)
        self._instr = instrumentation
        if instrumentation is not None:
            self._c_admitted = instrumentation.counter("fleet.quota_admitted")
            self._c_shed = instrumentation.counter("fleet.quota_shed")
        else:
            self._c_admitted = None
            self._c_shed = None

    @property
    def enabled(self) -> bool:
        return bool(self._buckets) or bool(self._templates)

    def _bucket(self, tenant: str, kind: str) -> _Bucket | None:
        bucket = self._buckets.get((tenant, kind))
        if bucket is None:
            template = self._templates.get(kind)
            if template is None:
                return None
            bucket = _Bucket(template.rate, template.burst)
            self._buckets[(tenant, kind)] = bucket
        return bucket

    def check(self, tenant: str, kind: str, now: float) -> AdmissionDecision:
        """Spend one token for ``tenant``'s request of ``kind`` at ``now``.

        Returns an admit decision when the bucket has a token (or no
        bucket governs the kind), a shed decision otherwise.  The
        decision reuses the shard layer's vocabulary so callers can
        treat front-door and device-level sheds uniformly.
        """
        if kind not in KINDS:
            raise ValueError(f"quota kind must be one of {KINDS}, got {kind!r}")
        self._tenants.add(tenant)
        key = (tenant, kind)
        bucket = self._bucket(tenant, kind)
        if bucket is None or bucket.take(now):
            self._admitted[key] = self._admitted.get(key, 0) + 1
            if self._c_admitted is not None:
                self._c_admitted.inc()
            return AdmissionDecision("admit", 0.0, 0)
        self._shed[key] = self._shed.get(key, 0) + 1
        if self._c_shed is not None:
            self._c_shed.inc()
            self._instr.emit(
                "fleet.quota_shed_event", tenant=tenant, kind=kind, time=now
            )
        return AdmissionDecision("shed", 0.0, 0)

    def shed_count(self, tenant: str | None = None) -> int:
        if tenant is None:
            return sum(self._shed.values())
        return sum(
            count for (who, _), count in self._shed.items() if who == tenant
        )

    def stats(self) -> dict:
        """Byte-stable per-tenant admit/shed counts (sorted keys)."""
        tenants: dict[str, dict] = {}
        for tenant in sorted(self._tenants):
            entry: dict[str, dict[str, int]] = {}
            for kind in KINDS:
                key = (tenant, kind)
                entry[kind] = {
                    "admitted": self._admitted.get(key, 0),
                    "shed": self._shed.get(key, 0),
                }
            tenants[tenant] = entry
        return {
            "enabled": self.enabled,
            "tenants": tenants,
            "total_shed": sum(self._shed.values()),
            "total_admitted": sum(self._admitted.values()),
        }
