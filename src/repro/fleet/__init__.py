"""Sharded fleet catalog: consistent-hash placement and fan-out serving.

One :class:`~repro.serve.scheduler.DeterministicScheduler` over a single
simulated device is the serving layer's ceiling.  This package models a
*sharded* deployment of that stack -- N shards, each owning its own
device group, buffer pool, :class:`~repro.serve.catalog.SampleCatalog`
and scheduler -- glued together by three fleet-level mechanisms:

* **placement** (:mod:`repro.fleet.ring`): samples land on shards via a
  seeded virtual-node consistent-hash ring with deterministic rebalance
  plans (adding a shard moves only ~K/N samples, all of them *to* the
  new shard);
* **tenant quotas** (:mod:`repro.fleet.quota`): per-tenant token buckets
  on the cost clock gate both ingest and reads at the fleet front door,
  layered on the per-shard
  :class:`~repro.serve.admission.AdmissionController`;
* **fan-out queries** (:mod:`repro.fleet.router`): multi-sample
  aggregates decompose into per-shard sub-queries, merge on the global
  cost clock, and attribute latency to the slowest shard (straggler
  accounting).

Everything is byte-identical from a seed, and a 1-shard fleet is
*invisible*: its per-shard report is bit-identical to a plain
``serve-sim`` run of the same configuration (property-tested).  The
``repro fleet-sim`` CLI drives either the **full** engine (real catalogs
and schedulers) or the vectorised **model** engine that scales to tens
of shards, 10k+ samples and millions of simulated queries.  See
``docs/fleet.md``.
"""

from repro.fleet.quota import QuotaSpec, TenantQuotas, parse_quotas
from repro.fleet.ring import HashRing, RebalancePlan, rebalance_plan
from repro.fleet.router import FleetRouter
from repro.fleet.sim import FleetConfig, FleetReport, run_fleet_simulation
from repro.fleet.workload import FanoutQuery, fanout_workload

__all__ = [
    "HashRing",
    "RebalancePlan",
    "rebalance_plan",
    "QuotaSpec",
    "TenantQuotas",
    "parse_quotas",
    "FanoutQuery",
    "fanout_workload",
    "FleetRouter",
    "FleetConfig",
    "FleetReport",
    "run_fleet_simulation",
]
