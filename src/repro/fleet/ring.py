"""Seeded consistent-hash ring with virtual nodes.

Placement is the fleet's first invariant: which shard owns a sample must
be a pure function of ``(seed, shard set, sample name)`` -- never of
insertion order, process hash randomisation or dict iteration.  The ring
hashes every shard to ``vnodes`` positions on a 64-bit circle (blake2b,
keyed by the seed; :pep:`456` hash randomisation never touches it) and
places a key on the first virtual node at or after the key's own
position, wrapping at the top.

Virtual nodes give the two classical properties the fleet relies on:

* **balance** -- with ``vnodes`` per shard the expected load imbalance
  shrinks like ``1/sqrt(vnodes)``, so 64 virtual nodes keep the largest
  shard within a few percent of the mean at fleet scale;
* **minimal disruption** -- adding a shard claims only the arc segments
  its new virtual nodes cut, so only ~K/N of K placed keys move, and
  every one of them moves *to* the new shard (removal is the mirror
  image).  :func:`rebalance_plan` turns that into an explicit,
  deterministic move list the operator (or a test) can inspect.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["HashRing", "RebalancePlan", "rebalance_plan"]

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _hash64(seed: int, token: str) -> int:
    """64-bit position of ``token`` on the seeded ring.

    blake2b keyed by the seed: deterministic across processes and
    platforms (unlike built-in ``hash``), and changing the seed re-deals
    every position, so distinct fleets get independent layouts.
    """
    digest = hashlib.blake2b(
        token.encode("utf-8"),
        digest_size=8,
        key=(seed & _MASK64).to_bytes(8, "little"),
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class RebalancePlan:
    """The deterministic key-move list between two ring layouts.

    ``moves`` is sorted by key; ``stayed`` counts keys whose owner is
    unchanged.  For a plan produced by adding one shard, every move's
    destination is the new shard (the consistent-hashing guarantee --
    asserted by the placement-stability property test).
    """

    moves: tuple[tuple[str, str, str], ...]  # (key, source, destination)
    stayed: int

    @property
    def moved(self) -> int:
        return len(self.moves)

    @property
    def total(self) -> int:
        return self.moved + self.stayed

    def destinations(self) -> set[str]:
        return {dst for _, _, dst in self.moves}

    def sources(self) -> set[str]:
        return {src for _, src, _ in self.moves}

    def to_dict(self) -> dict:
        return {
            "moved": self.moved,
            "stayed": self.stayed,
            "moves": [list(move) for move in self.moves],
        }


class HashRing:
    """Seeded virtual-node hash ring mapping keys to shard names."""

    def __init__(
        self,
        seed: int = 0,
        vnodes: int = 64,
        shards: Iterable[str] = (),
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self._seed = seed
        self._vnodes = vnodes
        # Sorted parallel arrays of virtual-node positions and owners.
        # Ties on position (astronomically rare at 64 bits) break by
        # shard name via the tuple sort, deterministically.
        self._points: list[int] = []
        self._owners: list[str] = []
        self._shards: list[str] = []
        for shard in shards:
            self.add(shard)

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def vnodes(self) -> int:
        return self._vnodes

    def shards(self) -> list[str]:
        """Registered shard names, in registration order."""
        return list(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def _positions(self, shard: str) -> list[int]:
        return [
            _hash64(self._seed, f"vnode:{shard}:{index}")
            for index in range(self._vnodes)
        ]

    def add(self, shard: str) -> None:
        """Register a shard: ``vnodes`` new points claim their arcs."""
        if not shard:
            raise ValueError("shard name must be non-empty")
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} already on the ring")
        merged = sorted(
            zip(self._points, self._owners),
            key=lambda pair: pair,
        )
        for position in self._positions(shard):
            merged.append((position, shard))
        merged.sort()
        self._points = [position for position, _ in merged]
        self._owners = [owner for _, owner in merged]
        self._shards.append(shard)

    def remove(self, shard: str) -> None:
        """Drop a shard; its arcs fall to the next points on the ring."""
        if shard not in self._shards:
            raise ValueError(f"no shard {shard!r} on the ring")
        kept = [
            (position, owner)
            for position, owner in zip(self._points, self._owners)
            if owner != shard
        ]
        self._points = [position for position, _ in kept]
        self._owners = [owner for _, owner in kept]
        self._shards.remove(shard)

    def place(self, key: str) -> str:
        """The shard owning ``key``: first virtual node at or after it."""
        if not self._shards:
            raise ValueError("cannot place on an empty ring")
        position = _hash64(self._seed, f"key:{key}")
        index = bisect_left(self._points, position)
        if index == len(self._points):
            index = 0  # wrap past the top of the circle
        return self._owners[index]

    def placement(self, keys: Sequence[str]) -> dict[str, str]:
        """Key -> owning shard, in the order keys are given."""
        return {key: self.place(key) for key in keys}

    def histogram(self, keys: Sequence[str]) -> dict[str, int]:
        """Keys per shard, every registered shard present (possibly 0)."""
        counts = {shard: 0 for shard in sorted(self._shards)}
        for key in keys:
            counts[self.place(key)] += 1
        return counts

    def arc_fractions(self) -> dict[str, float]:
        """Fraction of the 64-bit circle each shard owns (sums to 1)."""
        if not self._points:
            return {}
        fractions = {shard: 0 for shard in self._shards}
        span = 1 << 64
        previous = self._points[-1] - span  # the wrap-around arc
        for position, owner in zip(self._points, self._owners):
            fractions[owner] += position - previous
            previous = position
        return {
            shard: fractions[shard] / span for shard in sorted(self._shards)
        }

    def spawn(self, *, add: str | None = None, drop: str | None = None) -> "HashRing":
        """A new ring with one shard added or removed (same seed/vnodes)."""
        shards = list(self._shards)
        if drop is not None:
            if drop not in shards:
                raise ValueError(f"no shard {drop!r} on the ring")
            shards.remove(drop)
        other = HashRing(seed=self._seed, vnodes=self._vnodes, shards=shards)
        if add is not None:
            other.add(add)
        return other


def rebalance_plan(
    before: HashRing, after: HashRing, keys: Sequence[str]
) -> RebalancePlan:
    """The deterministic move list taking ``keys`` from one layout to another.

    Both rings must share a seed (otherwise every placement is re-dealt
    and the plan is meaningless); the move list is sorted by key so two
    runs produce byte-identical plans.
    """
    if before.seed != after.seed:
        raise ValueError(
            f"rings are differently seeded ({before.seed} vs {after.seed}); "
            "a rebalance plan only makes sense within one layout family"
        )
    moves: list[tuple[str, str, str]] = []
    stayed = 0
    for key in sorted(set(keys)):
        source = before.place(key)
        destination = after.place(key)
        if source == destination:
            stayed += 1
        else:
            moves.append((key, source, destination))
    return RebalancePlan(moves=tuple(moves), stayed=stayed)
