"""The serving catalog: named samples with durable manifests.

A sample server multiplexes many samples (the paper's fleet argument:
one sample per table, group or materialized view).  The catalog owns
that fleet: it creates each sample's on-disk structures (sample file,
candidate log, superblock), registers the maintainer with a shared
:class:`~repro.core.multi.MultiSampleManager`, and persists each
sample's **manifest** -- its complete resumable maintenance state -- as a
:class:`~repro.storage.superblock.MaintenanceCheckpoint` in a
torn-write-tolerant :class:`~repro.storage.superblock.DualSlotCheckpointStore`.

Recovery (:meth:`SampleCatalog.reopen`) rebuilds a maintainer from the
newest valid checkpoint over the surviving devices; because checkpoints
carry the full PRNG state, a recovered sample resumes maintenance
*bit-identically* to a run that never crashed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.kinds import SampleKind, make_kind, parse_kind_spec
from repro.core.maintenance import SampleMaintainer
from repro.core.multi import MultiSampleManager
from repro.core.policies import ManualPolicy, RefreshPolicy
from repro.core.refresh.array import ArrayRefresh
from repro.core.refresh.naive import NaiveCandidateRefresh
from repro.core.refresh.nomem import NomemRefresh
from repro.core.refresh.stack import StackRefresh
from repro.core.reservoir import build_reservoir
from repro.rng.random_source import RandomSource
from repro.storage.block_device import BlockDevice, SimulatedBlockDevice
from repro.storage.bufferpool import BufferPool
from repro.storage.cost_model import CostModel
from repro.storage.fault_injection import CrashBudget, FaultInjectionDevice
from repro.storage.files import LogFile, SampleFile
from repro.storage.group_commit import GroupCommitBarrier
from repro.storage.records import IntRecordCodec, RecordCodec
from repro.storage.replicated import clone_image
from repro.storage.superblock import DualSlotCheckpointStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.api import Instrumentation
    from repro.replication.link import ReplicationLink

__all__ = ["CatalogEntry", "SampleCatalog", "ALGORITHMS", "KIND_ALGORITHMS"]

#: Refresh-algorithm factories the catalog can instantiate by name.
ALGORITHMS: dict[str, Callable[[], object]] = {
    "array": ArrayRefresh,
    "stack": StackRefresh,
    "nomem": NomemRefresh,
    "naive": NaiveCandidateRefresh,
}

#: The subset whose refresh can drive a non-uniform sample kind (their
#: victim choice comes from the kind's replay; Stack/Nomem encode the
#: uniform victim distribution in their data structures).
KIND_ALGORITHMS = ("naive", "array")


@dataclass
class CatalogEntry:
    """One catalogued sample: its maintainer, devices and manifest store.

    The devices are kept here (not just the files over them) because they
    are what survives a simulated crash -- recovery builds fresh files
    over the same devices.  Any :class:`BlockDevice` works: the catalog
    wraps its simulated devices in a :class:`BufferPool` when a page
    cache is configured (a pool's frames are RAM and do *not* survive a
    crash -- recovery tests invalidate them first).
    """

    name: str
    algorithm: str
    policy: RefreshPolicy
    codec: RecordCodec
    maintainer: SampleMaintainer
    sample: SampleFile
    log: LogFile
    store: DualSlotCheckpointStore
    sample_device: BlockDevice
    log_device: BlockDevice
    meta_device: BlockDevice
    #: one commit point spanning the three devices above; refresh commits
    #: run through it flush-only, manifest saves seal -- so, when the
    #: catalog is replicated, every sealed batch is a checkpoint boundary
    commit_group: GroupCommitBarrier | None = None
    #: canonical sample-kind spec (``"uniform"``, ``"weighted"``,
    #: ``"weighted:MOD"``, ``"window"``) and, for non-uniform kinds, the
    #: live kind instance the maintainer and query session share
    kind: str = "uniform"
    kind_obj: SampleKind | None = None


class SampleCatalog:
    """Named, durable, queryable samples over one shared cost model."""

    def __init__(
        self,
        cost_model: CostModel | None = None,
        instrumentation: "Instrumentation | None" = None,
        pool_capacity: int = 0,
        pool_readahead: int = 8,
        replication: "ReplicationLink | None" = None,
        crash_budget: CrashBudget | None = None,
        torn_writes: bool = False,
    ) -> None:
        if pool_capacity < 0:
            raise ValueError("pool_capacity must be non-negative")
        self._cost_model = cost_model if cost_model is not None else CostModel()
        self._instr = instrumentation
        self._pool_capacity = pool_capacity
        self._pool_readahead = pool_readahead
        self._pools: list[BufferPool] = []
        self._replication = replication
        self._crash_budget = crash_budget
        self._torn_writes = torn_writes
        self._manager = MultiSampleManager(self._cost_model)
        self._entries: dict[str, CatalogEntry] = {}
        if instrumentation is not None:
            self._g_samples = instrumentation.gauge("serve.catalog_samples")

    # -- introspection -------------------------------------------------------

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    @property
    def manager(self) -> MultiSampleManager:
        return self._manager

    @property
    def pool_capacity(self) -> int:
        return self._pool_capacity

    @property
    def replication(self) -> "ReplicationLink | None":
        """The replication link shipping this catalog's commits, if any."""
        return self._replication

    def pool_stats(self) -> dict:
        """Aggregate page-cache counters across every per-sample pool.

        Serves the ``pool`` section of the serve report; all-zero (with
        ``enabled: false``) when the catalog runs without a page cache,
        so report comparisons can simply drop this section.
        """
        totals = {
            "enabled": self._pool_capacity > 0,
            "capacity": self._pool_capacity,
            "pools": len(self._pools),
            "hits": 0,
            "misses": 0,
            "readahead_blocks": 0,
            "evictions": 0,
            "flushed_blocks": 0,
            "coalesced_writes": 0,
            "flush_barriers": 0,
        }
        for pool in self._pools:
            stats = pool.stats
            totals["hits"] += stats.hits
            totals["misses"] += stats.misses
            totals["readahead_blocks"] += stats.readahead_blocks
            totals["evictions"] += stats.evictions
            totals["flushed_blocks"] += stats.flushed_blocks
            totals["coalesced_writes"] += stats.coalesced_writes
            totals["flush_barriers"] += stats.flush_barriers
        charged = totals["hits"] + totals["misses"]
        totals["hit_rate"] = round(totals["hits"] / charged, 6) if charged else 0.0
        return totals

    def _make_device(self, name: str) -> BlockDevice:
        """One simulated device, decorated per the catalog's configuration.

        Stack, inside out: simulated device, replication capture, fault
        injection, buffer pool.  The fault layer sits *outside* the
        replication capture so a crashed write is neither durable nor
        recorded for shipping, and the pool sits on top so cached frames
        are RAM that a crash loses (see ``docs/replication.md``).
        """
        device: BlockDevice = SimulatedBlockDevice(
            self._cost_model, name=name, instrumentation=self._instr
        )
        if self._replication is not None:
            device = self._replication.attach(device, name=name)
        if self._crash_budget is not None:
            device = FaultInjectionDevice(
                device,
                instrumentation=self._instr,
                torn_writes=self._torn_writes,
                crash_budget=self._crash_budget,
            )
        if self._pool_capacity > 0:
            pool = BufferPool(
                device,
                capacity=self._pool_capacity,
                readahead=self._pool_readahead,
                instrumentation=self._instr,
                name=name,
            )
            self._pools.append(pool)
            return pool
        return device

    def _make_commit_group(self, *devices: BlockDevice) -> GroupCommitBarrier:
        """One barrier spanning a sample's devices (sample, log, manifest)."""
        return GroupCommitBarrier(
            devices,
            link=self._replication,
            fault_budget=self._crash_budget,
            instrumentation=self._instr,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> list[str]:
        return list(self._entries)

    def get(self, name: str) -> SampleMaintainer:
        return self._manager.get(name)

    def entry(self, name: str) -> CatalogEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(f"no catalogued sample named {name!r}") from None

    def pending(self) -> dict[str, int]:
        """Per-sample staleness: pending log elements, in catalog order."""
        return self._manager.pending_log_elements()

    # -- lifecycle -----------------------------------------------------------

    def create(
        self,
        name: str,
        sample_size: int,
        initial_dataset_size: int | None = None,
        algorithm: str = "stack",
        seed: int = 0,
        policy: RefreshPolicy | None = None,
        record_size: int = 32,
        value_range: int = 1 << 30,
        kind: str = "uniform",
    ) -> CatalogEntry:
        """Create a sample: build the initial reservoir, persist a manifest.

        The initial dataset (default ``4 * sample_size`` uniform integers
        in ``[0, value_range)``) is drawn from the sample's own seeded
        RNG, which then continues as the maintenance RNG -- so the whole
        lifetime of the sample is one deterministic stream.

        ``kind`` selects the sampling scheme (see
        :mod:`repro.core.kinds`): ``"uniform"`` (the default) takes the
        pre-kind code path untouched; ``"weighted"``/``"weighted:MOD"``
        and ``"window"`` build their initial sample with the kind's eager
        rule over the *same* initial draws and restrict ``algorithm`` to
        the kind-capable refreshes (``naive``/``array``).
        """
        if name in self._entries:
            raise ValueError(f"sample {name!r} already catalogued")
        if initial_dataset_size is None:
            initial_dataset_size = 4 * sample_size
        if initial_dataset_size < sample_size:
            raise ValueError(
                f"initial dataset ({initial_dataset_size}) must be at least "
                f"the sample size ({sample_size})"
            )
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {tuple(ALGORITHMS)}, got {algorithm!r}"
            )
        kind_name, _ = parse_kind_spec(kind)
        kind_obj: SampleKind | None = None
        if kind_name != "uniform":
            if algorithm not in KIND_ALGORITHMS:
                raise ValueError(
                    f"kind {kind!r} requires a kind-capable refresh algorithm "
                    f"{KIND_ALGORITHMS}, got {algorithm!r}"
                )
            kind_obj = make_kind(kind, sample_size)
        rng = RandomSource(seed)
        codec: RecordCodec = (
            kind_obj.codec(record_size)
            if kind_obj is not None
            else IntRecordCodec(record_size)
        )
        sample_device = self._make_device(f"{name}.sample")
        log_device = self._make_device(f"{name}.log")
        meta_device = self._make_device(f"{name}.meta")
        initial = [rng.randrange(value_range) for _ in range(initial_dataset_size)]
        if kind_obj is not None:
            rows = kind_obj.build_initial(initial, rng)
            seen = kind_obj.seen
        else:
            rows, seen = build_reservoir(initial, sample_size, rng)
        sample = SampleFile(sample_device, codec, sample_size)
        sample.initialize(rows)
        log = LogFile(log_device, codec)
        refresh_policy = policy if policy is not None else ManualPolicy()
        commit_group = self._make_commit_group(
            sample_device, log_device, meta_device
        )
        maintainer = SampleMaintainer(
            sample,
            rng,
            strategy="candidate",
            initial_dataset_size=seen,
            log=log,
            algorithm=ALGORITHMS[algorithm](),
            policy=refresh_policy,
            cost_model=self._cost_model,
            instrumentation=self._instr,
            commit_group=commit_group,
            kind=kind_obj,
        )
        store = DualSlotCheckpointStore(meta_device, commit_barrier=commit_group)
        entry = CatalogEntry(
            name=name,
            algorithm=algorithm,
            policy=refresh_policy,
            codec=codec,
            maintainer=maintainer,
            sample=sample,
            log=log,
            store=store,
            sample_device=sample_device,
            log_device=log_device,
            meta_device=meta_device,
            commit_group=commit_group,
            kind=kind_obj.spec() if kind_obj is not None else "uniform",
            kind_obj=kind_obj,
        )
        self._manager.add(name, maintainer)
        self._entries[name] = entry
        # Persist the birth manifest immediately: a catalogued sample is
        # recoverable from the moment create() returns.
        store.save(maintainer.checkpoint_state())
        if self._instr is not None:
            self._g_samples.set(len(self._entries))
            if kind_obj is not None:
                self._instr.emit(
                    "serve.sample_created",
                    sample=name,
                    algorithm=algorithm,
                    sample_size=sample_size,
                    dataset_size=seen,
                    kind=entry.kind,
                )
            else:
                self._instr.emit(
                    "serve.sample_created",
                    sample=name,
                    algorithm=algorithm,
                    sample_size=sample_size,
                    dataset_size=seen,
                )
        return entry

    def checkpoint(self, name: str) -> None:
        """Persist the named sample's manifest (one random superblock write)."""
        entry = self.entry(name)
        entry.store.save(entry.maintainer.checkpoint_state())

    def checkpoint_all(self) -> None:
        for name in self._entries:
            self.checkpoint(name)

    def reopen(self, name: str) -> SampleMaintainer:
        """Recover the named sample from its newest valid manifest.

        Builds fresh file objects over the surviving devices, restores
        the maintainer from the checkpoint (exact PRNG state included)
        and swaps it into the fleet.  Raises
        :class:`~repro.storage.superblock.CheckpointError` when neither
        manifest slot validates.
        """
        entry = self.entry(name)
        checkpoint = entry.store.load()
        # A fresh kind instance per reopen: its stale state (dataset size,
        # acceptance threshold) comes from the manifest, never from the
        # in-memory object the crashed maintainer was mutating.
        kind_obj: SampleKind | None = None
        if entry.kind != "uniform":
            kind_obj = make_kind(entry.kind, checkpoint.sample_size)
        sample = SampleFile(entry.sample_device, entry.codec, checkpoint.sample_size)
        log = LogFile(entry.log_device, entry.codec)
        maintainer = SampleMaintainer.from_checkpoint(
            checkpoint,
            sample,
            log=log,
            algorithm=ALGORITHMS[entry.algorithm](),
            policy=entry.policy,
            cost_model=self._cost_model,
            instrumentation=self._instr,
            commit_group=entry.commit_group,
            kind=kind_obj,
        )
        entry.maintainer = maintainer
        entry.sample = sample
        entry.log = log
        entry.kind_obj = kind_obj
        self._manager.replace(name, maintainer)
        if self._instr is not None:
            self._instr.emit(
                "serve.sample_reopened",
                sample=name,
                dataset_size=checkpoint.dataset_size,
                pending_log_elements=checkpoint.log_count,
            )
        return maintainer

    def reopen_all(self) -> None:
        for name in self._entries:
            self.reopen(name)

    def adopt(
        self,
        name: str,
        images: dict[str, dict[int, bytes]],
        algorithm: str = "stack",
        policy: RefreshPolicy | None = None,
        record_size: int = 32,
    ) -> CatalogEntry:
        """Adopt a sample from replica device images (disaster recovery).

        ``images`` maps the device roles ``sample``/``log``/``meta`` to
        ``block -> bytes`` maps (see
        :func:`repro.storage.device_image`).  The images are cloned onto
        fresh devices without charging I/O -- they already paid their
        cost on the replica -- then the sample is brought up exactly like
        :meth:`reopen`: load the newest valid manifest, rebuild the
        files, restore the maintainer bit-exactly.  Raises
        :class:`~repro.storage.superblock.CheckpointError` (adopting
        nothing) when the manifest image has no loadable slot.
        """
        if name in self._entries:
            raise ValueError(f"sample {name!r} already catalogued")
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {tuple(ALGORITHMS)}, got {algorithm!r}"
            )
        sample_device = self._make_device(f"{name}.sample")
        log_device = self._make_device(f"{name}.log")
        meta_device = self._make_device(f"{name}.meta")
        for device, role in (
            (sample_device, "sample"),
            (log_device, "log"),
            (meta_device, "meta"),
        ):
            clone_image(device, images.get(role, {}))
        commit_group = self._make_commit_group(
            sample_device, log_device, meta_device
        )
        store = DualSlotCheckpointStore(meta_device, commit_barrier=commit_group)
        checkpoint = store.load()
        # The manifest is the source of truth for the sample's kind: the
        # adopted images may come from a catalog whose configuration is
        # long gone, so kind name and parameters are read back from the
        # checkpoint, not passed in.
        kind_obj: SampleKind | None = None
        kind_spec = "uniform"
        if checkpoint.kind_name != "uniform":
            if checkpoint.kind_name == "weighted":
                kind_spec = f"{checkpoint.kind_name}:{checkpoint.kind_param}"
            else:
                kind_spec = checkpoint.kind_name
            kind_obj = make_kind(kind_spec, checkpoint.sample_size)
            kind_spec = kind_obj.spec()
            if algorithm not in KIND_ALGORITHMS:
                raise ValueError(
                    f"adopted sample has kind {kind_spec!r}, which requires a "
                    f"kind-capable refresh algorithm {KIND_ALGORITHMS}, "
                    f"got {algorithm!r}"
                )
        codec: RecordCodec = (
            kind_obj.codec(record_size)
            if kind_obj is not None
            else IntRecordCodec(record_size)
        )
        sample = SampleFile(sample_device, codec, checkpoint.sample_size)
        log = LogFile(log_device, codec)
        refresh_policy = policy if policy is not None else ManualPolicy()
        maintainer = SampleMaintainer.from_checkpoint(
            checkpoint,
            sample,
            log=log,
            algorithm=ALGORITHMS[algorithm](),
            policy=refresh_policy,
            cost_model=self._cost_model,
            instrumentation=self._instr,
            commit_group=commit_group,
            kind=kind_obj,
        )
        entry = CatalogEntry(
            name=name,
            algorithm=algorithm,
            policy=refresh_policy,
            codec=codec,
            maintainer=maintainer,
            sample=sample,
            log=log,
            store=store,
            sample_device=sample_device,
            log_device=log_device,
            meta_device=meta_device,
            commit_group=commit_group,
            kind=kind_spec,
            kind_obj=kind_obj,
        )
        self._manager.add(name, maintainer)
        self._entries[name] = entry
        if self._instr is not None:
            self._g_samples.set(len(self._entries))
            self._instr.emit(
                "serve.sample_adopted",
                sample=name,
                algorithm=algorithm,
                dataset_size=checkpoint.dataset_size,
                pending_log_elements=checkpoint.log_count,
            )
        return entry

    # -- data paths ----------------------------------------------------------

    def ingest(self, name: str, batch: Sequence) -> int:
        """Feed one ingest batch to the named sample (skip-based path)."""
        return self.get(name).insert_many(batch)

    def refresh(self, name: str):
        """Run the named sample's deferred refresh; returns its result."""
        return self.get(name).refresh()
