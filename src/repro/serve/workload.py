"""Seeded synthetic workloads for the sample server.

A workload is a list of timestamped :class:`WorkloadEvent`\\ s -- ingest
batches and queries -- with every random choice (arrival gaps, routing,
batch sizes, element values, freshness modes, aggregates, predicate
thresholds) drawn from one :class:`~repro.rng.random_source.RandomSource`.
Same seed, same workload, byte for byte; the deterministic scheduler then
turns it into a byte-identical trace.

Timestamps are **cost-model seconds** -- the same currency the scheduler's
clock runs in -- generated as a Poisson process (exponential interarrival
gaps via inverse-CDF, so exactly one uniform draw per event).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.rng.random_source import RandomSource
from repro.serve.session import AGGREGATES, Freshness

__all__ = ["WorkloadEvent", "synthetic_workload"]


@dataclass(frozen=True)
class WorkloadEvent:
    """One timestamped arrival: an ingest batch or a query."""

    time: float  # arrival time, cost-model seconds
    seq: int  # arrival order; ties on `time` break by seq
    kind: str  # "ingest" | "query"
    sample: str  # target sample name
    batch: tuple = ()  # ingest payload (empty for queries)
    freshness: Freshness | None = None  # query staleness tolerance
    aggregate: str = "count"
    threshold: int | None = None  # predicate: value >= threshold

    def __post_init__(self) -> None:
        if self.kind not in ("ingest", "query"):
            raise ValueError(f"kind must be 'ingest' or 'query', got {self.kind!r}")
        if self.kind == "query" and self.freshness is None:
            raise ValueError("query events need a freshness mode")
        if self.kind == "ingest" and not self.batch:
            raise ValueError("ingest events need a non-empty batch")


def synthetic_workload(
    rng: RandomSource,
    names: Sequence[str],
    events: int,
    mean_gap_seconds: float = 0.05,
    ingest_fraction: float = 0.5,
    batch_range: tuple[int, int] = (64, 512),
    value_range: int = 1 << 30,
    staleness_bound: int = 256,
    freshness_weights: tuple[tuple[str, int], ...] = (
        ("serve_stale", 2),
        ("bounded_staleness", 1),
        ("refresh_on_read", 1),
    ),
) -> list[WorkloadEvent]:
    """Generate a mixed ingest/query arrival stream from one seeded RNG.

    ``ingest_fraction`` splits the stream; ingest batches carry uniform
    integers in ``[0, value_range)`` with sizes uniform in
    ``batch_range``; queries rotate deterministically through the
    supported aggregates, pick a freshness mode by integer weights
    (``bounded_staleness`` uses ``staleness_bound``), and filter on
    ``value >= threshold`` with the threshold uniform over the lower half
    of the value range so predicates stay selective but never empty.
    """
    if not names:
        raise ValueError("need at least one sample name")
    if events < 0:
        raise ValueError("events must be non-negative")
    low, high = batch_range
    if not 1 <= low <= high:
        raise ValueError(f"bad batch_range {batch_range}")
    modes: list[str] = []
    for mode, weight in freshness_weights:
        modes.extend([mode] * weight)
    if not modes:
        raise ValueError("freshness_weights must have positive total weight")
    out: list[WorkloadEvent] = []
    clock = 0.0
    for seq in range(events):
        # Inverse-CDF exponential gap; 1 - random() is in (0, 1], so the
        # log argument never hits zero.
        clock += -mean_gap_seconds * math.log(1.0 - rng.random())
        name = names[rng.randrange(len(names))]
        if rng.random() < ingest_fraction:
            size = low + rng.randrange(high - low + 1)
            batch = tuple(rng.randrange(value_range) for _ in range(size))
            out.append(
                WorkloadEvent(time=clock, seq=seq, kind="ingest", sample=name, batch=batch)
            )
        else:
            mode = modes[rng.randrange(len(modes))]
            if mode == "bounded_staleness":
                freshness = Freshness.bounded(staleness_bound)
            else:
                freshness = Freshness(mode)
            aggregate = AGGREGATES[rng.randrange(len(AGGREGATES))]
            threshold = rng.randrange(value_range // 2)
            out.append(
                WorkloadEvent(
                    time=clock,
                    seq=seq,
                    kind="query",
                    sample=name,
                    freshness=freshness,
                    aggregate=aggregate,
                    threshold=threshold,
                )
            )
    return out
