"""One-call serving simulation: catalog + workload + scheduler.

``run_simulation(SimConfig(...))`` wires the whole serving stack
together from a single seed: it creates a catalog of samples (each with
its own decorrelated RNG stream), generates a synthetic workload, runs
it under the deterministic scheduler and returns the canonical
:class:`~repro.serve.scheduler.ServeReport`.  The ``repro serve-sim``
CLI, the scheduling-policy comparison experiment and the determinism
tests are all thin wrappers over this function -- same seed in, same
bytes out, everywhere.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.slo import SLOTracker, parse_slos
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.tracefile import SpanSinkJsonl
from repro.rng.random_source import RandomSource
from repro.serve.admission import AdmissionController
from repro.serve.catalog import SampleCatalog
from repro.serve.scheduler import (
    DeterministicScheduler,
    ServeReport,
    make_scheduling_policy,
)
from repro.serve.session import QuerySession
from repro.serve.workload import synthetic_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.api import Instrumentation

__all__ = [
    "SimConfig",
    "build_catalog",
    "run_simulation",
    "query_answers",
    "assert_same_answers",
]


@dataclass(frozen=True)
class SimConfig:
    """Everything a serving simulation depends on, in one value.

    ``seed`` feeds two decorrelated streams: one per catalogued sample
    (initial dataset + maintenance decisions) and one for the workload
    (arrivals, routing, batches, query shapes).
    """

    seed: int = 0
    samples: int = 2
    sample_size: int = 256
    initial_dataset_size: int | None = None
    algorithm: str = "stack"
    events: int = 200
    mean_gap_seconds: float = 0.05
    ingest_fraction: float = 0.5
    batch_range: tuple[int, int] = (64, 512)
    staleness_bound: int = 256
    policy: str = "longest-log:64"
    max_queue_depth: int | None = None
    max_wait_seconds: float | None = None
    overload_action: str = "shed"
    confidence: float = 0.95
    #: page-cache frames per device (0 = no pool, bit-identical accounting)
    pool_capacity: int = 0
    pool_readahead: int = 8
    #: write every finished span as sorted-key JSONL here (None = no trace
    #: file; also enables per-block storage spans on the instrumentation)
    trace_path: str | None = None
    #: SLO specs (repro.obs.slo.SLO.parse syntax); the always-on freshness
    #: contract check is appended regardless
    slos: tuple[str, ...] = ()
    #: window width in cost seconds for the report's time-series section
    #: (0 = no time series)
    timeseries_interval: float = 0.0
    #: attach an async replication link + replica site to the catalog
    #: (False keeps the run bit-identical to an unreplicated simulation)
    replica: bool = False
    #: replication-lag budget in cost seconds: a sealed commit batch may
    #: wait this long in the primary's outbox before it must ship
    replica_lag_budget: float = 0.0
    #: per-sample kind specs (see :mod:`repro.core.kinds`), assigned
    #: round-robin over the samples in name order; () = all uniform,
    #: which keeps the run byte-identical to a kind-less configuration.
    #: Non-uniform kinds require a kind-capable ``algorithm`` (naive/array).
    kinds: tuple[str, ...] = ()

    def sample_names(self) -> list[str]:
        return [f"s{index:02d}" for index in range(self.samples)]

    def kind_for(self, index: int) -> str:
        """The kind spec of the index-th sample (round-robin assignment)."""
        if not self.kinds:
            return "uniform"
        return self.kinds[index % len(self.kinds)]

    @property
    def run_id(self) -> str:
        """Seed-derived trace-id prefix shared by every span of the run."""
        return f"{self.seed:08x}"


def build_catalog(
    config: SimConfig,
    instrumentation: "Instrumentation | None" = None,
) -> SampleCatalog:
    """Create the simulation's catalog; one RNG stream per sample."""
    cost_model = (
        instrumentation.cost_model if instrumentation is not None else None
    )
    replication = None
    if config.replica:
        from repro.replication.link import ReplicationLink

        replication = ReplicationLink(
            lag_budget=config.replica_lag_budget,
            instrumentation=instrumentation,
        )
    catalog = SampleCatalog(
        cost_model=cost_model,
        instrumentation=instrumentation,
        pool_capacity=config.pool_capacity,
        pool_readahead=config.pool_readahead,
        replication=replication,
    )
    root = RandomSource(config.seed)
    for index, name in enumerate(config.sample_names()):
        catalog.create(
            name,
            sample_size=config.sample_size,
            initial_dataset_size=config.initial_dataset_size,
            algorithm=config.algorithm,
            seed=root.spawn(name).seed,
            kind=config.kind_for(index),
        )
    return catalog


def run_simulation(
    config: SimConfig,
    instrumentation: "Instrumentation | None" = None,
    catalog: SampleCatalog | None = None,
) -> ServeReport:
    """Run one serving simulation to completion.

    Pass a pre-built ``catalog`` to reuse one (e.g. crash-recovery tests
    that reopen it between runs); by default a fresh catalog is built
    from the config's seed.

    ``config.trace_path`` requires ``instrumentation``: the tracer's
    ``run_id`` is set from the seed, a streaming JSONL sink is attached
    for the run, and per-block storage spans are switched on so each
    query's trace tree reaches the buffer pool and device.
    """
    if config.trace_path is not None and instrumentation is None:
        raise ValueError("trace_path requires instrumentation")
    with ExitStack() as stack:
        if instrumentation is not None:
            instrumentation.tracer.run_id = config.run_id
        if config.trace_path is not None:
            stream = stack.enter_context(
                open(config.trace_path, "w", encoding="utf-8")
            )
            unsubscribe = instrumentation.tracer.add_span_sink(SpanSinkJsonl(stream))
            stack.callback(unsubscribe)
            previous_trace_storage = instrumentation.trace_storage
            instrumentation.trace_storage = True
            stack.callback(
                setattr, instrumentation, "trace_storage", previous_trace_storage
            )
        if catalog is None:
            if instrumentation is not None:
                with instrumentation.tracer.trace_context(f"{config.run_id}:setup"):
                    catalog = build_catalog(config, instrumentation)
            else:
                catalog = build_catalog(config, instrumentation)
        workload_rng = RandomSource(config.seed).spawn("workload")
        events = synthetic_workload(
            workload_rng,
            catalog.names(),
            config.events,
            mean_gap_seconds=config.mean_gap_seconds,
            ingest_fraction=config.ingest_fraction,
            batch_range=config.batch_range,
            staleness_bound=config.staleness_bound,
        )
        interval = config.timeseries_interval
        scheduler = DeterministicScheduler(
            catalog,
            policy=make_scheduling_policy(config.policy),
            admission=AdmissionController(
                max_queue_depth=config.max_queue_depth,
                max_wait_seconds=config.max_wait_seconds,
                overload_action=config.overload_action,
                instrumentation=instrumentation,
            ),
            session=QuerySession(
                catalog, confidence=config.confidence, instrumentation=instrumentation
            ),
            instrumentation=instrumentation,
            slos=SLOTracker(parse_slos(list(config.slos)), window_interval=interval),
            timeseries=TimeSeriesStore(interval) if interval > 0 else None,
        )
        return scheduler.run(events)


#: Trace fields that constitute a query's *answer* -- what the client sees.
#: Timing fields (arrival/start/service/latency) are deliberately excluded:
#: a page cache changes service times, never answers.
_ANSWER_FIELDS = (
    "kind",
    "seq",
    "sample",
    "freshness",
    "aggregate",
    "staleness",
    "refreshed",
    "estimate",
    "ci_low",
    "ci_high",
)


def query_answers(report: dict) -> list[dict]:
    """Extract the answer-only view of every query in a report's trace.

    Takes a report *dict* (``ServeReport.to_dict()`` or parsed JSON) so
    the two sides of a comparison can come from files, CLI artifacts or
    live runs interchangeably.
    """
    return [
        {key: entry[key] for key in _ANSWER_FIELDS}
        for entry in report.get("trace", [])
        if entry.get("kind") == "query"
    ]


def assert_same_answers(report_a: dict, report_b: dict) -> int:
    """Assert two runs answered every query identically; returns the count.

    This is the pool-fidelity check: a run with the page cache enabled
    must return byte-identical estimates, confidence intervals, staleness
    and refresh decisions to a run without it -- only costs and the
    ``pool``/``device`` sections may differ.
    """
    answers_a = query_answers(report_a)
    answers_b = query_answers(report_b)
    if len(answers_a) != len(answers_b):
        raise AssertionError(
            f"query counts differ: {len(answers_a)} vs {len(answers_b)}"
        )
    for index, (a, b) in enumerate(zip(answers_a, answers_b)):
        if a != b:
            diffs = {k: (a[k], b[k]) for k in _ANSWER_FIELDS if a[k] != b[k]}
            raise AssertionError(f"query {index} answers differ: {diffs}")
    return len(answers_a)
