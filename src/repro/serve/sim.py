"""One-call serving simulation: catalog + workload + scheduler.

``run_simulation(SimConfig(...))`` wires the whole serving stack
together from a single seed: it creates a catalog of samples (each with
its own decorrelated RNG stream), generates a synthetic workload, runs
it under the deterministic scheduler and returns the canonical
:class:`~repro.serve.scheduler.ServeReport`.  The ``repro serve-sim``
CLI, the scheduling-policy comparison experiment and the determinism
tests are all thin wrappers over this function -- same seed in, same
bytes out, everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.rng.random_source import RandomSource
from repro.serve.admission import AdmissionController
from repro.serve.catalog import SampleCatalog
from repro.serve.scheduler import (
    DeterministicScheduler,
    ServeReport,
    make_scheduling_policy,
)
from repro.serve.session import QuerySession
from repro.serve.workload import synthetic_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.api import Instrumentation

__all__ = ["SimConfig", "build_catalog", "run_simulation"]


@dataclass(frozen=True)
class SimConfig:
    """Everything a serving simulation depends on, in one value.

    ``seed`` feeds two decorrelated streams: one per catalogued sample
    (initial dataset + maintenance decisions) and one for the workload
    (arrivals, routing, batches, query shapes).
    """

    seed: int = 0
    samples: int = 2
    sample_size: int = 256
    initial_dataset_size: int | None = None
    algorithm: str = "stack"
    events: int = 200
    mean_gap_seconds: float = 0.05
    ingest_fraction: float = 0.5
    batch_range: tuple[int, int] = (64, 512)
    staleness_bound: int = 256
    policy: str = "longest-log:64"
    max_queue_depth: int | None = None
    max_wait_seconds: float | None = None
    overload_action: str = "shed"
    confidence: float = 0.95

    def sample_names(self) -> list[str]:
        return [f"s{index:02d}" for index in range(self.samples)]


def build_catalog(
    config: SimConfig,
    instrumentation: "Instrumentation | None" = None,
) -> SampleCatalog:
    """Create the simulation's catalog; one RNG stream per sample."""
    cost_model = (
        instrumentation.cost_model if instrumentation is not None else None
    )
    catalog = SampleCatalog(cost_model=cost_model, instrumentation=instrumentation)
    root = RandomSource(config.seed)
    for name in config.sample_names():
        catalog.create(
            name,
            sample_size=config.sample_size,
            initial_dataset_size=config.initial_dataset_size,
            algorithm=config.algorithm,
            seed=root.spawn(name).seed,
        )
    return catalog


def run_simulation(
    config: SimConfig,
    instrumentation: "Instrumentation | None" = None,
    catalog: SampleCatalog | None = None,
) -> ServeReport:
    """Run one serving simulation to completion.

    Pass a pre-built ``catalog`` to reuse one (e.g. crash-recovery tests
    that reopen it between runs); by default a fresh catalog is built
    from the config's seed.
    """
    if catalog is None:
        catalog = build_catalog(config, instrumentation)
    workload_rng = RandomSource(config.seed).spawn("workload")
    events = synthetic_workload(
        workload_rng,
        catalog.names(),
        config.events,
        mean_gap_seconds=config.mean_gap_seconds,
        ingest_fraction=config.ingest_fraction,
        batch_range=config.batch_range,
        staleness_bound=config.staleness_bound,
    )
    scheduler = DeterministicScheduler(
        catalog,
        policy=make_scheduling_policy(config.policy),
        admission=AdmissionController(
            max_queue_depth=config.max_queue_depth,
            max_wait_seconds=config.max_wait_seconds,
            overload_action=config.overload_action,
            instrumentation=instrumentation,
        ),
        session=QuerySession(
            catalog, confidence=config.confidence, instrumentation=instrumentation
        ),
        instrumentation=instrumentation,
    )
    return scheduler.run(events)
