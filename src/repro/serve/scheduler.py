"""Deterministic discrete-event scheduler for the sample server.

The server is modelled as **one disk shared by three job classes** --
ingest batches, deferred refresh jobs and queries -- under a
discrete-event simulation whose clock is **cost-model seconds**:

* arrivals come from a seeded workload (see
  :mod:`repro.serve.workload`), timestamped in cost seconds;
* executing an operation *measures* its service time as the cost-model
  delta it actually incurred (Sec. 6.1 weighting of the counted block
  accesses) -- the simulation never guesses a duration and never reads a
  wall clock;
* the device is a single server: ``busy_until`` advances by each service
  time, and an event arriving earlier waits (its latency = wait +
  service).

Everything is deterministic: the heap orders events by ``(time, seq)``
with sequence numbers assigned once, ties included, so two runs from the
same seed produce byte-identical traces, AccessStats and estimates.

Refresh scheduling is pluggable.  After every completed event the
scheduler asks its :class:`RefreshScheduling` policy for at most **one**
sample to refresh (yielding the device back to arriving traffic between
jobs -- this is what makes policy *order* observable):

* :class:`FifoRefresh` -- refresh in the order samples crossed the
  staleness threshold;
* :class:`LongestLogFirst` -- greedy: always the most stale sample, which
  also maximises per-job refresh efficiency (the paper's Fig. 7 economy
  of scale: cost per logged element falls as the log grows);
* :class:`DeadlineRefresh` -- bounded-staleness servicing: only samples
  whose backlog exceeds the bound, most-overdue first.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Protocol, Sequence

from repro.obs.api import maybe_span
from repro.obs.catalogue import COUNT_BUCKETS, SECONDS_BUCKETS
from repro.obs.slo import SLOTracker, parse_slos
from repro.obs.timeseries import TimeSeriesStore
from repro.serve.admission import AdmissionController
from repro.serve.session import QuerySession
from repro.serve.workload import WorkloadEvent
from repro.storage.cost_model import AccessStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.api import Instrumentation
    from repro.serve.catalog import SampleCatalog

__all__ = [
    "RefreshScheduling",
    "FifoRefresh",
    "LongestLogFirst",
    "DeadlineRefresh",
    "make_scheduling_policy",
    "ServeReport",
    "DeterministicScheduler",
]


# -- refresh-scheduling policies ---------------------------------------------


class RefreshScheduling(Protocol):
    """Chooses which sample (if any) to refresh when the device is free."""

    name: str

    def select(self, pending: Mapping[str, int]) -> str | None:
        """Pick one sample to refresh now, or None to stay idle.

        ``pending`` maps sample name to pending log elements, in stable
        catalog order; implementations must be deterministic functions of
        it (plus their own state).
        """
        ...

    def notify_refreshed(self, name: str) -> None:
        """Told after *any* refresh of ``name`` (scheduled or read-forced)."""
        ...


class FifoRefresh:
    """Refresh samples in the order they crossed the staleness threshold."""

    name = "fifo"

    def __init__(self, threshold: int = 1) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self._threshold = threshold
        self._queue: list[str] = []

    def select(self, pending: Mapping[str, int]) -> str | None:
        for name, count in pending.items():
            if count >= self._threshold and name not in self._queue:
                self._queue.append(name)
        # Read-path refreshes may have serviced queued samples already.
        while self._queue and pending.get(self._queue[0], 0) < self._threshold:
            self._queue.pop(0)
        return self._queue[0] if self._queue else None

    def notify_refreshed(self, name: str) -> None:
        if name in self._queue:
            self._queue.remove(name)


class LongestLogFirst:
    """Greedy: always refresh the sample with the largest backlog."""

    name = "longest-log"

    def __init__(self, threshold: int = 1) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self._threshold = threshold

    def select(self, pending: Mapping[str, int]) -> str | None:
        best: str | None = None
        best_count = 0
        for name, count in pending.items():
            if count >= self._threshold and count > best_count:
                best, best_count = name, count
        return best

    def notify_refreshed(self, name: str) -> None:
        return None


class DeadlineRefresh:
    """Keep every sample's backlog at or below a staleness bound.

    Idle while all samples are within the bound; otherwise refreshes the
    most-overdue sample (largest excess over the bound) first.  Pairs
    naturally with ``bounded_staleness`` reads at the same bound: the
    background scheduler does the work, so reads rarely have to force it.
    """

    name = "deadline"

    def __init__(self, bound: int) -> None:
        if bound < 0:
            raise ValueError("bound must be non-negative")
        self._bound = bound

    def select(self, pending: Mapping[str, int]) -> str | None:
        best: str | None = None
        best_excess = 0
        for name, count in pending.items():
            excess = count - self._bound
            if excess > best_excess:
                best, best_excess = name, excess
        return best

    def notify_refreshed(self, name: str) -> None:
        return None


_POLICIES = {
    "fifo": (FifoRefresh, 1),
    "longest-log": (LongestLogFirst, 1),
    "deadline": (DeadlineRefresh, None),
}


def make_scheduling_policy(spec: str) -> RefreshScheduling:
    """Build a policy from ``name`` or ``name:arg`` (e.g. ``deadline:256``).

    The argument is the staleness threshold for ``fifo``/``longest-log``
    (default 1) and the mandatory bound for ``deadline``.
    """
    name, _, arg = spec.partition(":")
    try:
        cls, default = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {name!r}; choose from {tuple(_POLICIES)}"
        ) from None
    if arg:
        return cls(int(arg))
    if default is None:
        raise ValueError(f"policy {name!r} needs an argument, e.g. {name}:256")
    return cls(default)


# -- the report ---------------------------------------------------------------


@dataclass
class ServeReport:
    """Aggregate outcome of one simulated serving run.

    Everything is in cost-model currency; :meth:`to_json` is canonical
    (sorted keys) so same-seed runs compare byte-for-byte.
    """

    policy: str
    events: int
    clock_seconds: float
    queries_answered: int = 0
    queries_shed: int = 0
    queries_deferred: int = 0
    ingest_batches: int = 0
    elements_ingested: int = 0
    refresh_jobs: int = 0
    forced_refreshes: int = 0
    latency: dict = field(default_factory=dict)
    staleness: dict = field(default_factory=dict)
    refreshes_by_sample: dict = field(default_factory=dict)
    online: dict = field(default_factory=dict)
    offline: dict = field(default_factory=dict)
    #: total device block accesses the run charged (all job classes)
    device: dict = field(default_factory=dict)
    #: page-cache effectiveness (catalog.pool_stats(); enabled=false when off)
    pool: dict = field(default_factory=dict)
    #: SLO engine output: per-objective error budgets and burn rates
    slo: dict = field(default_factory=dict)
    #: replication link + replica-apply counters (empty when unreplicated,
    #: keeping disabled-run reports byte-identical to pre-replication ones)
    replication: dict = field(default_factory=dict)
    #: windowed time-series summaries (empty unless an interval was set)
    timeseries: dict = field(default_factory=dict)
    trace: list = field(default_factory=list)

    def to_dict(self, include_trace: bool = True) -> dict:
        out = {
            "policy": self.policy,
            "events": self.events,
            "clock_seconds": self.clock_seconds,
            "queries_answered": self.queries_answered,
            "queries_shed": self.queries_shed,
            "queries_deferred": self.queries_deferred,
            "ingest_batches": self.ingest_batches,
            "elements_ingested": self.elements_ingested,
            "refresh_jobs": self.refresh_jobs,
            "forced_refreshes": self.forced_refreshes,
            "latency": dict(self.latency),
            "staleness": dict(self.staleness),
            "refreshes_by_sample": dict(self.refreshes_by_sample),
            "online": dict(self.online),
            "offline": dict(self.offline),
            "device": dict(self.device),
            "pool": dict(self.pool),
            "slo": dict(self.slo),
        }
        if self.replication:
            out["replication"] = dict(self.replication)
        if self.timeseries:
            out["timeseries"] = dict(self.timeseries)
        if include_trace:
            out["trace"] = list(self.trace)
        return out

    def to_json(self, include_trace: bool = True, indent: int = 2) -> str:
        import json

        return json.dumps(
            self.to_dict(include_trace=include_trace), sort_keys=True, indent=indent
        )


def _stats_dict(stats: AccessStats) -> dict:
    return {
        "seq_reads": stats.seq_reads,
        "seq_writes": stats.seq_writes,
        "random_reads": stats.random_reads,
        "random_writes": stats.random_writes,
    }


def _round(value: float) -> float:
    # One canonical rounding for every float in the trace: floats this
    # deep into sums of per-access times carry noise well below 1 ns of
    # cost time, and a fixed quantum keeps reports stable to the byte.
    return round(value, 9)


def _distribution(values: list[float]) -> dict:
    if not values:
        return {"count": 0}
    ordered = sorted(values)
    n = len(ordered)
    return {
        "count": n,
        "mean": _round(sum(ordered) / n),
        "p50": _round(ordered[(50 * (n - 1)) // 100]),
        "p95": _round(ordered[(95 * (n - 1)) // 100]),
        "max": _round(ordered[-1]),
    }


# -- the scheduler ------------------------------------------------------------


class DeterministicScheduler:
    """Runs a workload against a catalog under one simulated disk.

    Parameters
    ----------
    catalog:
        The serving catalog; its shared cost model is the clock's
        currency and the source of every service time.
    policy:
        The background :class:`RefreshScheduling` policy.
    admission:
        Optional :class:`~repro.serve.admission.AdmissionController`;
        defaults to no limits (every query admitted).
    session:
        Optional :class:`~repro.serve.session.QuerySession`; defaults to
        a session over ``catalog`` at 95% confidence.
    slos:
        Optional :class:`~repro.obs.slo.SLOTracker` fed per answered/shed
        query; defaults to a tracker carrying only the always-on
        freshness contract check, so the report's ``slo`` section is
        always present.
    timeseries:
        Optional :class:`~repro.obs.timeseries.TimeSeriesStore`; when
        given, latency/staleness/queue-depth/pool/device series are
        sampled per event and summarised in the report.
    """

    def __init__(
        self,
        catalog: "SampleCatalog",
        policy: RefreshScheduling,
        admission: AdmissionController | None = None,
        session: QuerySession | None = None,
        instrumentation: "Instrumentation | None" = None,
        slos: SLOTracker | None = None,
        timeseries: TimeSeriesStore | None = None,
    ) -> None:
        self._catalog = catalog
        self._policy = policy
        self._instr = instrumentation
        self._slos = slos if slos is not None else SLOTracker(parse_slos([]))
        self._ts = timeseries
        self._admission = (
            admission
            if admission is not None
            else AdmissionController(instrumentation=instrumentation)
        )
        self._session = (
            session
            if session is not None
            else QuerySession(catalog, instrumentation=instrumentation)
        )
        if instrumentation is not None:
            self._c_queries = instrumentation.counter("serve.queries")
            self._c_refresh_jobs = instrumentation.counter("serve.refresh_jobs")
            self._c_ingest = instrumentation.counter("serve.ingest_batches")
            self._h_latency = instrumentation.histogram(
                "serve.query_latency_seconds", buckets=SECONDS_BUCKETS
            )
            self._h_staleness = instrumentation.histogram(
                "serve.query_staleness", buckets=COUNT_BUCKETS
            )

    def run(self, events: Sequence[WorkloadEvent]) -> ServeReport:
        """Process a workload to completion; returns the canonical report."""
        catalog = self._catalog
        cost_model = catalog.cost_model
        obs = self._instr
        heap: list[tuple[float, int, WorkloadEvent]] = [
            (event.time, event.seq, event) for event in events
        ]
        heapq.heapify(heap)
        # Sorted mirror of every heap entry's time, with `head` marking how
        # many have been popped.  Pops leave the heap in ascending (time,
        # seq) order and a deferred re-queue lands at `busy_until` (>= the
        # time just popped), so the popped prefix stays a prefix and the
        # backlog count below is one bisect instead of an O(n) scan.
        times = sorted(entry[0] for entry in heap)
        head = 0
        # Deferred re-queues get sequence numbers above every workload seq,
        # so a deferral never jumps ahead of a same-instant arrival.
        next_seq_box = [max((event.seq for event in events), default=-1) + 1]
        deferred_once: set[int] = set()
        busy_until = 0.0
        trace: list[dict] = []
        latencies: list[float] = []
        stalenesses: list[float] = []
        refreshes_by_sample: dict[str, int] = {name: 0 for name in catalog.names()}
        online_mark = catalog.manager.online_stats()
        offline_mark = catalog.manager.offline_stats()
        device_mark = cost_model.checkpoint()
        report = ServeReport(policy=self._policy.name, events=len(events), clock_seconds=0.0)

        while heap:
            arrival, seq, event = heapq.heappop(heap)
            head += 1
            start = arrival if arrival > busy_until else busy_until
            wait = start - arrival
            # Backlog proxy: arrivals that will queue up before the device
            # frees again (deterministic -- derived only from the heap).
            depth = bisect_left(times, busy_until, head) - head
            heap_size_before = len(heap)

            if obs is None:
                busy_until = self._process_event(
                    event=event,
                    seq=seq,
                    arrival=arrival,
                    start=start,
                    wait=wait,
                    depth=depth,
                    busy_until=busy_until,
                    heap=heap,
                    next_seq_box=next_seq_box,
                    deferred_once=deferred_once,
                    trace=trace,
                    latencies=latencies,
                    stalenesses=stalenesses,
                    refreshes_by_sample=refreshes_by_sample,
                    report=report,
                )
            else:
                with ExitStack() as stack:
                    # One deterministic trace id per workload event: every
                    # span opened on its behalf -- admission, session read,
                    # triggered refresh, pool and device I/O -- shares it.
                    stack.enter_context(
                        obs.tracer.trace_context(self._trace_id(f"{event.seq:06d}"))
                    )
                    stack.enter_context(
                        obs.span(
                            "serve.event",
                            kind=event.kind,
                            seq=event.seq,
                            sample=event.sample,
                        )
                    )
                    busy_until = self._process_event(
                        event=event,
                        seq=seq,
                        arrival=arrival,
                        start=start,
                        wait=wait,
                        depth=depth,
                        busy_until=busy_until,
                        heap=heap,
                        next_seq_box=next_seq_box,
                        deferred_once=deferred_once,
                        trace=trace,
                        latencies=latencies,
                        stalenesses=stalenesses,
                        refreshes_by_sample=refreshes_by_sample,
                        report=report,
                    )
            if len(heap) > heap_size_before:
                # A deferral re-queued the event at the pre-event
                # busy_until (which the defer branch returns unchanged);
                # keep the sorted mirror in step.  Every already-popped
                # time is <= that value, so the insertion point can never
                # fall inside the popped prefix.
                insort(times, busy_until)
            if self._ts is not None:
                self._sample_timeseries(busy_until, depth, device_mark)
            # Shipping opportunity: the async replication daemon's wakeup,
            # modelled deterministically as "after every completed event".
            link = catalog.replication
            if link is not None:
                link.ship_due(cost_model.cost_seconds())

        # Drain: keep the staleness invariant when traffic stops.
        drain_index = 0
        while True:
            jobs_before = report.refresh_jobs
            if obs is None:
                busy_until = self._run_one_refresh_job(
                    busy_until, trace, refreshes_by_sample, report
                )
            else:
                with obs.tracer.trace_context(
                    self._trace_id(f"drain:{drain_index:06d}")
                ):
                    busy_until = self._run_one_refresh_job(
                        busy_until, trace, refreshes_by_sample, report
                    )
            if report.refresh_jobs == jobs_before:
                break
            drain_index += 1
            link = catalog.replication
            if link is not None:
                link.ship_due(cost_model.cost_seconds())

        link = catalog.replication
        if link is not None:
            # Clean shutdown drains the outbox: only a crash loses batches.
            link.ship_all()
            report.replication = link.stats()

        report.clock_seconds = _round(busy_until)
        report.latency = _distribution(latencies)
        report.staleness = _distribution(stalenesses)
        report.refreshes_by_sample = dict(refreshes_by_sample)
        report.online = _stats_dict(
            catalog.manager.online_stats() - online_mark
        )
        report.offline = _stats_dict(
            catalog.manager.offline_stats() - offline_mark
        )
        report.device = _stats_dict(cost_model.since(device_mark))
        report.pool = catalog.pool_stats()
        report.slo = self._slos.to_dict()
        if self._ts is not None:
            report.timeseries = self._ts.to_dict()
        report.trace = trace
        return report

    def _trace_id(self, label: str) -> str:
        run_id = self._instr.tracer.run_id if self._instr is not None else ""
        return f"{run_id or 'run'}:{label}"

    def _sample_timeseries(
        self, now: float, depth: int, device_mark
    ) -> None:
        """Snapshot gauge/total series at the end of one event."""
        ts = self._ts
        ts.set_gauge("serve.queue_depth", now, float(depth))
        pool = self._catalog.pool_stats()
        ts.record_total("storage.pool.hits", now, float(pool.get("hits", 0)))
        ts.record_total("storage.pool.misses", now, float(pool.get("misses", 0)))
        cost_model = self._catalog.cost_model
        ts.record_total(
            "device.accesses", now, float(cost_model.since(device_mark).total_accesses)
        )

    def _process_event(
        self,
        event: WorkloadEvent,
        seq: int,
        arrival: float,
        start: float,
        wait: float,
        depth: int,
        busy_until: float,
        heap: list,
        next_seq_box: list,
        deferred_once: set,
        trace: list,
        latencies: list,
        stalenesses: list,
        refreshes_by_sample: dict,
        report: ServeReport,
    ) -> float:
        """Run one popped event to completion; returns the new busy_until.

        Includes the post-event background refresh job (so a refresh
        *triggered* by this event's ingest or staleness lands in the same
        trace tree), except after a defer/shed, which yield the device
        immediately as before.
        """
        catalog = self._catalog
        cost_model = catalog.cost_model
        obs = self._instr

        if event.kind == "ingest":
            mark = cost_model.checkpoint()
            with maybe_span(
                obs, "serve.ingest", sample=event.sample, n=len(event.batch)
            ):
                catalog.ingest(event.sample, event.batch)
            service = cost_model.since(mark).cost_seconds(cost_model.disk)
            busy_until = start + service
            report.ingest_batches += 1
            report.elements_ingested += len(event.batch)
            if obs is not None:
                self._c_ingest.inc()
            trace.append(
                {
                    "kind": "ingest",
                    "seq": seq,
                    "sample": event.sample,
                    "arrival": _round(arrival),
                    "start": _round(start),
                    "service": _round(service),
                    "elements": len(event.batch),
                }
            )
        else:
            with maybe_span(
                obs, "serve.admit", sample=event.sample, queue_depth=depth
            ) as admit_span:
                decision = self._admission.admit(
                    wait_seconds=wait,
                    queue_depth=depth,
                    already_deferred=event.seq in deferred_once,
                )
                if admit_span is not None:
                    admit_span.set("action", decision.action)
            if decision.action == "defer":
                deferred_once.add(event.seq)
                report.queries_deferred += 1
                heapq.heappush(heap, (busy_until, next_seq_box[0], event))
                next_seq_box[0] += 1
                trace.append(
                    {
                        "kind": "defer",
                        "seq": seq,
                        "sample": event.sample,
                        "arrival": _round(arrival),
                        "retry_at": _round(busy_until),
                        "queue_depth": depth,
                    }
                )
                return busy_until
            if decision.action == "shed":
                report.queries_shed += 1
                self._slos.record_shed(arrival)
                with maybe_span(
                    obs, "serve.shed", sample=event.sample, queue_depth=depth
                ):
                    pass
                trace.append(
                    {
                        "kind": "shed",
                        "seq": seq,
                        "sample": event.sample,
                        "arrival": _round(arrival),
                        "wait": _round(wait),
                        "queue_depth": depth,
                    }
                )
                return busy_until
            mark = cost_model.checkpoint()
            with maybe_span(
                obs,
                "serve.query",
                sample=event.sample,
                freshness=event.freshness.label,
                aggregate=event.aggregate,
            ) as span:
                answer = self._session.execute(
                    event.sample,
                    event.freshness,
                    aggregate=event.aggregate,
                    threshold=event.threshold,
                )
                if span is not None:
                    span.set("staleness", answer.staleness)
                    span.set("refreshed", answer.refreshed)
            service = cost_model.since(mark).cost_seconds(cost_model.disk)
            busy_until = start + service
            latency = (start + service) - arrival
            report.queries_answered += 1
            if answer.refreshed:
                report.forced_refreshes += 1
                refreshes_by_sample[event.sample] += 1
                self._policy.notify_refreshed(event.sample)
            latencies.append(latency)
            stalenesses.append(float(answer.staleness))
            if event.freshness.mode == "bounded_staleness":
                bound: int | None = event.freshness.bound
            elif event.freshness.mode == "refresh_on_read":
                bound = 0
            else:
                bound = None
            self._slos.record_query(
                busy_until, latency, answer.staleness, bound
            )
            if self._ts is not None:
                self._ts.observe("serve.query_latency_seconds", busy_until, latency)
                self._ts.observe(
                    "serve.query_staleness", busy_until, float(answer.staleness)
                )
            if obs is not None:
                self._c_queries.inc()
                self._h_latency.observe(latency)
                self._h_staleness.observe(float(answer.staleness))
            trace.append(
                {
                    "kind": "query",
                    "seq": seq,
                    "sample": event.sample,
                    "freshness": event.freshness.label,
                    "aggregate": event.aggregate,
                    "arrival": _round(arrival),
                    "start": _round(start),
                    "service": _round(service),
                    "latency": _round(latency),
                    "staleness": answer.staleness,
                    "refreshed": answer.refreshed,
                    "estimate": _round(answer.estimate.value),
                    "ci_low": _round(answer.estimate.low),
                    "ci_high": _round(answer.estimate.high),
                }
            )

        return self._run_one_refresh_job(
            busy_until, trace, refreshes_by_sample, report
        )

    def _run_one_refresh_job(
        self,
        busy_until: float,
        trace: list[dict],
        refreshes_by_sample: dict[str, int],
        report: ServeReport,
    ) -> float:
        """Ask the policy for one refresh job; returns the new busy_until."""
        selected = self._policy.select(self._catalog.pending())
        if selected is None:
            return busy_until
        cost_model = self._catalog.cost_model
        obs = self._instr
        mark = cost_model.checkpoint()
        with maybe_span(obs, "serve.refresh_job", sample=selected) as span:
            result = self._catalog.refresh(selected)
            # A completed background refresh commits its manifest: this
            # bounds recovery replay, and -- when replication is attached --
            # it is the ship point that seals everything the refresh made
            # durable into one checkpoint-boundary batch.  The superblock
            # write is booked as part of the job's service time.
            self._catalog.checkpoint(selected)
            if span is not None and result is not None:
                span.set("candidates", result.candidates)
                span.set("displaced", result.displaced)
        service = cost_model.since(mark).cost_seconds(cost_model.disk)
        self._policy.notify_refreshed(selected)
        report.refresh_jobs += 1
        refreshes_by_sample[selected] += 1
        if obs is not None:
            self._c_refresh_jobs.inc()
        trace.append(
            {
                "kind": "refresh",
                "sample": selected,
                "start": _round(busy_until),
                "service": _round(service),
                "candidates": result.candidates if result is not None else 0,
                "displaced": result.displaced if result is not None else 0,
            }
        )
        return busy_until + service
