"""The ``repro serve-sim`` subcommand: run one serving simulation.

Prints a latency/staleness report in cost-model seconds and can write
the full canonical JSON report (including the per-event trace) to a
file.  Same seed, same bytes -- the CI smoke step diffs two runs.

Self-contained on the pattern of :mod:`repro.obs.cli`: the main CLI
calls :func:`add_serve_sim_parser` at parser-build time and
:func:`run_serve_sim_command` on dispatch; the serving stack is imported
lazily so ``repro --help`` stays fast.
"""

from __future__ import annotations

import argparse

__all__ = ["add_serve_sim_parser", "run_serve_sim_command"]


def add_serve_sim_parser(sub) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "serve-sim",
        help="simulate the staleness-aware sample server (deterministic)",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--samples", type=int, default=2, help="catalog size")
    parser.add_argument(
        "--sample-size", type=int, default=256, help="elements per sample (M)"
    )
    parser.add_argument(
        "--events", type=int, default=200, help="workload events (ingest + query)"
    )
    parser.add_argument(
        "--algorithm",
        default="stack",
        choices=("array", "stack", "nomem", "naive"),
        help="deferred refresh algorithm for every sample",
    )
    parser.add_argument(
        "--kinds",
        default="",
        help="comma-separated sample-kind specs (uniform, weighted[:MOD], "
        "window), assigned round-robin over samples; empty = all uniform. "
        "Non-uniform kinds need --algorithm naive or array",
    )
    parser.add_argument(
        "--policy",
        default="longest-log:64",
        help=(
            "refresh scheduling policy: fifo[:threshold], "
            "longest-log[:threshold], or deadline:bound"
        ),
    )
    parser.add_argument(
        "--ingest-fraction",
        type=float,
        default=0.5,
        help="fraction of workload events that are ingest batches",
    )
    parser.add_argument(
        "--staleness-bound",
        type=int,
        default=256,
        help="k used by the workload's bounded_staleness queries",
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="admission control: shed/defer beyond this backlog",
    )
    parser.add_argument(
        "--max-wait-seconds",
        type=float,
        default=None,
        help="admission control: shed/defer beyond this cost-second wait",
    )
    parser.add_argument(
        "--overload-action",
        default="shed",
        choices=("shed", "defer"),
        help="what to do with queries that fail admission",
    )
    parser.add_argument(
        "--pool-capacity",
        type=int,
        default=0,
        help=(
            "page-cache frames per device (0 = no buffer pool, "
            "bit-identical paper accounting)"
        ),
    )
    parser.add_argument(
        "--pool-readahead",
        type=int,
        default=8,
        help="blocks to prefetch on a sequential miss inside a declared scan",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the full canonical JSON report (with trace) to PATH",
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help="omit the per-event trace from the JSON report",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "export every span as sorted-key JSONL to PATH (deterministic; "
            "enables per-block storage spans; inspect with 'repro trace')"
        ),
    )
    parser.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="SPEC",
        help=(
            "declare an SLO: latency:SECONDS:OBJECTIVE, "
            "staleness:ROWS:OBJECTIVE, or shed_rate:CEILING (repeatable; "
            "the freshness contract check is always on)"
        ),
    )
    parser.add_argument(
        "--slo-gate",
        action="store_true",
        help="exit non-zero when any declared SLO misses its objective",
    )
    parser.add_argument(
        "--ts-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "window width (cost seconds) for the report's time-series "
            "section (0 = off)"
        ),
    )
    parser.add_argument(
        "--replica",
        action="store_true",
        help=(
            "attach an async replication link + replica site; every "
            "manifest save ships a checkpoint-boundary batch (adds a "
            "'replication' report section)"
        ),
    )
    parser.add_argument(
        "--replica-lag",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "replication-lag budget in cost seconds a sealed commit batch "
            "may wait before shipping (0 = ship at the next opportunity)"
        ),
    )
    return parser


def run_serve_sim_command(args: argparse.Namespace) -> int:
    from repro.obs.api import Instrumentation
    from repro.serve.sim import SimConfig, run_simulation
    from repro.storage.cost_model import CostModel

    config = SimConfig(
        seed=args.seed,
        samples=args.samples,
        sample_size=args.sample_size,
        events=args.events,
        algorithm=args.algorithm,
        policy=args.policy,
        ingest_fraction=args.ingest_fraction,
        staleness_bound=args.staleness_bound,
        max_queue_depth=args.max_queue_depth,
        max_wait_seconds=args.max_wait_seconds,
        overload_action=args.overload_action,
        pool_capacity=args.pool_capacity,
        pool_readahead=args.pool_readahead,
        trace_path=args.trace,
        slos=tuple(args.slo),
        timeseries_interval=args.ts_interval,
        replica=args.replica,
        replica_lag_budget=args.replica_lag,
        kinds=tuple(
            spec.strip() for spec in args.kinds.split(",") if spec.strip()
        ),
    )
    instrumentation = Instrumentation(cost_model=CostModel())
    report = run_simulation(config, instrumentation=instrumentation)

    print(f"serve-sim  seed={config.seed}  policy={report.policy}")
    print(
        f"  workload: {report.events} events "
        f"({report.ingest_batches} ingest batches / "
        f"{report.elements_ingested} elements, "
        f"{report.queries_answered} queries answered)"
    )
    print(
        f"  clock: {report.clock_seconds:.6f} cost-seconds  "
        f"refresh jobs: {report.refresh_jobs}  "
        f"forced refreshes: {report.forced_refreshes}"
    )
    print(
        f"  admission: shed={report.queries_shed} "
        f"deferred={report.queries_deferred}"
    )
    latency = report.latency
    if latency.get("count"):
        print(
            "  query latency (cost-s): "
            f"mean={latency['mean']:.6f}  p50={latency['p50']:.6f}  "
            f"p95={latency['p95']:.6f}  max={latency['max']:.6f}"
        )
    staleness = report.staleness
    if staleness.get("count"):
        print(
            "  answer staleness (elements): "
            f"mean={staleness['mean']:.1f}  p95={staleness['p95']:.0f}  "
            f"max={staleness['max']:.0f}"
        )
    online, offline = report.online, report.offline
    print(
        "  I/O online: "
        f"seq r/w={online['seq_reads']}/{online['seq_writes']} "
        f"rand r/w={online['random_reads']}/{online['random_writes']}  "
        "offline: "
        f"seq r/w={offline['seq_reads']}/{offline['seq_writes']} "
        f"rand r/w={offline['random_reads']}/{offline['random_writes']}"
    )
    device = report.device
    total_accesses = sum(device.values())
    print(f"  device accesses: {total_accesses} blocks")
    pool = report.pool
    if pool.get("enabled"):
        print(
            f"  buffer pool: capacity={pool['capacity']} "
            f"hit_rate={pool['hit_rate']:.3f} "
            f"(hits={pool['hits']} misses={pool['misses']} "
            f"readahead={pool['readahead_blocks']} "
            f"coalesced={pool['coalesced_writes']})"
        )
    replication = report.replication
    if replication.get("enabled"):
        lag = replication["lag_seconds"]
        print(
            f"  replication: lag_budget={replication['lag_budget']:g} "
            f"sealed={replication['batches_sealed']} "
            f"shipped={replication['batches_shipped']} "
            f"({replication['bytes_shipped']} bytes) "
            f"backlog={replication['backlog_batches']}  "
            f"lag mean={lag['mean']:.6f} max={lag['max']:.6f}"
        )
    slo = report.slo
    missed = [
        name
        for name, entry in sorted(slo.get("objectives", {}).items())
        if not entry.get("met", True)
    ]
    for name, entry in sorted(slo.get("objectives", {}).items()):
        budget = entry["error_budget"]
        burn = entry["burn_rate"]
        print(
            f"  slo {name}: {'MET' if entry['met'] else 'MISSED'}  "
            f"compliance={entry['compliance']:.6f}  "
            f"budget {budget['consumed']}/{budget['total']:g}"
            + (f"  burn={burn:.3f}" if burn is not None else "")
        )
    if args.trace:
        print(f"  spans written to {args.trace}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json(include_trace=not args.no_trace))
            handle.write("\n")
        print(f"  report written to {args.json}")
    if args.slo_gate and missed:
        print(f"serve-sim: SLO gate failed: {', '.join(missed)}")
        return 1
    return 0
