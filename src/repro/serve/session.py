"""The sample server's read path: freshness modes over `SampleQuery`.

A deferred-maintenance sample is *stale by design* -- accepted candidates
sit in the log until the next refresh folds them in (the paper's whole
premise).  A server must therefore decide, per query, how much staleness
the caller tolerates:

* ``serve_stale`` -- answer from the sample as-is; zero extra I/O, the
  answer may miss up to ``pending_log_elements`` recent insertions;
* ``bounded_staleness(k)`` -- answer only when at most ``k`` accepted
  candidates are pending; otherwise force a refresh first.  This is the
  serving-layer analogue of the maintenance
  :class:`~repro.core.policies.ThresholdPolicy`, enforced at read time so
  the bound holds even when the background scheduler falls behind;
* ``refresh_on_read`` -- always fold the log in first
  (``bounded_staleness(0)``): strongest freshness, highest read latency.

Every served answer records the staleness it was computed at, so the
bounded-staleness guarantee is checkable after the fact (the property
tests do exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.query import Estimate, SampleQuery
from repro.obs.api import maybe_span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.api import Instrumentation
    from repro.serve.catalog import SampleCatalog

__all__ = ["Freshness", "ServedAnswer", "QuerySession"]

_MODES = ("serve_stale", "bounded_staleness", "refresh_on_read")

#: Aggregates the server accepts.  ``avg`` is deliberately absent: it
#: requires >= 2 matching sampled rows and so can fail on selective
#: predicates; the total-style estimators below are defined for any
#: predicate over a full sample.
AGGREGATES = ("count", "fraction", "sum")


@dataclass(frozen=True)
class Freshness:
    """A per-request staleness tolerance.

    Use the constructors -- :meth:`serve_stale`, :meth:`bounded`,
    :meth:`refresh_on_read` -- rather than building instances by hand.
    """

    mode: str
    bound: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"freshness mode must be one of {_MODES}, got {self.mode!r}")
        if self.mode == "bounded_staleness":
            if self.bound is None or self.bound < 0:
                raise ValueError("bounded_staleness needs a bound >= 0")
        elif self.bound is not None:
            raise ValueError(f"mode {self.mode!r} takes no bound")

    @classmethod
    def serve_stale(cls) -> "Freshness":
        return cls("serve_stale")

    @classmethod
    def bounded(cls, k: int) -> "Freshness":
        return cls("bounded_staleness", k)

    @classmethod
    def refresh_on_read(cls) -> "Freshness":
        return cls("refresh_on_read")

    @classmethod
    def parse(cls, spec: str) -> "Freshness":
        """Parse ``serve_stale`` / ``bounded_staleness:K`` / ``refresh_on_read``."""
        mode, _, arg = spec.partition(":")
        if mode == "bounded_staleness":
            if not arg:
                raise ValueError("bounded_staleness needs a bound, e.g. bounded_staleness:64")
            return cls.bounded(int(arg))
        if arg:
            raise ValueError(f"mode {mode!r} takes no argument")
        return cls(mode)

    def requires_refresh(self, pending_log_elements: int) -> bool:
        """Must the sample be refreshed before answering at this staleness?"""
        if self.mode == "serve_stale":
            return False
        if self.mode == "refresh_on_read":
            return pending_log_elements > 0
        return pending_log_elements > self.bound

    @property
    def label(self) -> str:
        if self.mode == "bounded_staleness":
            return f"bounded_staleness:{self.bound}"
        return self.mode


@dataclass(frozen=True)
class ServedAnswer:
    """One answered query, with the staleness it was answered at."""

    sample: str
    aggregate: str
    estimate: Estimate
    dataset_size: int
    rows_scanned: int
    #: pending log elements at answer time -- 0 after a forced refresh
    staleness: int
    #: True when the freshness mode forced a refresh before answering
    refreshed: bool
    freshness: Freshness


class QuerySession:
    """Executes approximate queries against a serving catalog.

    The read path is: check the target sample's staleness against the
    request's :class:`Freshness`; refresh first if the mode demands it;
    sequentially scan the sample (the only query-time I/O, charged to the
    shared cost model); evaluate the aggregate with
    :class:`~repro.analysis.query.SampleQuery`.  Predicates are
    ``value >= threshold`` range filters, matching the synthetic integer
    workloads.
    """

    def __init__(
        self,
        catalog: "SampleCatalog",
        confidence: float = 0.95,
        instrumentation: "Instrumentation | None" = None,
    ) -> None:
        self._catalog = catalog
        self._confidence = confidence
        self._instr = instrumentation
        if instrumentation is not None:
            self._c_forced = instrumentation.counter("serve.forced_refreshes")

    @property
    def catalog(self) -> "SampleCatalog":
        return self._catalog

    def execute(
        self,
        name: str,
        freshness: Freshness,
        aggregate: str = "count",
        threshold: int | None = None,
    ) -> ServedAnswer:
        """Answer one query at the requested freshness."""
        if aggregate not in AGGREGATES:
            raise ValueError(f"aggregate must be one of {AGGREGATES}, got {aggregate!r}")
        if self._instr is None:
            return self._execute(name, freshness, aggregate, threshold)
        with self._instr.span(
            "session.read", sample=name, freshness=freshness.label
        ) as span:
            answer = self._execute(name, freshness, aggregate, threshold)
            span.set("staleness", answer.staleness)
            span.set("refreshed", answer.refreshed)
        return answer

    def _execute(
        self,
        name: str,
        freshness: Freshness,
        aggregate: str,
        threshold: int | None,
    ) -> ServedAnswer:
        maintainer = self._catalog.get(name)
        pending = maintainer.pending_log_elements
        refreshed = False
        if freshness.requires_refresh(pending):
            with maybe_span(
                self._instr, "session.refresh_forced", sample=name, pending=pending
            ):
                maintainer.refresh()
            refreshed = True
            pending = maintainer.pending_log_elements
            if self._instr is not None:
                self._c_forced.inc()
        with maybe_span(self._instr, "session.scan", sample=name):
            rows = list(maintainer.sample.scan())
        query: SampleQuery = SampleQuery(
            rows, maintainer.dataset_size, self._confidence
        )
        if threshold is not None:
            query = query.where(lambda value: value >= threshold)
        if aggregate == "count":
            estimate = query.count()
        elif aggregate == "fraction":
            estimate = query.fraction()
        else:
            estimate = query.sum(float)
        return ServedAnswer(
            sample=name,
            aggregate=aggregate,
            estimate=estimate,
            dataset_size=maintainer.dataset_size,
            rows_scanned=len(rows),
            staleness=pending,
            refreshed=refreshed,
            freshness=freshness,
        )
