"""The sample server's read path: freshness modes over `SampleQuery`.

A deferred-maintenance sample is *stale by design* -- accepted candidates
sit in the log until the next refresh folds them in (the paper's whole
premise).  A server must therefore decide, per query, how much staleness
the caller tolerates:

* ``serve_stale`` -- answer from the sample as-is; zero extra I/O, the
  answer may miss up to ``pending_log_elements`` recent insertions;
* ``bounded_staleness(k)`` -- answer only when at most ``k`` accepted
  candidates are pending; otherwise force a refresh first.  This is the
  serving-layer analogue of the maintenance
  :class:`~repro.core.policies.ThresholdPolicy`, enforced at read time so
  the bound holds even when the background scheduler falls behind;
* ``refresh_on_read`` -- always fold the log in first
  (``bounded_staleness(0)``): strongest freshness, highest read latency.

Every served answer records the staleness it was computed at, so the
bounded-staleness guarantee is checkable after the fact (the property
tests do exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.query import Estimate, SampleQuery
from repro.obs.api import maybe_span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.api import Instrumentation
    from repro.serve.catalog import SampleCatalog

__all__ = ["Freshness", "ServedAnswer", "QuerySession"]

_MODES = ("serve_stale", "bounded_staleness", "refresh_on_read", "bounded_expiry")

#: Aggregates the server accepts.  ``avg`` is deliberately absent: it
#: requires >= 2 matching sampled rows and so can fail on selective
#: predicates; the total-style estimators below are defined for any
#: predicate over a full sample.
AGGREGATES = ("count", "fraction", "sum")


@dataclass(frozen=True)
class Freshness:
    """A per-request staleness tolerance.

    Use the constructors -- :meth:`serve_stale`, :meth:`bounded`,
    :meth:`refresh_on_read` -- rather than building instances by hand.
    """

    mode: str
    bound: "int | float | None" = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"freshness mode must be one of {_MODES}, got {self.mode!r}")
        if self.mode == "bounded_staleness":
            if self.bound is None or self.bound < 0:
                raise ValueError("bounded_staleness needs a bound >= 0")
        elif self.mode == "bounded_expiry":
            if self.bound is None or not 0 < self.bound <= 1:
                raise ValueError("bounded_expiry needs a fraction in (0, 1]")
        elif self.bound is not None:
            raise ValueError(f"mode {self.mode!r} takes no bound")

    @classmethod
    def serve_stale(cls) -> "Freshness":
        return cls("serve_stale")

    @classmethod
    def bounded(cls, k: int) -> "Freshness":
        return cls("bounded_staleness", k)

    @classmethod
    def bounded_expiry(cls, fraction: float) -> "Freshness":
        """Tolerate at most this *fraction* of the sample being stale.

        The row-count form of bounded staleness is awkward for a
        sliding-window sample, whose effective staleness is naturally
        capped at the window size ``W``: any fixed ``k >= W`` never
        forces a refresh.  This mode bounds the stale (expired-but-
        unapplied) fraction of the sample instead -- ``0.25`` means "at
        most a quarter of the rows I scan may be out of window".  It is
        defined for every kind: the fraction is effective staleness over
        the sample capacity.
        """
        return cls("bounded_expiry", fraction)

    @classmethod
    def refresh_on_read(cls) -> "Freshness":
        return cls("refresh_on_read")

    @classmethod
    def parse(cls, spec: str) -> "Freshness":
        """Parse ``serve_stale`` / ``bounded_staleness:K`` /
        ``bounded_expiry:F`` / ``refresh_on_read``."""
        mode, _, arg = spec.partition(":")
        if mode == "bounded_staleness":
            if not arg:
                raise ValueError("bounded_staleness needs a bound, e.g. bounded_staleness:64")
            return cls.bounded(int(arg))
        if mode == "bounded_expiry":
            if not arg:
                raise ValueError("bounded_expiry needs a fraction, e.g. bounded_expiry:0.25")
            return cls.bounded_expiry(float(arg))
        if arg:
            raise ValueError(f"mode {mode!r} takes no argument")
        return cls(mode)

    def requires_refresh(
        self, pending_log_elements: int, capacity: int | None = None
    ) -> bool:
        """Must the sample be refreshed before answering at this staleness?

        ``pending_log_elements`` is the sample's *effective* staleness
        (already capped by the kind -- see
        :meth:`repro.core.kinds.WindowKind.effective_staleness`).
        ``capacity`` (the sample size) is required only by
        ``bounded_expiry``, which bounds the stale fraction of the
        sample rather than an absolute row count.
        """
        if self.mode == "serve_stale":
            return False
        if self.mode == "refresh_on_read":
            return pending_log_elements > 0
        if self.mode == "bounded_expiry":
            if capacity is None:
                raise ValueError("bounded_expiry needs the sample capacity")
            return pending_log_elements > self.bound * capacity
        return pending_log_elements > self.bound

    @property
    def label(self) -> str:
        if self.mode == "bounded_staleness":
            return f"bounded_staleness:{self.bound}"
        if self.mode == "bounded_expiry":
            return f"bounded_expiry:{self.bound:g}"
        return self.mode


@dataclass(frozen=True)
class ServedAnswer:
    """One answered query, with the staleness it was answered at."""

    sample: str
    aggregate: str
    estimate: Estimate
    dataset_size: int
    rows_scanned: int
    #: effective staleness at answer time (pending log elements, capped
    #: by the sample's kind -- e.g. at W for a window) -- 0 after a
    #: forced refresh
    staleness: int
    #: True when the freshness mode forced a refresh before answering
    refreshed: bool
    freshness: Freshness


class QuerySession:
    """Executes approximate queries against a serving catalog.

    The read path is: check the target sample's staleness against the
    request's :class:`Freshness`; refresh first if the mode demands it;
    sequentially scan the sample (the only query-time I/O, charged to the
    shared cost model); evaluate the aggregate with
    :class:`~repro.analysis.query.SampleQuery`.  Predicates are
    ``value >= threshold`` range filters, matching the synthetic integer
    workloads.
    """

    def __init__(
        self,
        catalog: "SampleCatalog",
        confidence: float = 0.95,
        instrumentation: "Instrumentation | None" = None,
    ) -> None:
        self._catalog = catalog
        self._confidence = confidence
        self._instr = instrumentation
        if instrumentation is not None:
            self._c_forced = instrumentation.counter("serve.forced_refreshes")

    @property
    def catalog(self) -> "SampleCatalog":
        return self._catalog

    def execute(
        self,
        name: str,
        freshness: Freshness,
        aggregate: str = "count",
        threshold: int | None = None,
    ) -> ServedAnswer:
        """Answer one query at the requested freshness."""
        if aggregate not in AGGREGATES:
            raise ValueError(f"aggregate must be one of {AGGREGATES}, got {aggregate!r}")
        if self._instr is None:
            return self._execute(name, freshness, aggregate, threshold)
        with self._instr.span(
            "session.read", sample=name, freshness=freshness.label
        ) as span:
            answer = self._execute(name, freshness, aggregate, threshold)
            span.set("staleness", answer.staleness)
            span.set("refreshed", answer.refreshed)
        return answer

    def _execute(
        self,
        name: str,
        freshness: Freshness,
        aggregate: str,
        threshold: int | None,
    ) -> ServedAnswer:
        maintainer = self._catalog.get(name)
        kind = maintainer.kind
        pending = maintainer.pending_log_elements
        # Effective staleness: how many of the rows this query will scan
        # are out of date.  Uniform (kind None) passes pending through
        # unchanged; a window sample caps it at W -- log rows beyond the
        # window displace each other, not additional sample rows.
        effective = pending if kind is None else kind.effective_staleness(pending)
        refreshed = False
        if freshness.requires_refresh(effective, capacity=maintainer.sample.size):
            with maybe_span(
                self._instr, "session.refresh_forced", sample=name, pending=pending
            ):
                maintainer.refresh()
            refreshed = True
            pending = maintainer.pending_log_elements
            effective = (
                pending if kind is None else kind.effective_staleness(pending)
            )
            if self._instr is not None:
                self._c_forced.inc()
        with maybe_span(self._instr, "session.scan", sample=name):
            rows = list(maintainer.sample.scan())
        if kind is not None:
            # Non-uniform rows carry kind payloads (key, sequence); the
            # aggregate estimators see the values, scaled to the kind's
            # represented population (window: the window itself).
            values = [kind.value_of(row) for row in rows]
            population = kind.population()
        else:
            values = rows
            population = maintainer.dataset_size
        query: SampleQuery = SampleQuery(values, population, self._confidence)
        if threshold is not None:
            query = query.where(lambda value: value >= threshold)
        if aggregate == "count":
            estimate = query.count()
        elif aggregate == "fraction":
            estimate = query.fraction()
        else:
            estimate = query.sum(float)
        return ServedAnswer(
            sample=name,
            aggregate=aggregate,
            estimate=estimate,
            dataset_size=population,
            rows_scanned=len(rows),
            staleness=effective,
            refreshed=refreshed,
            freshness=freshness,
        )
