"""Admission control: backpressure for the sample server.

The scheduler models one disk; every ingest batch, refresh job and query
serialises on it.  Under load, queries queue up behind the device, and an
unprotected server would let latency grow without bound.  The admission
controller applies the standard remedies, in cost-model currency:

* **queue-depth limit** -- reject when more than ``max_queue_depth``
  events are already waiting behind the device;
* **wait limit** -- reject when the query would wait more than
  ``max_wait_seconds`` of cost-model time before the device frees up.

Overload handling is either ``shed`` (reject outright -- the caller gets
no answer, counted on ``serve.shed``) or ``defer`` (re-queue the query to
run when the device frees up, counted on ``serve.deferred``; a query is
deferred at most once and is shed if still overloaded at its second
admission check, so deferral cannot loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.api import Instrumentation

__all__ = ["AdmissionDecision", "AdmissionController"]

_ACTIONS = ("shed", "defer")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    action: str  # "admit" | "defer" | "shed"
    wait_seconds: float
    queue_depth: int

    @property
    def admitted(self) -> bool:
        return self.action == "admit"


class AdmissionController:
    """Decides admit / defer / shed for each arriving query.

    With both limits ``None`` (the default) every query is admitted --
    the controller then only maintains the ``serve.queue_depth`` gauge.
    """

    def __init__(
        self,
        max_queue_depth: int | None = None,
        max_wait_seconds: float | None = None,
        overload_action: str = "shed",
        instrumentation: "Instrumentation | None" = None,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative")
        if max_wait_seconds is not None and max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")
        if overload_action not in _ACTIONS:
            raise ValueError(
                f"overload_action must be one of {_ACTIONS}, got {overload_action!r}"
            )
        self.max_queue_depth = max_queue_depth
        self.max_wait_seconds = max_wait_seconds
        self.overload_action = overload_action
        self._instr = instrumentation
        if instrumentation is not None:
            self._c_shed = instrumentation.counter("serve.shed")
            self._c_deferred = instrumentation.counter("serve.deferred")
            self._g_depth = instrumentation.gauge("serve.queue_depth")

    def admit(
        self,
        wait_seconds: float,
        queue_depth: int,
        already_deferred: bool = False,
    ) -> AdmissionDecision:
        """Check one query against the limits and record the outcome."""
        obs = self._instr
        if obs is not None:
            self._g_depth.set(queue_depth)
        overloaded = (
            self.max_queue_depth is not None and queue_depth > self.max_queue_depth
        ) or (
            self.max_wait_seconds is not None and wait_seconds > self.max_wait_seconds
        )
        if not overloaded:
            return AdmissionDecision("admit", wait_seconds, queue_depth)
        if self.overload_action == "defer" and not already_deferred:
            if obs is not None:
                self._c_deferred.inc()
                obs.emit(
                    "serve.query_deferred",
                    wait_seconds=wait_seconds,
                    queue_depth=queue_depth,
                )
            return AdmissionDecision("defer", wait_seconds, queue_depth)
        if obs is not None:
            self._c_shed.inc()
            obs.emit(
                "serve.query_shed",
                wait_seconds=wait_seconds,
                queue_depth=queue_depth,
                already_deferred=already_deferred,
            )
        return AdmissionDecision("shed", wait_seconds, queue_depth)
