"""Serving layer: answer approximate queries from maintained samples.

The paper maintains disk-based samples *so that* queries can be answered
from them (Sec. 1: the sample exists to serve "arbitrary subsequent
queries"); this package adds the component the maintenance layer stops
short of -- a **sample server** that multiplexes ingest batches, deferred
refresh jobs and approximate queries over a catalog of named samples,
under a **deterministic discrete-event scheduler** whose clock is
cost-model seconds (Sec. 6.1 accounting), never wall clocks.  Runs are
bit-reproducible from a seed: two simulations with the same seed produce
byte-identical event traces, AccessStats and estimates.

Pieces:

* :mod:`repro.serve.catalog` -- named samples with manifests persisted
  through superblock checkpoints (crash-recoverable catalog);
* :mod:`repro.serve.scheduler` -- the seeded event loop and the pluggable
  refresh-scheduling policies (FIFO, longest-log-first, deadline);
* :mod:`repro.serve.session` -- the read path (freshness modes
  ``serve_stale`` / ``bounded_staleness(k)`` / ``refresh_on_read``)
  reusing :class:`repro.analysis.SampleQuery`;
* :mod:`repro.serve.admission` -- queue-depth limits and backpressure;
* :mod:`repro.serve.workload` -- seeded synthetic workloads;
* :mod:`repro.serve.sim` -- one-call simulation harness
  (``repro serve-sim`` CLI and the scheduling-policy experiment).
"""

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.catalog import CatalogEntry, SampleCatalog
from repro.serve.scheduler import (
    DeadlineRefresh,
    DeterministicScheduler,
    FifoRefresh,
    LongestLogFirst,
    RefreshScheduling,
    ServeReport,
    make_scheduling_policy,
)
from repro.serve.session import Freshness, QuerySession, ServedAnswer
from repro.serve.sim import SimConfig, run_simulation
from repro.serve.workload import WorkloadEvent, synthetic_workload

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "CatalogEntry",
    "SampleCatalog",
    "DeterministicScheduler",
    "RefreshScheduling",
    "FifoRefresh",
    "LongestLogFirst",
    "DeadlineRefresh",
    "make_scheduling_policy",
    "ServeReport",
    "Freshness",
    "QuerySession",
    "ServedAnswer",
    "SimConfig",
    "run_simulation",
    "WorkloadEvent",
    "synthetic_workload",
]
