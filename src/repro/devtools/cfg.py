"""Per-function control-flow graph with dominance.

Ordering rules (BAR001's "barrier *before* commit") need more than "does
this function call ``flush_barrier`` somewhere" -- a barrier inside the
``else`` branch does not protect a commit in the ``if`` branch.  The CFG
gives rules the standard vocabulary for this: one node per simple
statement, edges following Python's structured control flow, and the
classic iterative **dominator** computation (Cooper/Harvey/Kennedy-style
on the powerset formulation: ``dom(n) = {n} ∪ ⋂ dom(pred)``) so a rule
can ask "is every path from entry to statement B forced through A?".

Granularity is the *statement*: fine enough to order a flush against a
commit, coarse enough that the graph stays linear in the function size.
``try`` is handled conservatively -- every statement in the ``try`` body
may jump to every handler, so nothing inside a ``try`` dominates the
handlers; ``break``/``continue``/``return``/``raise`` cut fall-through
edges exactly as the interpreter would.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFGNode", "FunctionCFG", "build_cfg"]


@dataclass
class CFGNode:
    """One simple statement (or branch header) in the function body."""

    index: int
    stmt: ast.stmt
    succ: set[int] = field(default_factory=set)
    pred: set[int] = field(default_factory=set)

    @property
    def line(self) -> int:
        return self.stmt.lineno


class FunctionCFG:
    """Statement-level CFG plus dominators for one function."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.nodes: list[CFGNode] = []
        self._by_stmt: dict[int, int] = {}
        self._exit_targets: list[int] = []
        builder = _Builder(self)
        entries = builder.block(getattr(func, "body", []), loop=None)
        self.entry: int | None = entries[0] if self.nodes else None
        self._doms = self._dominators()

    # -- construction helpers (used by _Builder) -----------------------------

    def _add(self, stmt: ast.stmt) -> int:
        node = CFGNode(index=len(self.nodes), stmt=stmt)
        self.nodes.append(node)
        self._by_stmt[id(stmt)] = node.index
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        self.nodes[src].succ.add(dst)
        self.nodes[dst].pred.add(src)

    # -- queries -------------------------------------------------------------

    def node_of(self, stmt: ast.stmt) -> CFGNode | None:
        index = self._by_stmt.get(id(stmt))
        return self.nodes[index] if index is not None else None

    def containing(self, inner: ast.AST) -> CFGNode | None:
        """The CFG node whose statement contains *inner* (by position)."""
        best: CFGNode | None = None
        for node in self.nodes:
            stmt = node.stmt
            if not hasattr(inner, "lineno"):
                return None
            end = getattr(stmt, "end_lineno", stmt.lineno)
            if stmt.lineno <= inner.lineno <= end:
                # Prefer the innermost (latest-starting) containing stmt.
                if best is None or stmt.lineno >= best.stmt.lineno:
                    best = node
        return best

    def dominators(self, index: int) -> set[int]:
        """All nodes that dominate ``nodes[index]`` (including itself)."""
        return set(self._doms[index])

    def strictly_dominating(self, index: int) -> list[CFGNode]:
        return [self.nodes[i] for i in sorted(self._doms[index] - {index})]

    def dominates(self, a: int, b: int) -> bool:
        return a in self._doms[b]

    def _dominators(self) -> list[set[int]]:
        n = len(self.nodes)
        if n == 0:
            return []
        entry = self.entry or 0
        everything = set(range(n))
        doms = [everything.copy() for _ in range(n)]
        doms[entry] = {entry}
        changed = True
        while changed:
            changed = False
            for node in self.nodes:
                if node.index == entry:
                    continue
                preds = [doms[p] for p in node.pred]
                new = set.intersection(*preds) if preds else set()
                new = new | {node.index}
                if new != doms[node.index]:
                    doms[node.index] = new
                    changed = True
        # Unreachable nodes keep the full set -- they are dominated by
        # everything vacuously, which is the conservative answer here.
        return doms


class _Builder:
    """Recursive translation of a statement list into CFG edges.

    ``block`` returns the entry node indexes of the list; each call also
    leaves ``self.open`` holding the dangling exits that should flow into
    whatever comes next.
    """

    def __init__(self, cfg: FunctionCFG) -> None:
        self.cfg = cfg
        self.open: list[int] = []

    def block(self, stmts: list[ast.stmt], loop) -> list[int]:
        entries: list[int] = []
        previous_exits: list[int] = []
        first = True
        for stmt in stmts:
            stmt_entries, stmt_exits = self.statement(stmt, loop)
            if not stmt_entries:
                continue
            if first:
                entries = stmt_entries
                first = False
            else:
                for src in previous_exits:
                    for dst in stmt_entries:
                        self.cfg._edge(src, dst)
            previous_exits = stmt_exits
            if not stmt_exits:
                break  # unconditional jump: the rest is unreachable
        self.open = previous_exits
        return entries

    def statement(self, stmt: ast.stmt, loop) -> tuple[list[int], list[int]]:
        cfg = self.cfg
        index = cfg._add(stmt)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg._exit_targets.append(index)
            return [index], []
        if isinstance(stmt, ast.Break):
            if loop is not None:
                loop["breaks"].append(index)
            return [index], []
        if isinstance(stmt, ast.Continue):
            if loop is not None:
                loop["continues"].append(index)
            return [index], []
        if isinstance(stmt, ast.If):
            body_entries = self.block(stmt.body, loop)
            body_exits = self.open
            for entry in body_entries:
                cfg._edge(index, entry)
            if stmt.orelse:
                else_entries = self.block(stmt.orelse, loop)
                else_exits = self.open
                for entry in else_entries:
                    cfg._edge(index, entry)
                return [index], body_exits + else_exits
            return [index], body_exits + [index]
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            inner = {"breaks": [], "continues": []}
            body_entries = self.block(stmt.body, inner)
            body_exits = self.open
            for entry in body_entries:
                cfg._edge(index, entry)
            for src in body_exits + inner["continues"]:
                cfg._edge(src, index)  # back edge
            exits = [index] + inner["breaks"]
            if stmt.orelse:
                else_entries = self.block(stmt.orelse, loop)
                else_exits = self.open
                for entry in else_entries:
                    cfg._edge(index, entry)
                exits = inner["breaks"] + else_exits
            return [index], exits
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            body_entries = self.block(stmt.body, loop)
            body_exits = self.open
            for entry in body_entries:
                cfg._edge(index, entry)
            return [index], body_exits
        if isinstance(stmt, ast.Try):
            body_entries = self.block(stmt.body, loop)
            body_exits = self.open
            body_nodes = [
                n.index
                for n in cfg.nodes
                if any(n.stmt is s for s in ast.walk(stmt))
                and n.index != index
            ]
            for entry in body_entries:
                cfg._edge(index, entry)
            exits = list(body_exits)
            for handler in stmt.handlers:
                handler_entries = self.block(handler.body, loop)
                handler_exits = self.open
                # Conservatively: the handler is reachable from the try
                # header and from any statement in the try body (a raise
                # may interrupt a statement before it completes, so body
                # statements must not dominate anything past the try).
                sources = [index] + body_nodes
                for src in sources:
                    for entry in handler_entries:
                        cfg._edge(src, entry)
                exits.extend(handler_exits)
            if stmt.orelse:
                else_entries = self.block(stmt.orelse, loop)
                else_exits = self.open
                for src in body_exits:
                    for entry in else_entries:
                        cfg._edge(src, entry)
                exits = [e for e in exits if e not in body_exits] + else_exits
            if stmt.finalbody:
                final_entries = self.block(stmt.finalbody, loop)
                final_exits = self.open
                for src in exits:
                    for entry in final_entries:
                        cfg._edge(src, entry)
                exits = final_exits
            return [index], exits
        # Simple statement (Expr/Assign/AugAssign/AnnAssign/Assert/
        # Delete/Global/Nonlocal/Import/Pass/nested def/class/...).
        return [index], [index]


def build_cfg(func: ast.AST) -> FunctionCFG:
    """Build the statement CFG (with dominators) for one function node."""
    return FunctionCFG(func)
