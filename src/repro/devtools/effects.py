"""Effect inference over the project call graph.

Each function gets a **transitive effect set** -- what it may do to the
world, directly or through any chain of project calls:

* ``draws_rng`` -- consumes pseudo-randomness (any call chain bottoming
  out in ``repro.rng``, or an unmanaged ``random``/``numpy.random`` use);
* ``reads_device`` / ``writes_device`` / ``touches_device`` -- block-device
  access (``read_block``/``peek_block`` vs ``write_block``/``poke_block``/
  ``discard``/``discard_from``); ``touches_device`` is the union;
* ``reads_wall_clock`` -- ``time.time``/``monotonic``/``perf_counter``/...;
* ``emits_metric`` -- instrument traffic (``.inc``/``.observe``/``.emit``);
* ``may_flush`` -- reaches a ``flush``/``flush_barrier`` call (the barrier
  primitive BAR001's commit-ordering argument is built on);
* ``may_raise`` -- contains a ``raise`` statement.

Direct effects are syntactic patterns at the call site, so they do not
depend on the call graph resolving the callee: ``self._dev.write_block``
is a device write whatever ``self._dev`` turns out to be.  The transitive
closure then joins callee effects into callers over the resolved edges
until a fixpoint -- the standard bottom-up summary propagation, monotone
on the powerset lattice of effect atoms, so termination is immediate.

Functions defined under ``rng/`` are intrinsically ``draws_rng``: that
package *is* the project's randomness surface, and over-approximating its
helpers keeps the taint analysis sound without executing anything.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.callgraph import FunctionInfo, ProjectAnalysis

__all__ = [
    "EFFECTS",
    "DEVICE_READ_METHODS",
    "DEVICE_WRITE_METHODS",
    "FLUSH_NAMES",
    "CLOCK_CALLS",
    "METRIC_ATTRS",
    "direct_effects",
    "infer_effects",
]

#: The full effect alphabet, in reporting order.
EFFECTS = (
    "draws_rng",
    "reads_device",
    "writes_device",
    "touches_device",
    "reads_wall_clock",
    "emits_metric",
    "may_flush",
    "may_raise",
)

DEVICE_READ_METHODS = frozenset({"read_block", "peek_block"})
DEVICE_WRITE_METHODS = frozenset(
    {"write_block", "poke_block", "discard", "discard_from"}
)
FLUSH_NAMES = frozenset({"flush", "flush_barrier"})
METRIC_ATTRS = frozenset({"inc", "observe", "emit"})
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.thread_time",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
)
#: bare names that, when imported from ``time``, read a wall clock
_CLOCK_SYMBOLS = frozenset(
    {name.split(".", 1)[1] for name in CLOCK_CALLS if name.startswith("time.")}
)


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _walk_own_body(root: ast.AST):
    """Descendants of *root* excluding nested function/class bodies."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def call_effects(call: ast.Call) -> set[str]:
    """Direct effects implied by one call expression's own shape."""
    effects: set[str] = set()
    func = call.func
    if isinstance(func, ast.Attribute):
        attr = func.attr
        if attr in DEVICE_READ_METHODS:
            effects |= {"reads_device", "touches_device"}
        if attr in DEVICE_WRITE_METHODS:
            effects |= {"writes_device", "touches_device"}
        if attr in FLUSH_NAMES:
            effects.add("may_flush")
        if attr in METRIC_ATTRS:
            effects.add("emits_metric")
        dotted = _dotted(func)
        if dotted is not None:
            if dotted in CLOCK_CALLS:
                effects.add("reads_wall_clock")
            parts = dotted.split(".")
            if parts[0] == "random" and len(parts) == 2:
                effects.add("draws_rng")
            if (
                parts[0] in ("np", "numpy")
                and len(parts) >= 3
                and parts[1] == "random"
            ):
                effects.add("draws_rng")
    elif isinstance(func, ast.Name):
        if func.id in FLUSH_NAMES:
            effects.add("may_flush")
    return effects


def direct_effects(fn: "FunctionInfo", analysis: "ProjectAnalysis") -> set[str]:
    """Effects *fn* performs in its own body (no propagation)."""
    effects: set[str] = set()
    if fn.rel_path == "rng" or fn.rel_path.startswith("rng/"):
        effects.add("draws_rng")
    clock_imports = _clock_import_names(fn, analysis)
    for node in _walk_own_body(fn.node):
        if isinstance(node, ast.Raise):
            effects.add("may_raise")
        elif isinstance(node, ast.Call):
            effects |= call_effects(node)
            if isinstance(node.func, ast.Name) and node.func.id in clock_imports:
                effects.add("reads_wall_clock")
    return effects


def _clock_import_names(fn: "FunctionInfo", analysis: "ProjectAnalysis") -> frozenset:
    """Local names bound to stdlib clock functions via ``from time import ...``."""
    names = set()
    for node in fn.module.tree.body:
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_SYMBOLS:
                    names.add(alias.asname or alias.name)
    return frozenset(names)


def infer_effects(analysis: "ProjectAnalysis") -> dict[str, frozenset[str]]:
    """Transitive effect sets: join callee effects into callers to fixpoint."""
    effects: dict[str, set[str]] = {
        qual: direct_effects(fn, analysis)
        for qual, fn in analysis.functions.items()
    }
    callers: dict[str, set[str]] = {qual: set() for qual in analysis.functions}
    for qual, fn in analysis.functions.items():
        for site in fn.calls:
            for target in site.targets:
                if target in callers:
                    callers[target].add(qual)
    worklist = [qual for qual, eff in effects.items() if eff]
    while worklist:
        current = worklist.pop()
        current_effects = effects[current]
        for caller in callers.get(current, ()):
            before = len(effects[caller])
            effects[caller] |= current_effects
            if len(effects[caller]) != before:
                worklist.append(caller)
    return {qual: frozenset(eff) for qual, eff in effects.items()}
