"""Developer tooling: the ``repro lint`` static-analysis framework.

The paper's correctness claims rest on invariants the type system cannot
see -- every random draw must flow through the resettable PRNG in
:mod:`repro.rng` (or Nomem Refresh's state replay silently breaks), and
Algorithms 1-3 must touch disk strictly sequentially (or the cost model
quietly prices the wrong access pattern).  This package makes those
domain invariants machine-checked: an AST-based rule framework with a
registry (:mod:`~repro.devtools.registry`), per-line and per-file
suppression comments (:mod:`~repro.devtools.suppressions`), text/JSON/
SARIF reporters (:mod:`~repro.devtools.reporters`,
:mod:`~repro.devtools.sarif`), a committed-baseline gate
(:mod:`~repro.devtools.baseline`) and a ``repro lint`` CLI subcommand
(:mod:`~repro.devtools.cli`).

The deepest rules are *interprocedural*: a whole-program analysis
engine (:mod:`~repro.devtools.callgraph` for the symbol table and call
graph, :mod:`~repro.devtools.effects` for transitive effect inference,
:mod:`~repro.devtools.cfg` for per-function dominance) lets DET001
trace RNG state through call chains, BAR001 demand a flush barrier on
every path into a superblock commit, and SRV001 keep device writes off
the serving read path.  ``repro lint --dump-graph`` shows the engine's
view.

Rule ids, the invariants they protect and the suppression syntax are
documented in ``docs/static_analysis.md``.

Programmatic use::

    from repro.devtools import run_lint
    findings = run_lint()            # lints the installed repro package
    findings = run_lint(root=path)   # lint a different tree
"""

from repro.devtools.findings import Finding
from repro.devtools.registry import (
    ModuleRule,
    ProjectRule,
    Rule,
    all_rules,
    register,
    resolve_rules,
)
from repro.devtools.callgraph import ProjectAnalysis, analyze_project
from repro.devtools.reporters import format_json, format_text
from repro.devtools.runner import LintRunner, run_lint
from repro.devtools.sarif import render_sarif, to_sarif
from repro.devtools.suppressions import (
    Directive,
    SuppressionIndex,
    parse_suppressions,
)

__all__ = [
    "Finding",
    "Rule",
    "ModuleRule",
    "ProjectRule",
    "register",
    "all_rules",
    "resolve_rules",
    "LintRunner",
    "run_lint",
    "ProjectAnalysis",
    "analyze_project",
    "Directive",
    "SuppressionIndex",
    "parse_suppressions",
    "format_text",
    "format_json",
    "to_sarif",
    "render_sarif",
]
