"""Suppression-comment parsing.

Two forms are recognised, mirroring the usual linter conventions:

* ``# repro-lint: disable=RULE1,RULE2`` as a trailing comment silences the
  listed rules on that physical line only;
* ``# repro-lint: disable-file=RULE1,RULE2`` on a comment-only line
  silences the listed rules for the whole file (conventionally placed near
  the top, next to a comment justifying the exemption).

``all`` is accepted in place of a rule list.  Suppressions are parsed
textually (not from the AST) so they also apply to findings on lines the
parser attributes to a different node of a multi-line statement.

Every directive records which rules it actually silenced during a run, so
the runner can report *unused* suppressions (META001): a directive that
suppressed nothing is either stale (the violation was fixed) or a typo
(wrong rule id, wrong line) -- both worth surfacing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["Directive", "SuppressionIndex", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass
class Directive:
    """One ``repro-lint`` comment, with usage tracking for META001."""

    line: int
    col: int
    kind: str  # "disable" | "disable-file"
    rules: frozenset[str]
    #: rule ids this directive actually silenced during the current run
    used: set[str] = field(default_factory=set)

    @property
    def matched(self) -> bool:
        return bool(self.used)


@dataclass
class SuppressionIndex:
    """Parsed suppression directives for one file."""

    directives: list[Directive] = field(default_factory=list)

    def _applicable(self, rule_id: str, line: int) -> "list[Directive]":
        hits = []
        for directive in self.directives:
            if directive.kind == "disable" and directive.line != line:
                continue
            if "all" in directive.rules or rule_id in directive.rules:
                hits.append(directive)
        return hits

    def is_suppressed(
        self, rule_id: str, line: int, exclude: Directive | None = None
    ) -> bool:
        """True when a directive covers the finding; marks that directive used.

        *exclude* exempts one directive from matching: META001 findings
        about a directive must not be silenceable by that same directive
        (``disable=all`` would otherwise hide its own staleness report).
        """
        hits = [d for d in self._applicable(rule_id, line) if d is not exclude]
        for directive in hits:
            directive.used.add(rule_id)
        return bool(hits)

    # Backwards-compatible views of the pre-directive representation.

    @property
    def file_wide(self) -> set[str]:
        rules: set[str] = set()
        for directive in self.directives:
            if directive.kind == "disable-file":
                rules |= directive.rules
        return rules

    @property
    def by_line(self) -> dict[int, set[str]]:
        lines: dict[int, set[str]] = {}
        for directive in self.directives:
            if directive.kind == "disable":
                lines.setdefault(directive.line, set()).update(directive.rules)
        return lines


def parse_suppressions(source: str) -> SuppressionIndex:
    """Scan *source* line by line for ``repro-lint`` directives."""
    index = SuppressionIndex()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        rules = frozenset(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        index.directives.append(
            Directive(
                line=lineno,
                col=match.start(),
                kind=match.group("kind"),
                rules=rules,
            )
        )
    return index
