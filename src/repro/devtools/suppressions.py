"""Suppression-comment parsing.

Two forms are recognised, mirroring the usual linter conventions:

* ``# repro-lint: disable=RULE1,RULE2`` as a trailing comment silences the
  listed rules on that physical line only;
* ``# repro-lint: disable-file=RULE1,RULE2`` on a comment-only line
  silences the listed rules for the whole file (conventionally placed near
  the top, next to a comment justifying the exemption).

``all`` is accepted in place of a rule list.  Suppressions are parsed
textually (not from the AST) so they also apply to findings on lines the
parser attributes to a different node of a multi-line statement.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["SuppressionIndex", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass
class SuppressionIndex:
    """Parsed suppression directives for one file."""

    file_wide: set[str] = field(default_factory=set)
    by_line: dict[int, set[str]] = field(default_factory=dict)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if "all" in self.file_wide or rule_id in self.file_wide:
            return True
        rules = self.by_line.get(line)
        return rules is not None and ("all" in rules or rule_id in rules)


def parse_suppressions(source: str) -> SuppressionIndex:
    """Scan *source* line by line for ``repro-lint`` directives."""
    index = SuppressionIndex()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        if match.group("kind") == "disable-file":
            index.file_wide |= rules
        else:
            index.by_line.setdefault(lineno, set()).update(rules)
    return index
