"""Rule registry.

Rules self-register at import time via the :func:`register` decorator;
:func:`all_rules` lazily imports :mod:`repro.devtools.rules` so that
importing the registry alone stays cheap and cycle-free.

Two rule flavours exist:

* :class:`ModuleRule` -- visited once per parsed module (the common case);
* :class:`ProjectRule` -- sees every module at once, for cross-file
  invariants such as API001's export consistency check.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Iterable, Type

from repro.devtools.findings import Finding

if TYPE_CHECKING:  # pragma: no cover
    from repro.devtools.runner import ModuleContext, ProjectContext

__all__ = ["Rule", "ModuleRule", "ProjectRule", "register", "all_rules", "resolve_rules"]


class Rule:
    """Base class carrying rule metadata.

    Subclasses set three class attributes:

    * ``id`` -- stable identifier (``"RNG001"``), used in reports and
      suppression comments;
    * ``title`` -- one-line summary;
    * ``rationale`` -- which paper invariant the rule protects.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""


class ModuleRule(Rule):
    """A rule checked independently against each module's AST."""

    def check(self, ctx: "ModuleContext") -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule needing a whole-tree view (cross-file invariants)."""

    def check_project(self, ctx: "ProjectContext") -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate *cls* and add it to the registry."""
    instance = cls()
    if not instance.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if instance.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id!r}")
    _REGISTRY[instance.id] = instance
    return cls


def all_rules() -> dict[str, Rule]:
    """The full registry, importing the built-in rule suite on first use."""
    importlib.import_module("repro.devtools.rules")
    return dict(_REGISTRY)


def resolve_rules(ids: Iterable[str] | None = None) -> list[Rule]:
    """Return the rules named by *ids* (all rules when *ids* is None)."""
    registry = all_rules()
    if ids is None:
        return [registry[key] for key in sorted(registry)]
    resolved = []
    for rule_id in ids:
        key = rule_id.strip().upper()
        if key not in registry:
            known = ", ".join(sorted(registry))
            raise KeyError(f"unknown rule {rule_id!r} (known: {known})")
        resolved.append(registry[key])
    return resolved
