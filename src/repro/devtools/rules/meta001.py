"""META001: suppression directives that silenced nothing.

A ``# repro-lint: disable=...`` comment that matches no finding is either
stale (the violation it excused was fixed -- delete the comment so the
rule guards the line again) or wrong (a typo'd rule id or a comment on
the wrong line -- in which case the violation it *meant* to excuse is
being reported anyway, or worse, a future one will be silently eaten).

The detection itself lives in the runner
(:meth:`~repro.devtools.runner.LintRunner._unused_suppressions`), because
only the runner sees which directives matched findings after all rules
ran; this class exists so META001 participates in the registry like any
other rule -- selectable via ``--rules``, documented in the catalogue,
and subject to the docs-drift test.  The runner emits META001 findings
only when this rule is part of the active rule set, and only judges
directives naming rules that actually ran (an ``ARG001``-only run says
nothing about a ``TIME001`` suppression).
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import ProjectRule, register
from repro.devtools.runner import ProjectContext

__all__ = ["UnusedSuppressionRule"]


@register
class UnusedSuppressionRule(ProjectRule):
    id = "META001"
    title = "suppression comment matched no finding"
    rationale = (
        "Stale suppressions re-open the hole the rule was guarding; "
        "typo'd ones never guarded anything. Either way the comment "
        "lies about the code next to it."
    )

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        # Emission happens in LintRunner after suppression matching; this
        # registry entry only opts the rule into the run.
        return iter(())
