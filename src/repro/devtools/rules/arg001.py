"""ARG001: no mutable default arguments.

A mutable default (``def f(x=[])``) is evaluated once at definition time
and shared across calls.  In a library whose correctness claims rest on
refreshes being independent replays, state accidentally carried between
calls through a default is particularly insidious; the rule applies to
the whole tree.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import ModuleRule, register
from repro.devtools.runner import ModuleContext

__all__ = ["MutableDefaultRule"]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


@register
class MutableDefaultRule(ModuleRule):
    id = "ARG001"
    title = "no mutable default arguments"
    rationale = (
        "defaults are evaluated once and shared across calls; hidden "
        "cross-call state breaks replay independence"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [
                *node.args.defaults,
                *(d for d in node.args.kw_defaults if d is not None),
            ]
            for default in defaults:
                if _is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield Finding(
                        path=ctx.rel_path,
                        line=default.lineno,
                        col=default.col_offset,
                        rule_id=self.id,
                        message=(
                            f"mutable default argument in '{name}': use "
                            "None and construct inside the function"
                        ),
                    )
