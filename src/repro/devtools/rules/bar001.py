"""BAR001: every superblock commit must be dominated by a flush barrier.

The dual-slot checkpoint protocol (docs/storage.md, paper Sec. 6.2's
recovery discussion) is only atomic if the *data* a checkpoint describes
is durable before the superblock that points at it: flush sample/log
devices, then write the superblock, then flush again.  The second flush
lives inside ``CheckpointStore.save`` itself; the *first* one is the
caller's job, and skipping it silently yields a superblock that can
reference unwritten blocks after a crash -- the recovery test only fails
when the crash actually lands in the window.

The rule finds every call site whose resolved target is a checkpoint
``save`` (any class named ``*CheckpointStore*``) and demands a flush on
every path leading to it, in dominance terms: some statement that
*strictly dominates* the commit statement -- or an expression evaluated
within the commit statement itself, e.g. ``store.save(m.checkpoint_state())``
-- must carry the ``may_flush`` effect, directly or through its callees.
A flush in only one branch of an ``if``, or after the commit, does not
dominate it and is correctly rejected.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import ProjectRule, register
from repro.devtools.runner import ProjectContext

__all__ = ["CommitBarrierRule"]


def _calls_under(node: ast.AST) -> Iterator[ast.Call]:
    """Call expressions in *node*'s own expressions.

    Nested statements are excluded on purpose: they are separate CFG
    nodes, so a flush inside an ``if`` *body* must not be credited to the
    ``if`` header when the header is what dominates the commit.  For
    compound statements this leaves exactly the parts evaluated
    unconditionally: the ``if``/``while`` test, the ``for`` iterable, the
    ``with`` context expressions.
    """
    stack: list[ast.AST] = [
        child
        for child in ast.iter_child_nodes(node)
        if not isinstance(child, ast.stmt)
    ]
    while stack:
        current = stack.pop()
        if isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


@register
class CommitBarrierRule(ProjectRule):
    id = "BAR001"
    title = "superblock commit not dominated by a flush barrier"
    rationale = (
        "Dual-slot recovery (docs/storage.md) assumes checkpointed data "
        "is durable before the superblock references it; a commit path "
        "without a dominating flush can survive every test and still "
        "lose the sample on a crash in the write-back window."
    )

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        from repro.devtools.callgraph import analyze_project
        from repro.devtools.cfg import build_cfg
        from repro.devtools.effects import call_effects

        analysis = analyze_project(ctx)
        commit_roots = {
            qual
            for qual, fn in analysis.functions.items()
            if fn.name == "save"
            and fn.cls is not None
            and "CheckpointStore" in fn.cls
        }
        if not commit_roots:
            return
        effects = analysis.effects

        def call_flushes(call: ast.Call, site_index: dict) -> bool:
            if "may_flush" in call_effects(call):
                return True
            site = site_index.get(id(call))
            if site is None:
                return False
            return any("may_flush" in effects.get(t, ()) for t in site.targets)

        for fn_qual in sorted(analysis.functions):
            fn = analysis.functions[fn_qual]
            if fn_qual in commit_roots:
                continue  # the root supplies its own trailing barrier
            commit_sites = [
                site
                for site in fn.calls
                if site.node is not None and set(site.targets) & commit_roots
            ]
            if not commit_sites:
                continue
            cfg = build_cfg(fn.node)
            site_index = {
                id(site.node): site for site in fn.calls if site.node is not None
            }
            for site in commit_sites:
                commit_node = cfg.containing(site.node)
                covered = False
                if commit_node is not None:
                    # The commit statement itself: any *other* call it
                    # evaluates (argument position) that flushes counts --
                    # it runs before the commit by evaluation order.
                    for call in _calls_under(commit_node.stmt):
                        if call is site.node:
                            continue
                        if call_flushes(call, site_index):
                            covered = True
                            break
                    if not covered:
                        for dom in cfg.strictly_dominating(commit_node.index):
                            if any(
                                call_flushes(call, site_index)
                                for call in _calls_under(dom.stmt)
                            ):
                                covered = True
                                break
                if not covered:
                    yield Finding(
                        path=fn.rel_path,
                        line=site.line,
                        col=site.col,
                        rule_id=self.id,
                        message=(
                            f"checkpoint commit '{site.name}' in "
                            f"'{fn.name}' is not dominated by a flush "
                            "barrier: flush the sample/log devices on "
                            "every path before writing the superblock"
                        ),
                    )
