"""API001: the package's public surface is consistent.

Every name re-exported from ``repro/__init__.py`` (i.e. listed in its
``__all__``) must also appear in ``__all__`` of the submodule it is
imported from.  This keeps ``from repro import X`` and
``from repro.core import *`` views of the API in lockstep, so a refactor
cannot silently orphan a public name.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.astutil import literal_all
from repro.devtools.findings import Finding
from repro.devtools.registry import ProjectRule, register
from repro.devtools.runner import ModuleContext, ProjectContext

__all__ = ["ExportConsistencyRule"]

PACKAGE = "repro"


def _submodule_rel_path(module: str) -> list[str]:
    """Candidate root-relative paths for a dotted submodule name."""
    if module == PACKAGE:
        return ["__init__.py"]
    if module.startswith(PACKAGE + "."):
        module = module[len(PACKAGE) + 1 :]
    stem = module.replace(".", "/")
    return [f"{stem}/__init__.py", f"{stem}.py"]


@register
class ExportConsistencyRule(ProjectRule):
    id = "API001"
    title = "root exports must appear in their submodule's __all__"
    rationale = (
        "the root __init__ is a re-export surface; a name absent from its "
        "source module's __all__ is an API that star-imports cannot see"
    )

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        root_init = ctx.module("__init__.py")
        if root_init is None:
            return
        exported = literal_all(root_init.tree)
        if exported is None:
            return
        exported_set = set(exported)
        for node in root_init.tree.body:
            if not isinstance(node, ast.ImportFrom):
                continue
            module = node.module or ""
            if node.level:  # relative import: resolve against the package
                module = f"{PACKAGE}.{module}" if module else PACKAGE
            if module != PACKAGE and not module.startswith(PACKAGE + "."):
                continue
            submodule = self._find(ctx, module)
            for alias in node.names:
                if alias.name == "*":
                    continue
                public_name = alias.asname or alias.name
                if public_name not in exported_set:
                    continue
                if submodule is None:
                    yield self._finding(
                        root_init,
                        node.lineno,
                        f"'{public_name}' is imported from '{module}', "
                        "which the linter cannot locate under the root",
                    )
                    continue
                sub_all = literal_all(submodule.tree)
                if sub_all is None:
                    yield self._finding(
                        root_init,
                        node.lineno,
                        f"'{public_name}' comes from '{module}', which has "
                        "no literal __all__",
                    )
                elif alias.name not in sub_all:
                    yield self._finding(
                        root_init,
                        node.lineno,
                        f"'{alias.name}' is exported at the root but missing "
                        f"from __all__ of '{module}'",
                    )

    def _find(self, ctx: ProjectContext, module: str) -> ModuleContext | None:
        for rel in _submodule_rel_path(module):
            found = ctx.module(rel)
            if found is not None:
                return found
        return None

    def _finding(self, ctx: ModuleContext, line: int, message: str) -> Finding:
        return Finding(
            path=ctx.rel_path, line=line, col=0, rule_id=self.id, message=message
        )
