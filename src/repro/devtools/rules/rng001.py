"""RNG001: all randomness flows through ``repro.rng``.

Nomem Refresh (Alg. 3, Sec. 4.3) and the full-log adapter (Sec. 5) are
correct only because every variate they consume comes from a PRNG whose
state can be snapshotted and replayed.  Any module that touches the
stdlib ``random`` module or ``numpy.random`` directly creates a second,
unmanaged stream of randomness: global-state seeding would silently
decouple replays from the original draw sequence.  This rule bans both
outside ``rng/`` itself; seeded numpy generators must come from
:func:`repro.rng.numpy_generator`.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterable, Iterator, Tuple

from repro.devtools.astutil import dotted_name
from repro.devtools.findings import Finding
from repro.devtools.registry import ModuleRule, register
from repro.devtools.runner import ModuleContext

__all__ = ["RngDisciplineRule", "TYPE_ONLY_NAMES"]

# Attribute names under numpy.random that denote *types* (annotations,
# isinstance checks), not stateful draws or generator construction.
TYPE_ONLY_NAMES = frozenset({"Generator", "BitGenerator", "SeedSequence"})

# (rel-path glob, attribute) pairs exempted by configuration rather than
# per-line comments.  Empty by default: the tree routes every numpy
# generator through repro.rng.numpy_generator.
DEFAULT_ALLOWLIST: Tuple[Tuple[str, str], ...] = ()


@register
class RngDisciplineRule(ModuleRule):
    id = "RNG001"
    title = "randomness must flow through repro.rng"
    rationale = (
        "Nomem Refresh (Alg. 3) replays PRNG state; random draws outside "
        "repro.rng cannot be snapshotted or replayed (paper Sec. 4.3, 5)."
    )

    def __init__(
        self, allowlist: Iterable[Tuple[str, str]] = DEFAULT_ALLOWLIST
    ) -> None:
        self.allowlist = tuple(allowlist)

    def _allowed(self, rel_path: str, attr: str) -> bool:
        return any(
            fnmatch(rel_path, pattern) and attr == name
            for pattern, name in self.allowlist
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_dir("rng"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self._finding(
                            ctx, node, "import of stdlib 'random'"
                        )
                    elif alias.name in ("numpy.random",) or alias.name.startswith(
                        "numpy.random."
                    ):
                        yield self._finding(ctx, node, f"import of '{alias.name}'")
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "random" or module.startswith("random."):
                    yield self._finding(ctx, node, "import from stdlib 'random'")
                elif module == "numpy" and any(
                    alias.name == "random" for alias in node.names
                ):
                    yield self._finding(ctx, node, "import of 'numpy.random'")
                elif module == "numpy.random" or module.startswith("numpy.random."):
                    flagged = [
                        alias.name
                        for alias in node.names
                        if alias.name not in TYPE_ONLY_NAMES
                    ]
                    if flagged:
                        yield self._finding(
                            ctx,
                            node,
                            f"import of numpy.random names {flagged}",
                        )
            elif isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if parts[0] in ("np", "numpy") and len(parts) >= 3 and parts[1] == "random":
                    attr = parts[2]
                    if attr in TYPE_ONLY_NAMES or self._allowed(ctx.rel_path, attr):
                        continue
                    yield self._finding(ctx, node, f"use of '{dotted}'")
                elif parts[0] == "random" and len(parts) == 2:
                    # stdlib module attribute; bare names called 'random'
                    # (locals, params) don't produce Attribute roots here
                    # unless they shadow the module, which the import rule
                    # above already catches.
                    yield self._finding(ctx, node, f"use of '{dotted}'")

    def _finding(self, ctx: ModuleContext, node: ast.AST, what: str) -> Finding:
        return Finding(
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.id,
            message=(
                f"{what}: draw randomness via repro.rng (RandomSource, or "
                "numpy_generator(seed) for numpy Generators) so PRNG state "
                "stays replayable"
            ),
        )
