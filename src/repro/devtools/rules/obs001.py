"""OBS001: instrument names come from the catalogue, not ad-hoc strings.

Every ``counter("...")`` / ``gauge("...")`` / ``histogram("...")`` emit
site with a literal name must (a) use a lowercase dotted identifier and
(b) name an instrument declared in ``repro/obs/catalogue.py``'s literal
``INSTRUMENTS`` dict.  The registry enforces membership at runtime too,
but only on code paths a test happens to execute; the lint makes the
telemetry surface statically complete, so a renamed or invented metric
cannot ship silently.  Names built at runtime (non-literal first
arguments) are out of static reach and left to the runtime check.

The same discipline covers **trace spans** under ``serve/``,
``storage/``, ``replication/`` and ``fleet/``: every ``span("...")`` /
``maybe_span(obs, "...")`` site
with a literal name must name a span declared in the catalogue's
``SPANS`` dict, because the ``repro trace`` tooling and the SLO report
key on those names.  Core modules are exempt from the span check for
now -- their legacy single-segment names (``insert``, ``refresh``)
predate the catalogue and are covered by the span-name inventory
itself, not the emit-site lint.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import ProjectRule, register
from repro.devtools.runner import ModuleContext, ProjectContext

__all__ = ["InstrumentNameRule"]

#: Mirrors ``repro.obs.instruments.INSTRUMENT_NAME_RE`` (kept literal here
#: so the linter does not import the package it lints).
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

CATALOGUE_REL_PATH = "obs/catalogue.py"
EMIT_METHODS = frozenset({"counter", "gauge", "histogram"})
#: Module prefixes whose span emit sites must use catalogued names.
SPAN_CHECKED_PREFIXES = ("serve/", "storage/", "replication/", "fleet/")


def _literal_dict_keys(ctx: ProjectContext, variable: str) -> set[str] | None:
    """Literal string keys of a module-level dict in the tree's catalogue.

    Returns None when the tree has no catalogue module or the dict is
    absent (scratch trees in the rule tests) -- then only the name-shape
    check applies.
    """
    module = ctx.module(CATALOGUE_REL_PATH)
    if module is None:
        return None
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if variable not in targets or not isinstance(node.value, ast.Dict):
            continue
        return {
            key.value
            for key in node.value.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
    return None


def catalogue_names(ctx: ProjectContext) -> set[str] | None:
    """Literal keys of ``INSTRUMENTS`` in the linted tree's catalogue."""
    return _literal_dict_keys(ctx, "INSTRUMENTS")


def span_names(ctx: ProjectContext) -> set[str] | None:
    """Literal keys of ``SPANS`` in the linted tree's catalogue."""
    return _literal_dict_keys(ctx, "SPANS")


def _span_name_node(node: ast.Call) -> ast.Constant | None:
    """The literal span-name argument of a span emit site, if any.

    Matches ``<expr>.span("name", ...)`` attribute calls (Tracer and
    Instrumentation share the method name) and ``maybe_span(obs,
    "name", ...)`` guard calls; ``trace_context`` ids are per-request
    values, not names, and stay out of scope.
    """
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "span" and node.args:
        candidate = node.args[0]
    elif (
        isinstance(func, ast.Name)
        and func.id == "maybe_span"
        and len(node.args) >= 2
    ):
        candidate = node.args[1]
    else:
        return None
    if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
        return candidate
    return None


@register
class InstrumentNameRule(ProjectRule):
    id = "OBS001"
    title = "instrument names must be registered in the obs catalogue"
    rationale = (
        "the telemetry surface is reviewable only if every metric name is "
        "declared once, centrally; ad-hoc literals at emit sites drift"
    )

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        declared = catalogue_names(ctx)
        spans = span_names(ctx)
        for module in ctx.modules:
            if module.rel_path == CATALOGUE_REL_PATH:
                continue
            yield from self._check_module(module, declared)
            if spans is not None and module.rel_path.startswith(
                SPAN_CHECKED_PREFIXES
            ):
                yield from self._check_spans(module, spans)

    def _check_spans(
        self, ctx: ModuleContext, spans: set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name_node = _span_name_node(node)
            if name_node is None or name_node.value in spans:
                continue
            yield Finding(
                path=ctx.rel_path,
                line=name_node.lineno,
                col=name_node.col_offset,
                rule_id=self.id,
                message=(
                    f"span name {name_node.value!r} is not declared in "
                    "obs/catalogue.py SPANS; register it there so 'repro "
                    "trace' and the SLO report can key on it"
                ),
            )

    def _check_module(
        self, ctx: ModuleContext, declared: set[str] | None
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in EMIT_METHODS:
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not isinstance(first, ast.Constant) or not isinstance(first.value, str):
                continue
            name = first.value
            if not NAME_RE.match(name):
                yield Finding(
                    path=ctx.rel_path,
                    line=first.lineno,
                    col=first.col_offset,
                    rule_id=self.id,
                    message=(
                        f"instrument name {name!r} is not a lowercase dotted "
                        "identifier (e.g. 'maintenance.inserts')"
                    ),
                )
            elif declared is not None and name not in declared:
                yield Finding(
                    path=ctx.rel_path,
                    line=first.lineno,
                    col=first.col_offset,
                    rule_id=self.id,
                    message=(
                        f"instrument name {name!r} is not declared in "
                        "obs/catalogue.py INSTRUMENTS; register it there "
                        "instead of inventing names at the emit site"
                    ),
                )
