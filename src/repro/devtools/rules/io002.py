"""IO002: the device layer is reachable only from inside ``repro.storage``.

The storage engine has a strict layering: device -> buffer pool -> file
layer -> consumers (see docs/storage.md).  Everything above the file
layer -- core/refresh algorithms, logs, maintenance, serve, experiments --
must do its I/O through :class:`~repro.storage.files.SampleFile` /
:class:`~repro.storage.files.LogFile` (or through the pool's barrier
helpers), because those are where the paper's charging rules live
(Sec. 6.1 classification, coalescing, the truncate seek).  A raw
``read_block``/``write_block`` call above the storage layer would charge
unclassified I/O the cost figures never account for, and would bypass
the buffer pool entirely, splitting the view of a block between pooled
and unpooled readers.

``peek_block``/``poke_block``/``discard``/``discard_from`` are banned at
the same boundary: uncharged device access outside the storage layer is
how accounting bugs hide.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import ModuleRule, register
from repro.devtools.runner import ModuleContext

__all__ = ["DeviceBoundaryRule", "DEVICE_METHODS"]

DEVICE_METHODS = frozenset(
    {
        "read_block",
        "write_block",
        "peek_block",
        "poke_block",
        "discard",
        "discard_from",
    }
)


@register
class DeviceBoundaryRule(ModuleRule):
    id = "IO002"
    title = "block devices may only be touched from repro.storage"
    rationale = (
        "Charging rules and the buffer pool live in the storage layer; "
        "raw block I/O above it bypasses both (docs/storage.md)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_dir("storage"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in DEVICE_METHODS:
                yield Finding(
                    path=ctx.rel_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.id,
                    message=(
                        f"call to '{func.attr}' outside repro.storage: go "
                        "through SampleFile/LogFile or the BufferPool API so "
                        "the paper's charging rules and the page cache apply"
                    ),
                )
