"""BAR002: commit sites are dominated by the *group* commit barrier.

BAR001 demands that a checkpoint commit sees *some* flush first; with
replication in the tree (docs/replication.md) that is no longer enough.
The replica replays sealed commit batches, and a batch is only safe to
ship if every device of the sample group -- sample file, candidate log,
superblock manifest -- was written back under **one**
:class:`~repro.storage.group_commit.GroupCommitBarrier` before the batch
was sealed.  A per-device flush keeps the primary durable but lets the
replication stream ship a torn multi-device view, which recovery then
faithfully reproduces.

Two commit shapes are checked, in the same dominance terms as BAR001:

* **Checkpoint commits** -- call sites resolving to ``save`` on any
  ``*CheckpointStore*`` class must be covered (argument position, or a
  strictly-dominating statement) by a call that *reaches a group
  commit*: its resolved targets include, or transitively call, a
  ``commit`` method of a ``*GroupCommit*`` class.  This is a
  may-analysis over the call graph, the same approximation BAR001 makes
  with transitive ``may_flush`` effects.
* **Replication seals** -- ``<expr>.seal(...)`` attribute calls (the
  :class:`~repro.replication.link.ReplicationLink` hand-off inside the
  barrier; matched by name because the link attribute is duck-typed)
  must be dominated by a flushing call, so a sealed batch only ever
  describes blocks that are already durable on the primary.

The roots themselves are exempt: ``save`` supplies its own trailing
barrier and ``GroupCommitBarrier.commit`` *is* the barrier -- but the
seal inside ``commit`` is still checked, which is exactly why its flush
phase is a separate statement preceding the seal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import ProjectRule, register
from repro.devtools.runner import ProjectContext
from repro.devtools.rules.bar001 import _calls_under

__all__ = ["GroupCommitBarrierRule"]


def _is_seal_site(node: ast.Call | None) -> bool:
    return (
        node is not None
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "seal"
    )


@register
class GroupCommitBarrierRule(ProjectRule):
    id = "BAR002"
    title = "commit site not dominated by the group commit barrier"
    rationale = (
        "Replica state is a prefix of commit batches; a checkpoint "
        "committed outside the group barrier, or a batch sealed before "
        "its blocks are durable, ships a torn multi-device view that "
        "recovery reproduces bit-for-bit."
    )

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        from repro.devtools.callgraph import analyze_project
        from repro.devtools.cfg import build_cfg
        from repro.devtools.effects import call_effects

        analysis = analyze_project(ctx)
        commit_roots = {
            qual
            for qual, fn in analysis.functions.items()
            if fn.name == "save"
            and fn.cls is not None
            and "CheckpointStore" in fn.cls
        }
        group_roots = {
            qual
            for qual, fn in analysis.functions.items()
            if fn.name == "commit"
            and fn.cls is not None
            and "GroupCommit" in fn.cls
        }
        # Everything from which a group commit is reachable through the
        # call graph (callers-closure over the roots).
        reaches_group = set(group_roots)
        frontier = list(group_roots)
        while frontier:
            for caller in analysis.callers(frontier.pop()):
                if caller not in reaches_group:
                    reaches_group.add(caller)
                    frontier.append(caller)
        effects = analysis.effects

        def call_flushes(call: ast.Call, site_index: dict) -> bool:
            if "may_flush" in call_effects(call):
                return True
            site = site_index.get(id(call))
            if site is None:
                return False
            return any("may_flush" in effects.get(t, ()) for t in site.targets)

        def call_group_commits(call: ast.Call, site_index: dict) -> bool:
            site = site_index.get(id(call))
            if site is None:
                return False
            return any(target in reaches_group for target in site.targets)

        for fn_qual in sorted(analysis.functions):
            fn = analysis.functions[fn_qual]
            checkpoint_sites = (
                []
                if fn_qual in commit_roots or not group_roots
                else [
                    site
                    for site in fn.calls
                    if site.node is not None and set(site.targets) & commit_roots
                ]
            )
            seal_sites = [site for site in fn.calls if _is_seal_site(site.node)]
            if not checkpoint_sites and not seal_sites:
                continue
            cfg = build_cfg(fn.node)
            site_index = {
                id(site.node): site for site in fn.calls if site.node is not None
            }

            def covered(site, qualifies) -> bool:
                node = cfg.containing(site.node)
                if node is None:
                    return False
                # Calls the commit statement itself evaluates (argument
                # position) run first by evaluation order and count.
                for call in _calls_under(node.stmt):
                    if call is not site.node and qualifies(call, site_index):
                        return True
                return any(
                    qualifies(call, site_index)
                    for dom in cfg.strictly_dominating(node.index)
                    for call in _calls_under(dom.stmt)
                )

            for site in checkpoint_sites:
                if not covered(site, call_group_commits):
                    yield Finding(
                        path=fn.rel_path,
                        line=site.line,
                        col=site.col,
                        rule_id=self.id,
                        message=(
                            f"checkpoint commit '{site.name}' in "
                            f"'{fn.name}' is not dominated by a group "
                            "commit barrier: run GroupCommitBarrier.commit "
                            "over the sample group on every path before "
                            "the superblock commit, or the replication "
                            "stream can ship a torn multi-device view"
                        ),
                    )
            for site in seal_sites:
                if not covered(site, call_flushes):
                    yield Finding(
                        path=fn.rel_path,
                        line=site.line,
                        col=site.col,
                        rule_id=self.id,
                        message=(
                            f"replication seal '{site.name}' in "
                            f"'{fn.name}' is not dominated by a flush "
                            "barrier: a sealed commit batch must only "
                            "describe blocks already durable on the "
                            "primary"
                        ),
                    )
