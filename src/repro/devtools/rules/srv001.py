"""SRV001: the serving read path must not write to devices.

The serving layer's contract (docs/serving.md) is that *queries are
reads*: a ``QuerySession`` answers from the in-memory sample or pooled
pages, and every device mutation -- log appends, refresh write-backs,
checkpoint commits -- happens through the refresh-job surface, where the
scheduler serialises it against other maintenance.  A device write
smuggled onto the query path (through any chain of helpers) would race
the maintenance work the paper's deferred-refresh argument assumes is
exclusive, and would make query latency depend on device state.

The rule walks the call graph from every public ``QuerySession`` method,
*stopping at* functions named ``refresh`` -- that is the sanctioned
hand-off to the maintenance surface -- and flags any reached function
whose own body performs a device write (``write_block``/``poke_block``/
``discard``/``discard_from``).  Direct effects are used, not transitive
ones, precisely so the sanctioned refresh boundary does not leak its
effects back into the read path's verdict.
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import ProjectRule, register
from repro.devtools.runner import ProjectContext

__all__ = ["ServeReadPathRule"]

#: the sanctioned mutation hand-off: calls to these names are not traversed
REFRESH_SURFACE_NAMES = frozenset({"refresh"})


@register
class ServeReadPathRule(ProjectRule):
    id = "SRV001"
    title = "device write reachable from the QuerySession read path"
    rationale = (
        "Deferred maintenance assumes queries read and refresh jobs "
        "write (docs/serving.md); a write reachable from the query path "
        "races the maintenance surface and breaks the cost accounting."
    )

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        from repro.devtools.callgraph import analyze_project
        from repro.devtools.effects import direct_effects

        analysis = analyze_project(ctx)
        entry_points = sorted(
            method_qual
            for cls in analysis.classes.values()
            if cls.name == "QuerySession"
            and (cls.rel_path == "serve" or cls.rel_path.startswith("serve/"))
            for method_name, method_qual in cls.methods.items()
            if not method_name.startswith("_")
        )
        if not entry_points:
            return
        stop = {
            qual
            for qual, fn in analysis.functions.items()
            if fn.name in REFRESH_SURFACE_NAMES
        }
        reached = analysis.reachable(entry_points, stop=stop)
        entry_set = set(entry_points)
        for qual in sorted(reached):
            fn = analysis.functions[qual]
            if "writes_device" not in direct_effects(fn, analysis):
                continue
            via = "" if qual in entry_set else " (reached through the call graph)"
            yield Finding(
                path=fn.rel_path,
                line=fn.line,
                col=fn.col,
                rule_id=self.id,
                message=(
                    f"'{fn.name}' writes to a block device and is "
                    f"reachable from QuerySession entry points{via}: "
                    "route mutations through the refresh-job surface"
                ),
            )
