"""IO001: refresh algorithms perform sequential I/O only.

Algorithms 1-3 (Array, Stack and Nomem Refresh, Sec. 4) owe their entire
cost advantage to reading the log and rewriting the sample *sequentially*;
the paper's cost model (Sec. 6.1) prices their refresh phase with
sequential access times.  A random-access call slipping into
``core/refresh/`` would keep tests green while silently invalidating
every cost figure.  This rule bans the random-access and raw block-level
entry points of the storage layer inside that package.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import ModuleRule, register
from repro.devtools.runner import ModuleContext

__all__ = ["SequentialIoRule", "BANNED_METHODS"]

BANNED_METHODS = frozenset(
    {"read_random", "write_random", "peek_block", "poke_block"}
)


@register
class SequentialIoRule(ModuleRule):
    id = "IO001"
    title = "core/refresh/ must not issue random-access I/O"
    rationale = (
        "Algs. 1-3 claim sequential-only refresh I/O; the cost model "
        "prices them accordingly (paper Sec. 4, 6.1)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_dir("core/refresh"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in BANNED_METHODS:
                yield Finding(
                    path=ctx.rel_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.id,
                    message=(
                        f"call to '{func.attr}' inside core/refresh/: "
                        "Algs. 1-3 are sequential-only; random access here "
                        "invalidates the cost model's pricing"
                    ),
                )
