"""DET001: no module-global RNG may be reachable from core/serve/storage.

The paper's correctness story (Gemulla & Lehner, Sec. 3-5) is stated for
a *seeded* sample: every accept/reject decision, every skip count and
every eviction choice must come from the one ``RandomSource`` stream the
experiment was seeded with, or replays diverge bit-for-bit.  A
module-global RNG (``_rng = Random()`` at import time) is the classic
way this breaks: it is seeded once per *process*, shared across samples,
and invisible in the call signature -- so a refresh run that merely
imports the module in a different order produces different samples.

This is the engine's taint rule: the analysis marks every module-level
RNG binding in the tree, then every function that reads one directly,
then propagates that taint *up the call graph* to a fixpoint.  Any
tainted function living under ``core/``, ``serve/`` or ``storage/`` is a
finding -- whether it touches the global itself or reaches it through an
arbitrary chain of helpers in other packages.  (RNG001 keeps catching
unmanaged ``random.random()`` call sites per-file; DET001 catches the
hidden-state flow RNG001 cannot see.)
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import ProjectRule, register
from repro.devtools.runner import ProjectContext

__all__ = ["RngTaintRule", "SCOPE_DIRS"]

#: packages where determinism is load-bearing (the paper's algorithms,
#: the serving read path, and the storage engine under both)
SCOPE_DIRS = ("core", "serve", "storage")


def _in_scope(rel_path: str) -> bool:
    return any(
        rel_path == d or rel_path.startswith(d + "/") for d in SCOPE_DIRS
    )


@register
class RngTaintRule(ProjectRule):
    id = "DET001"
    title = "module-global RNG state reachable from core/serve/storage"
    rationale = (
        "Reproducibility requires every random decision to come from the "
        "seeded per-sample stream (paper Sec. 3); import-time RNG state is "
        "process-wide and order-dependent, so any path from the "
        "deterministic packages to it breaks bit-identical replay."
    )

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        from repro.devtools.callgraph import analyze_project

        analysis = analyze_project(ctx)
        if not analysis.rng_globals:
            return

        # The bindings themselves, when they live inside the scoped dirs.
        for qual in sorted(analysis.rng_globals):
            rel_path, name = qual.split("::", 1)
            if _in_scope(rel_path):
                yield Finding(
                    path=rel_path,
                    line=analysis.rng_globals[qual],
                    col=0,
                    rule_id=self.id,
                    message=(
                        f"module-global RNG '{name}' defined in a "
                        "determinism-scoped package: construct the stream "
                        "inside the experiment and pass it explicitly"
                    ),
                )

        # Taint: function -> set of global RNG qualnames it can reach.
        taint: dict[str, set[str]] = {}
        for fn_qual, fn in analysis.functions.items():
            if fn.rng_global_uses:
                taint[fn_qual] = {use[0] for use in fn.rng_global_uses}
        worklist = list(taint)
        while worklist:
            current = worklist.pop()
            for caller in analysis.callers(current):
                merged = taint.setdefault(caller, set())
                before = len(merged)
                merged |= taint[current]
                if len(merged) != before:
                    worklist.append(caller)

        for fn_qual in sorted(taint):
            fn = analysis.functions[fn_qual]
            if not _in_scope(fn.rel_path):
                continue
            if fn.rng_global_uses:
                for global_qual, line, col in sorted(fn.rng_global_uses):
                    yield Finding(
                        path=fn.rel_path,
                        line=line,
                        col=col,
                        rule_id=self.id,
                        message=(
                            f"'{fn.name}' reads module-global RNG "
                            f"'{global_qual}': thread the seeded "
                            "RandomSource through instead"
                        ),
                    )
                continue
            # Tainted only transitively: report the first call site whose
            # target chain reaches a global, so the finding points at the
            # edge that imports the hidden state.
            for site in sorted(fn.calls, key=lambda s: (s.line, s.col)):
                reached = {
                    g
                    for target in site.targets
                    for g in taint.get(target, ())
                }
                if reached:
                    yield Finding(
                        path=fn.rel_path,
                        line=site.line,
                        col=site.col,
                        rule_id=self.id,
                        message=(
                            f"call to '{site.name}' reaches module-global "
                            f"RNG {', '.join(sorted(reached))} through the "
                            "call graph: thread the seeded RandomSource "
                            "through instead"
                        ),
                    )
                    break
