"""FLT001: no exact float equality in the sampling math.

The acceptance probabilities, geometric-skip math and bound computations
in ``core/`` and ``rng/`` operate on quantities like ``M/(|R|+i)`` that
are *never* exactly representable; an ``==`` against a float is either a
latent bug or an intentional boundary check that deserves a justifying
suppression comment.  The rule flags ``==`` / ``!=`` comparisons in which
any operand is a float literal (including negated literals).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.registry import ModuleRule, register
from repro.devtools.runner import ModuleContext

__all__ = ["FloatEqualityRule"]

SCOPED_DIRS = ("core", "rng")


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class FloatEqualityRule(ModuleRule):
    id = "FLT001"
    title = "no ==/!= against float literals in sampling math"
    rationale = (
        "acceptance probabilities and skip math are inexact; equality "
        "tests silently depend on rounding (core/ and rng/ only)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_dir(*SCOPED_DIRS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    yield Finding(
                        path=ctx.rel_path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id=self.id,
                        message=(
                            "exact ==/!= against a float literal: use "
                            "math.isclose / an epsilon, or suppress with a "
                            "comment justifying the exact boundary"
                        ),
                    )
                    break
