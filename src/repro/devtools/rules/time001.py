"""TIME001: cost-accounted paths must not read wall clocks.

The paper's evaluation counts block accesses and weights them with the
disk parameters in :mod:`repro.storage.cost_model` (Sec. 6.1); results
are therefore deterministic and hardware-independent.  A stray
``time.time()`` / ``perf_counter()`` inside the core, storage, dbms,
stream or serve layers would mix wall-clock noise into quantities the
cost model is supposed to derive (the serving scheduler's event clock
runs entirely on cost-model seconds).  Timing belongs either in the cost model itself or
in explicitly-calibrating code (``storage/real_disk.py`` carries a
file-wide suppression for exactly that reason).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.astutil import dotted_name
from repro.devtools.findings import Finding
from repro.devtools.registry import ModuleRule, register
from repro.devtools.runner import ModuleContext

__all__ = ["WallClockRule", "CLOCK_NAMES", "ACCOUNTED_DIRS"]

CLOCK_NAMES = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

ACCOUNTED_DIRS = ("core", "storage", "dbms", "stream", "serve")

# The cost model is the one sanctioned owner of timing concepts.
EXEMPT_FILES = frozenset({"storage/cost_model.py"})


@register
class WallClockRule(ModuleRule):
    id = "TIME001"
    title = "no wall-clock reads in cost-model-accounted paths"
    rationale = (
        "costs are derived from counted block accesses priced by "
        "storage/cost_model.py (paper Sec. 6.1), never from wall clocks"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_dir(*ACCOUNTED_DIRS) or ctx.rel_path in EXEMPT_FILES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and (node.module or "") == "time":
                clocks = [a.name for a in node.names if a.name in CLOCK_NAMES]
                if clocks:
                    yield self._finding(ctx, node, f"import of time.{clocks[0]}")
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if (
                    dotted is not None
                    and dotted.startswith("time.")
                    and dotted.split(".", 1)[1] in CLOCK_NAMES
                ):
                    yield self._finding(ctx, node, f"call to {dotted}()")

    def _finding(self, ctx: ModuleContext, node: ast.AST, what: str) -> Finding:
        return Finding(
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.id,
            message=(
                f"{what} in a cost-accounted path: derive costs from "
                "counted accesses via storage/cost_model.py, not wall clocks"
            ),
        )
