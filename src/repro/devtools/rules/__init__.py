"""Built-in rule suite; importing this package populates the registry."""

from repro.devtools.rules import (  # noqa: F401  (imported for registration)
    api001,
    arg001,
    bar001,
    bar002,
    det001,
    flt001,
    io001,
    io002,
    meta001,
    obs001,
    rng001,
    srv001,
    time001,
)

__all__ = [
    "api001",
    "arg001",
    "bar001",
    "bar002",
    "det001",
    "flt001",
    "io001",
    "io002",
    "meta001",
    "obs001",
    "rng001",
    "srv001",
    "time001",
]
