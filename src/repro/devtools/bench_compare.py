"""The ``repro bench-compare`` subcommand: the CI throughput-regression gate.

Compares a freshly produced pytest-benchmark JSON report against the
committed baseline (``benchmarks/BENCH_core_ops.json``) and fails when a
gated benchmark's throughput dropped by more than the threshold.  By
default the **batch-path**, **pool**, **lint**, **trace**, **repl**,
**fleet** and **event-loop** benchmarks are gated (names matching
``batch|pool|lint|trace|repl|fleet|event_loop``): the batch path
carries the paper's O(accepted) scaling claim, the pooled refresh cycle
carries PR 5's access-reduction claim, the whole-program lint runtime
guards the analysis engine's per-PR latency, the serve-trace benchmark
guards the observability layer's overhead when tracing is *enabled*,
the replicated refresh cycle guards the capture/seal/ship path's
overhead on the primary, the fleet fan-out benchmark guards the
vectorised model engine's throughput, and the serve event-loop
benchmark guards the uninstrumented scheduler hot path, while the
scalar benchmarks exist as the comparison floor and may drift with
interpreter noise.

Throughput is read from ``extra_info["elements_per_sec"]`` when the
benchmark recorded it (benchmarks/bench_core_ops.py does), falling back
to pytest-benchmark's ``stats.ops`` (rounds per second).  Exit status: 0
on pass or explicit skip (no baseline yet), 1 on regression, 2 on usage
errors (unreadable/invalid reports).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "BenchComparison",
    "DEFAULT_BASELINE",
    "DEFAULT_THRESHOLD",
    "add_bench_compare_parser",
    "compare_reports",
    "load_throughputs",
    "run_bench_compare_command",
]

DEFAULT_BASELINE = Path("benchmarks") / "BENCH_core_ops.json"
DEFAULT_THRESHOLD = 0.25
DEFAULT_SELECT = "batch|pool|lint|trace|repl|fleet|event_loop|kinds|weighted"


@dataclass(frozen=True)
class BenchComparison:
    """One gated benchmark's baseline-vs-current throughput."""

    name: str
    baseline: float
    current: float

    @property
    def change(self) -> float:
        """Relative throughput change: +0.10 = 10% faster, -0.30 = 30% slower."""
        if self.baseline <= 0:
            return 0.0
        return self.current / self.baseline - 1.0

    def regressed(self, threshold: float) -> bool:
        return self.change < -threshold


def load_throughputs(path: Path) -> dict[str, float]:
    """Map benchmark name -> throughput from a pytest-benchmark JSON report.

    Prefers the ``elements_per_sec`` extra_info (workload elements per
    second, comparable across benchmarks that resize their inner loop);
    falls back to ``stats.ops``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ValueError(f"{path}: not a pytest-benchmark JSON report")
    throughputs: dict[str, float] = {}
    for bench in benchmarks:
        name = bench.get("name")
        if not name:
            continue
        extra = bench.get("extra_info") or {}
        value = extra.get("elements_per_sec")
        if value is None:
            value = (bench.get("stats") or {}).get("ops")
        if value is None:
            continue
        throughputs[str(name)] = float(value)
    return throughputs


def compare_reports(
    baseline: dict[str, float],
    current: dict[str, float],
    select: str = DEFAULT_SELECT,
) -> list[BenchComparison]:
    """Pair up gated benchmarks present in both reports."""
    pattern = re.compile(select)
    return [
        BenchComparison(name=name, baseline=baseline[name], current=current[name])
        for name in sorted(baseline)
        if name in current and pattern.search(name)
    ]


def add_bench_compare_parser(sub: argparse._SubParsersAction) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "bench-compare",
        help="gate benchmark throughput against the committed baseline",
        description=(
            "Compare a pytest-benchmark JSON report against the committed "
            "baseline and fail on a throughput regression beyond the "
            "threshold. See docs/performance.md."
        ),
    )
    parser.add_argument(
        "current",
        help="fresh pytest-benchmark JSON report (--benchmark-json output)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help=f"committed baseline report (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="maximum tolerated throughput drop (default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--select",
        default=DEFAULT_SELECT,
        help=(
            "regex choosing which benchmarks to gate "
            f"(default: {DEFAULT_SELECT!r}, the batch-path benchmarks)"
        ),
    )
    return parser


def run_bench_compare_command(args: argparse.Namespace) -> int:
    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(
            f"bench-compare: no baseline at {baseline_path} -- skipping the "
            "regression gate (commit one to enable it; see docs/performance.md)"
        )
        return 0
    current_path = Path(args.current)
    if not current_path.exists():
        print(f"bench-compare: no such report: {current_path}", file=sys.stderr)
        return 2
    try:
        baseline = load_throughputs(baseline_path)
        current = load_throughputs(current_path)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"bench-compare: {exc}", file=sys.stderr)
        return 2
    if not 0.0 < args.threshold < 1.0:
        print("bench-compare: --threshold must be in (0, 1)", file=sys.stderr)
        return 2
    comparisons = compare_reports(baseline, current, select=args.select)
    if not comparisons:
        print(
            f"bench-compare: no benchmark matching {args.select!r} appears in "
            "both reports -- nothing gated"
        )
        return 0
    width = max(len(c.name) for c in comparisons)
    regressions = 0
    for c in comparisons:
        verdict = "ok"
        if c.regressed(args.threshold):
            verdict = "REGRESSED"
            regressions += 1
        print(
            f"  {c.name:<{width}}  baseline {c.baseline:>14,.0f}/s  "
            f"current {c.current:>14,.0f}/s  {c.change:>+7.1%}  {verdict}"
        )
    if regressions:
        print(
            f"bench-compare: {regressions} benchmark(s) dropped more than "
            f"{args.threshold:.0%} below the committed baseline"
        )
        return 1
    print(
        f"bench-compare: {len(comparisons)} gated benchmark(s) within "
        f"{args.threshold:.0%} of baseline"
    )
    return 0
