"""Project symbol table and call graph (the whole-program analysis engine).

``repro lint``'s original rules are per-file AST checks; the invariants
the paper actually depends on span *calls*: randomness must flow through
one seeded stream wherever the call chain leads (DET001), a superblock
commit must be preceded by a flush barrier even when the barrier lives in
a callee (BAR001), and the serve read path must not mutate device state
through any number of intermediate helpers (SRV001).  This module builds
the shared substrate those rules reason over:

* a **symbol table** of every function, method and class in the linted
  tree, keyed by a stable qualified name ``rel/path.py::Class.method``;
* an **import map** per module so ``from repro.x import y`` / ``import
  repro.x as z`` references resolve to project symbols (including imports
  guarded by ``TYPE_CHECKING`` -- annotations matter here);
* **light type inference** -- parameter/return annotations, attribute
  types assigned in ``__init__``, dataclass field annotations, and
  constructor assignments -- enough to resolve ``self._catalog.get(...)``
  to ``SampleCatalog.get`` instead of guessing by name;
* a **call graph** with virtual dispatch over the project class
  hierarchy: a call through a base type (``self._algorithm.refresh``)
  fans out to every project override.

Everything is AST-based; no project module is imported or executed.  The
graph over-approximates (unresolvable attribute calls fall back to
name-based resolution, minus generic container-method names), which is
the right direction for effect soundness: a spurious edge can at worst
demand a justified suppression, a missing edge would hide a violation.

The build runs once per lint run: :func:`analyze_project` caches the
:class:`ProjectAnalysis` on the :class:`~repro.devtools.runner.ProjectContext`
so every interprocedural rule shares it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.runner import ModuleContext, ProjectContext

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ProjectAnalysis",
    "analyze_project",
    "GENERIC_ATTRS",
]

#: Attribute names never resolved by bare-name fallback: they collide with
#: builtin container/str methods, so a name-based edge would be noise
#: (``queue.append`` is not ``LogFile.append``).  Typed receivers resolve
#: through the type and are unaffected by this list.
GENERIC_ATTRS = frozenset(
    {
        "add", "append", "clear", "close", "copy", "count", "decode",
        "discard", "encode", "endswith", "extend", "format", "get",
        "index", "insert", "intersection", "issubset", "items", "join",
        "keys", "lower", "lstrip", "open", "partition", "pop", "popleft",
        "read", "remove", "replace", "reverse", "rsplit", "rstrip",
        "setdefault", "sort", "split", "splitlines", "startswith",
        "strip", "title", "union", "update", "upper", "values", "write",
    }
)

#: Constructor names whose module-level result is a module-global RNG.
_RNG_FACTORY_NAMES = frozenset(
    {"RandomSource", "Random", "RandomState", "default_rng", "numpy_generator"}
)
_RNG_FACTORY_DOTTED = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "np.random.default_rng",
        "numpy.random.RandomState",
        "np.random.RandomState",
    }
)


def _walk_excluding_defs(root: ast.AST):
    """Yield descendants of *root*, not descending into nested defs/classes."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class CallSite:
    """One call expression, with its resolved project targets (if any)."""

    line: int
    col: int
    #: called name -- the attribute for ``x.attr()``, the bare name otherwise
    name: str
    #: qualified names of resolved project targets, sorted
    targets: tuple[str, ...]
    #: "direct" (name/import), "typed" (receiver type), "fallback"
    #: (name-based), or "nested" (enclosing function -> nested def)
    kind: str
    #: the Call node (None for synthetic nested-def edges)
    node: ast.Call | None = None


@dataclass
class FunctionInfo:
    """One function or method in the symbol table."""

    qualname: str
    rel_path: str
    name: str
    cls: str | None
    node: ast.AST
    module: "ModuleContext"
    line: int
    col: int
    calls: list[CallSite] = field(default_factory=list)
    #: (global-RNG qualname, line, col) for each module-global RNG read
    rng_global_uses: list[tuple[str, int, int]] = field(default_factory=list)

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")


@dataclass
class ClassInfo:
    """One class: methods, resolved bases, inferred attribute types."""

    qualname: str
    rel_path: str
    name: str
    node: ast.ClassDef
    module: "ModuleContext"
    base_quals: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)
    #: attribute name -> class qualname, from annotations and __init__
    attr_types: dict[str, str] = field(default_factory=dict)


class _ModuleInfo:
    """Per-module symbol and import tables (internal)."""

    def __init__(self, ctx: "ModuleContext") -> None:
        self.ctx = ctx
        self.functions: dict[str, str] = {}  # top-level name -> qualname
        self.classes: dict[str, str] = {}  # top-level name -> class qualname
        # alias -> ("module", dotted) | ("symbol", dotted_module, name)
        self.imports: dict[str, tuple] = {}
        self.rng_globals: dict[str, int] = {}  # name -> lineno


class ProjectAnalysis:
    """Symbol table + call graph + (lazily) effects for one lint run."""

    def __init__(self, project: "ProjectContext") -> None:
        self.project = project
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._modules: dict[str, _ModuleInfo] = {}
        self._subclasses: dict[str, set[str]] = {}
        #: module-global RNG bindings: qualname "rel.py::NAME" -> lineno
        self.rng_globals: dict[str, int] = {}
        self._effects: dict[str, frozenset[str]] | None = None
        self._build()

    # -- public views --------------------------------------------------------

    @property
    def effects(self) -> dict[str, frozenset[str]]:
        """Transitive effect set per function (see :mod:`.effects`)."""
        if self._effects is None:
            from repro.devtools.effects import infer_effects

            self._effects = infer_effects(self)
        return self._effects

    def callees(self, qualname: str) -> set[str]:
        info = self.functions.get(qualname)
        if info is None:
            return set()
        return {t for site in info.calls for t in site.targets}

    def callers(self, qualname: str) -> set[str]:
        return {
            caller.qualname
            for caller in self.functions.values()
            if any(qualname in site.targets for site in caller.calls)
        }

    def reachable(
        self, roots: "list[str]", stop: "set[str] | frozenset[str]" = frozenset()
    ) -> set[str]:
        """Transitive callees of *roots*; never traverses into ``stop``."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            current = stack.pop()
            if current in seen or current in stop:
                continue
            seen.add(current)
            for target in self.callees(current):
                if target not in seen and target not in stop:
                    stack.append(target)
        return seen

    def subclasses(self, class_qual: str) -> set[str]:
        """All transitive project subclasses of *class_qual*."""
        out: set[str] = set()
        stack = [class_qual]
        while stack:
            for sub in self._subclasses.get(stack.pop(), ()):
                if sub not in out:
                    out.add(sub)
                    stack.append(sub)
        return out

    def to_json_dict(self) -> dict:
        """Deterministic JSON view for ``repro lint --dump-graph``."""
        functions = {}
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            functions[qualname] = {
                "path": info.rel_path,
                "line": info.line,
                "effects": sorted(self.effects.get(qualname, frozenset())),
                "calls": sorted({t for s in info.calls for t in s.targets}),
            }
        return {
            "classes": {
                qual: {
                    "bases": sorted(self.classes[qual].base_quals),
                    "methods": sorted(self.classes[qual].methods.values()),
                }
                for qual in sorted(self.classes)
            },
            "functions": functions,
            "rng_globals": {q: self.rng_globals[q] for q in sorted(self.rng_globals)},
        }

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        for ctx in self.project.modules:
            self._collect_module(ctx)
        self._resolve_bases()
        self._infer_attr_types()
        for info in self._modules.values():
            self._collect_calls(info)

    def _collect_module(self, ctx: "ModuleContext") -> None:
        info = _ModuleInfo(ctx)
        self._modules[ctx.rel_path] = info
        self._collect_imports(ctx.tree.body, info)
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, node, cls=None, prefix="")
                info.functions[node.name] = f"{ctx.rel_path}::{node.name}"
            elif isinstance(node, ast.ClassDef):
                qual = f"{ctx.rel_path}::{node.name}"
                cls = ClassInfo(
                    qualname=qual,
                    rel_path=ctx.rel_path,
                    name=node.name,
                    node=node,
                    module=ctx,
                )
                self.classes[qual] = cls
                info.classes[node.name] = qual
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_qual = f"{ctx.rel_path}::{node.name}.{item.name}"
                        cls.methods[item.name] = method_qual
                        self._add_function(ctx, item, cls=node.name, prefix="")
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._maybe_rng_global(ctx, info, node)

    def _collect_imports(self, body, info: _ModuleInfo) -> None:
        for node in body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    info.imports[bound] = ("module", target)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = node.module or ""
                for alias in node.names:
                    info.imports[alias.asname or alias.name] = (
                        "symbol",
                        module,
                        alias.name,
                    )
            elif isinstance(node, ast.If):
                # Imports guarded by TYPE_CHECKING carry the annotations'
                # meaning; resolve through them like unconditional imports.
                test = node.test
                name = test.id if isinstance(test, ast.Name) else (
                    test.attr if isinstance(test, ast.Attribute) else None
                )
                if name == "TYPE_CHECKING":
                    self._collect_imports(node.body, info)

    def _add_function(self, ctx, node, cls: str | None, prefix: str) -> None:
        qual = (
            f"{ctx.rel_path}::{prefix}{cls + '.' if cls else ''}{node.name}"
        )
        self.functions[qual] = FunctionInfo(
            qualname=qual,
            rel_path=ctx.rel_path,
            name=node.name,
            cls=cls,
            node=node,
            module=ctx,
            line=node.lineno,
            col=node.col_offset,
        )

    def _maybe_rng_global(self, ctx, info: _ModuleInfo, node) -> None:
        value = node.value if not isinstance(node, ast.AnnAssign) else node.value
        if not isinstance(value, ast.Call):
            return
        func = value.func
        name = func.id if isinstance(func, ast.Name) else None
        dotted = _dotted(func)
        is_rng = (
            (name is not None and name in _RNG_FACTORY_NAMES)
            or (dotted is not None and dotted in _RNG_FACTORY_DOTTED)
        )
        if not is_rng:
            return
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Name):
                qual = f"{ctx.rel_path}::{target.id}"
                info.rng_globals[target.id] = node.lineno
                self.rng_globals[qual] = node.lineno

    # -- name/module resolution ----------------------------------------------

    def _module_rel(self, dotted: str) -> str | None:
        """Map a dotted module name onto a project-relative file, if any."""
        parts = dotted.split(".")
        if parts and parts[0] == "repro":
            parts = parts[1:]
        for candidate in (
            "/".join(parts) + ".py" if parts else "__init__.py",
            "/".join(parts + ["__init__.py"]) if parts else "__init__.py",
        ):
            if candidate in self._modules:
                return candidate
        return None

    def _resolve_name(self, info: _ModuleInfo, name: str):
        """Resolve a bare name to ("func", qual) / ("class", qual) / None."""
        if name in info.functions:
            return ("func", info.functions[name])
        if name in info.classes:
            return ("class", info.classes[name])
        imported = info.imports.get(name)
        if imported is None:
            return None
        if imported[0] == "symbol":
            _, module_dotted, symbol = imported
            rel = self._module_rel(module_dotted)
            if rel is None:
                # ``from repro import core``-style: the symbol may itself
                # be a module.
                rel = self._module_rel(f"{module_dotted}.{symbol}")
                return ("module", rel) if rel is not None else None
            target = self._modules[rel]
            if symbol in target.functions:
                return ("func", target.functions[symbol])
            if symbol in target.classes:
                return ("class", target.classes[symbol])
            if symbol in target.rng_globals:
                return ("rng_global", f"{rel}::{symbol}")
            return None
        rel = self._module_rel(imported[1])
        return ("module", rel) if rel is not None else None

    def _resolve_bases(self) -> None:
        for cls in self.classes.values():
            info = self._modules[cls.rel_path]
            for base in cls.node.bases:
                name = base.id if isinstance(base, ast.Name) else None
                if name is None and isinstance(base, ast.Attribute):
                    name = base.attr
                if name is None:
                    continue
                resolved = self._resolve_name(info, name)
                if resolved is not None and resolved[0] == "class":
                    cls.base_quals.append(resolved[1])
        for cls in self.classes.values():
            for base in cls.base_quals:
                self._subclasses.setdefault(base, set()).add(cls.qualname)

    # -- type inference -------------------------------------------------------

    def _annotation_class(self, info: _ModuleInfo, annotation) -> str | None:
        """The project class a (possibly quoted/Optional) annotation names."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            return self._annotation_class(
                info, annotation.left
            ) or self._annotation_class(info, annotation.right)
        if isinstance(annotation, ast.Subscript):
            value = annotation.value
            name = value.id if isinstance(value, ast.Name) else (
                value.attr if isinstance(value, ast.Attribute) else None
            )
            if name == "Optional":
                return self._annotation_class(info, annotation.slice)
            return None  # list[X]/dict[X] describe containers, not receivers
        if isinstance(annotation, ast.Name):
            resolved = self._resolve_name(info, annotation.id)
        elif isinstance(annotation, ast.Attribute):
            resolved = self._resolve_name(info, annotation.attr)
        else:
            return None
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        return None

    def _param_types(self, info: _ModuleInfo, node) -> dict[str, str]:
        env: dict[str, str] = {}
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            cls = self._annotation_class(info, arg.annotation)
            if cls is not None:
                env[arg.arg] = cls
        return env

    def _class_attr_type(self, cls: ClassInfo, attr: str) -> str | None:
        """Attribute/property type on *cls*, walking project bases."""
        seen: set[str] = set()
        stack = [cls.qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen or qual not in self.classes:
                continue
            seen.add(qual)
            current = self.classes[qual]
            if attr in current.attr_types:
                return current.attr_types[attr]
            method_qual = current.methods.get(attr)
            if method_qual is not None:
                method = self.functions[method_qual]
                if any(
                    isinstance(d, ast.Name) and d.id == "property"
                    for d in getattr(method.node, "decorator_list", ())
                ):
                    return self._annotation_class(
                        self._modules[current.rel_path], method.node.returns
                    )
            stack.extend(current.base_quals)
        return None

    def _expr_type(
        self, expr, env: dict[str, str], info: _ModuleInfo, cls: ClassInfo | None
    ) -> str | None:
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            if expr.id == "self" and cls is not None:
                return cls.qualname
            return None
        if isinstance(expr, ast.Attribute):
            recv = self._expr_type(expr.value, env, info, cls)
            if recv is not None and recv in self.classes:
                return self._class_attr_type(self.classes[recv], expr.attr)
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                resolved = self._resolve_name(info, func.id)
                if resolved is not None and resolved[0] == "class":
                    return resolved[1]
                if resolved is not None and resolved[0] == "func":
                    fn = self.functions[resolved[1]]
                    return self._annotation_class(
                        self._modules[fn.rel_path], fn.node.returns
                    )
                return None
            if isinstance(func, ast.Attribute):
                for target in self._method_targets(func, env, info, cls)[0]:
                    fn = self.functions[target]
                    returned = self._annotation_class(
                        self._modules[fn.rel_path], fn.node.returns
                    )
                    if returned is not None:
                        return returned
            return None
        return None

    def _infer_attr_types(self) -> None:
        for cls in self.classes.values():
            info = self._modules[cls.rel_path]
            for item in cls.node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    attr_cls = self._annotation_class(info, item.annotation)
                    if attr_cls is not None:
                        cls.attr_types[item.target.id] = attr_cls
            for item in cls.node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                env = self._param_types(info, item)
                for stmt in ast.walk(item):
                    target = None
                    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                        target, value = stmt.targets[0], stmt.value
                    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                        target, value = stmt.target, stmt.value
                    else:
                        continue
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    attr_cls = None
                    if isinstance(stmt, ast.AnnAssign):
                        attr_cls = self._annotation_class(info, stmt.annotation)
                    if attr_cls is None:
                        attr_cls = self._expr_type(value, env, info, cls)
                    if attr_cls is not None:
                        cls.attr_types.setdefault(target.attr, attr_cls)

    # -- call resolution ------------------------------------------------------

    def _virtual_targets(self, class_qual: str, attr: str) -> list[str]:
        """Method *attr* on *class_qual*: nearest def plus all overrides."""
        targets: set[str] = set()
        # Nearest definition walking up the bases.
        stack = [class_qual]
        seen: set[str] = set()
        while stack:
            qual = stack.pop(0)
            if qual in seen or qual not in self.classes:
                continue
            seen.add(qual)
            cls = self.classes[qual]
            if attr in cls.methods:
                targets.add(cls.methods[attr])
                break
            stack.extend(cls.base_quals)
        # Every override below the static type (virtual dispatch).
        for sub in self.subclasses(class_qual):
            sub_cls = self.classes.get(sub)
            if sub_cls is not None and attr in sub_cls.methods:
                targets.add(sub_cls.methods[attr])
        return sorted(targets)

    def _method_targets(
        self, func: ast.Attribute, env, info: _ModuleInfo, cls: ClassInfo | None
    ) -> tuple[list[str], str]:
        """Resolve an attribute call; returns (targets, resolution kind)."""
        attr = func.attr
        # Module-alias call: ``mod.func(...)``.
        dotted = _dotted(func.value)
        if dotted is not None and "." not in dotted:
            imported = info.imports.get(dotted)
            if imported is not None and imported[0] == "module":
                rel = self._module_rel(imported[1])
                if rel is not None:
                    target = self._modules[rel]
                    if attr in target.functions:
                        return [target.functions[attr]], "direct"
                    if attr in target.classes:
                        init = self.classes[target.classes[attr]].methods.get(
                            "__init__"
                        )
                        return ([init] if init else []), "direct"
        # Typed receiver (including ``self``).
        recv_type = self._expr_type(func.value, env, info, cls)
        if recv_type is not None and recv_type in self.classes:
            return self._virtual_targets(recv_type, attr), "typed"
        # Name-based fallback over project methods, minus generic names.
        if attr in GENERIC_ATTRS:
            return [], "fallback"
        targets = sorted(
            fn.qualname
            for fn in self.functions.values()
            if fn.name == attr and fn.cls is not None
        )
        return targets, "fallback"

    def _collect_calls(self, info: _ModuleInfo) -> None:
        for fn in list(self.functions.values()):
            if fn.rel_path != info.ctx.rel_path:
                continue
            cls = (
                self.classes.get(f"{fn.rel_path}::{fn.cls}")
                if fn.cls is not None
                else None
            )
            env = self._param_types(info, fn.node)
            self._walk_body(fn, fn.node, env, info, cls)
            self._record_rng_uses(fn, info)

    def _walk_body(self, fn: FunctionInfo, node, env, info, cls) -> None:
        """Visit *fn*'s statements, tracking simple local types in order."""
        for stmt in ast.iter_child_nodes(node):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt is not fn.node:
                # Nested def: its own symbol, assumed callable by the parent.
                nested_qual = f"{fn.qualname}.{stmt.name}"
                if nested_qual not in self.functions:
                    self._add_nested(fn, stmt, nested_qual, info, cls)
                fn.calls.append(
                    CallSite(
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        name=stmt.name,
                        targets=(nested_qual,),
                        kind="nested",
                    )
                )
                continue
            if isinstance(stmt, ast.ClassDef):
                continue
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
                stmt.targets[0], ast.Name
            ):
                inferred = self._expr_type(stmt.value, env, info, cls)
                if inferred is not None:
                    env[stmt.targets[0].id] = inferred
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                inferred = self._annotation_class(info, stmt.annotation)
                if inferred is not None:
                    env[stmt.target.id] = inferred
            for call in self._calls_in(stmt, skip_defs=True):
                self._record_call(fn, call, env, info, cls)
            self._walk_body(fn, stmt, env, info, cls)

    def _add_nested(self, parent: FunctionInfo, node, qual, info, cls) -> None:
        nested = FunctionInfo(
            qualname=qual,
            rel_path=parent.rel_path,
            name=node.name,
            cls=parent.cls,
            node=node,
            module=parent.module,
            line=node.lineno,
            col=node.col_offset,
        )
        self.functions[qual] = nested
        env = self._param_types(info, node)
        self._walk_body(nested, node, env, info, cls)
        self._record_rng_uses(nested, info)

    def _calls_in(self, stmt, skip_defs: bool) -> list[ast.Call]:
        """Call expressions directly inside *stmt* (not in nested defs/stmts)."""
        calls: list[ast.Call] = []
        stack: list[ast.AST] = []
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                continue  # handled by the recursive statement walk
            stack.append(child)
        while stack:
            node = stack.pop()
            if skip_defs and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Call):
                calls.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return calls

    def _record_call(self, fn: FunctionInfo, call: ast.Call, env, info, cls) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self._resolve_name(info, func.id)
            targets: list[str] = []
            if resolved is not None and resolved[0] == "func":
                targets = [resolved[1]]
            elif resolved is not None and resolved[0] == "class":
                init = self.classes[resolved[1]].methods.get("__init__")
                targets = [init] if init else []
            elif f"{fn.qualname}.{func.id}" in self.functions:
                targets = [f"{fn.qualname}.{func.id}"]
            fn.calls.append(
                CallSite(
                    line=call.lineno,
                    col=call.col_offset,
                    name=func.id,
                    targets=tuple(targets),
                    kind="direct",
                    node=call,
                )
            )
        elif isinstance(func, ast.Attribute):
            targets, kind = self._method_targets(func, env, info, cls)
            fn.calls.append(
                CallSite(
                    line=call.lineno,
                    col=call.col_offset,
                    name=func.attr,
                    targets=tuple(targets),
                    kind=kind,
                    node=call,
                )
            )

    def _record_rng_uses(self, fn: FunctionInfo, info: _ModuleInfo) -> None:
        """One pass over *fn*'s own body (nested defs excluded) for RNG reads."""
        if not self.rng_globals:
            return
        for sub in _walk_excluding_defs(fn.node):
            qual: str | None = None
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if sub.id in info.rng_globals:
                    qual = f"{fn.rel_path}::{sub.id}"
                else:
                    resolved = self._resolve_name(info, sub.id)
                    if resolved is not None and resolved[0] == "rng_global":
                        qual = resolved[1]
            elif isinstance(sub, ast.Attribute):
                dotted = _dotted(sub)
                if dotted is not None and dotted.count(".") == 1:
                    alias, attr = dotted.split(".")
                    imported = info.imports.get(alias)
                    if imported is not None and imported[0] == "module":
                        rel = self._module_rel(imported[1])
                        if rel is not None and attr in self._modules[rel].rng_globals:
                            qual = f"{rel}::{attr}"
            if qual is not None and qual in self.rng_globals:
                entry = (qual, sub.lineno, sub.col_offset)
                if entry not in fn.rng_global_uses:
                    fn.rng_global_uses.append(entry)


def analyze_project(project: "ProjectContext") -> ProjectAnalysis:
    """The shared per-run analysis, built on first use and then cached."""
    if getattr(project, "_analysis", None) is None:
        project._analysis = ProjectAnalysis(project)
    return project._analysis  # type: ignore[return-value]
