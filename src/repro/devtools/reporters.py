"""Reporters: render a list of findings as text or JSON."""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.devtools.findings import Finding
from repro.devtools.registry import Rule

__all__ = ["format_text", "format_json"]


def format_text(findings: Sequence[Finding]) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    lines = [f.render() for f in findings]
    if findings:
        rules = sorted({f.rule_id for f in findings})
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"({', '.join(rules)})"
        )
    else:
        lines.append("0 findings")
    return "\n".join(lines) + "\n"


def format_json(
    findings: Sequence[Finding], rules: Iterable[Rule] | None = None
) -> str:
    """Machine-readable report (stable key order, trailing newline)."""
    payload: dict[str, object] = {
        "findings": [f.to_dict() for f in findings],
        "count": len(findings),
    }
    if rules is not None:
        payload["rules"] = [
            {"id": r.id, "title": r.title} for r in sorted(rules, key=lambda r: r.id)
        ]
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"
