"""SARIF 2.1.0 output for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is the shape GitHub
code scanning ingests: one ``run`` per tool invocation, a ``tool.driver``
block describing the rules, and one ``result`` per finding with a
``physicalLocation``.  Only the subset code scanning actually reads is
emitted -- ``version``/``$schema``, rule metadata (id, short description,
help text from the rationale), and results with region line/column.

Two conventions differ from the internal :class:`Finding` model and are
converted here:

* SARIF columns are **1-based**; findings carry 0-based ``col`` straight
  from ``ast`` node offsets, so ``startColumn = col + 1``;
* results reference rules by ``ruleIndex`` into the driver's rule array,
  so the rule list is emitted sorted and the index map built once.

The output is deterministic for a given finding list: rules sorted by
id, results in the findings' given (sorted) order, dict key order fixed
by construction.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.devtools.findings import Finding

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "repro-lint"


def _rule_metadata(rule_ids: Sequence[str]) -> list[dict]:
    """Driver rule descriptors for every rule id appearing in the results."""
    from repro.devtools.registry import all_rules
    from repro.devtools.runner import (
        PARSE_ERROR_RULE,
        RULE_ERROR_RULE,
    )

    registry = all_rules()
    synthetic = {
        PARSE_ERROR_RULE: "file could not be read or parsed",
        RULE_ERROR_RULE: "a lint rule crashed while checking",
    }
    descriptors = []
    for rule_id in rule_ids:
        rule = registry.get(rule_id)
        if rule is not None:
            short, help_text = rule.title, rule.rationale
        else:
            short = synthetic.get(rule_id, rule_id)
            help_text = short
        descriptors.append(
            {
                "id": rule_id,
                "name": rule_id,
                "shortDescription": {"text": short},
                "help": {"text": help_text},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return descriptors


def to_sarif(findings: Iterable[Finding]) -> dict:
    """The SARIF log object (as a plain dict) for *findings*."""
    ordered = sorted(findings)
    rule_ids = sorted({f.rule_id for f in ordered})
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = []
    for finding in ordered:
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index[finding.rule_id],
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": _rule_metadata(rule_ids),
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(findings: Iterable[Finding]) -> str:
    """Serialised SARIF log, stable across runs for identical findings."""
    return json.dumps(to_sarif(findings), indent=2, sort_keys=False) + "\n"
