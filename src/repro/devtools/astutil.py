"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast

__all__ = ["dotted_name", "literal_all"]


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything non-dotted."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def literal_all(tree: ast.Module) -> list[str] | None:
    """The module's ``__all__`` if it is assigned a literal; else None.

    Entries appended later via ``__all__ += [...]`` / ``.extend`` are
    honoured when they are literal lists too.
    """
    names: list[str] | None = None
    for node in tree.body:
        target = None
        value = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            target, value = node.target, node.value
        if not (isinstance(target, ast.Name) and target.id == "__all__"):
            continue
        try:
            chunk = ast.literal_eval(value)
        except ValueError:
            continue
        if not isinstance(chunk, (list, tuple)):
            continue
        if isinstance(node, ast.AugAssign):
            if names is not None:
                names.extend(str(n) for n in chunk)
        else:
            names = [str(n) for n in chunk]
    return names
