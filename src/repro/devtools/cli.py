"""The ``repro lint`` subcommand.

Self-contained so :mod:`repro.cli` only needs two hooks:
:func:`add_lint_parser` to declare the subcommand and
:func:`run_lint_command` to execute it.  Exit status: 0 when clean, 1
when findings exist, 2 on usage errors (unknown rule ids).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.devtools.registry import all_rules
from repro.devtools.reporters import format_json, format_text
from repro.devtools.runner import LintRunner, default_root

__all__ = ["add_lint_parser", "run_lint_command"]


def add_lint_parser(sub: argparse._SubParsersAction) -> argparse.ArgumentParser:
    lint = sub.add_parser(
        "lint",
        help="check the tree against the paper's RNG/I-O discipline rules",
        description=(
            "AST-based invariant checker: enforces the paper's RNG "
            "discipline (RNG001), sequential-only refresh I/O (IO001), "
            "cost-model timing (TIME001) and friends. See "
            "docs/static_analysis.md."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--root",
        default=None,
        help=(
            "directory treated as the package root for path-scoped rules "
            "(default: the installed repro package)"
        ),
    )
    lint.add_argument(
        "--format",
        default="text",
        choices=("text", "json"),
        help="report format",
    )
    lint.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all rules)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return lint


def run_lint_command(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id:<8} {rule.title}")
        return 0
    rule_ids = (
        [r for r in args.rules.split(",") if r.strip()] if args.rules else None
    )
    missing = [p for p in args.paths or [] if not Path(p).exists()]
    if missing:
        print(
            f"repro lint: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    try:
        runner = LintRunner(
            root=Path(args.root) if args.root else default_root(),
            rules=rule_ids,
        )
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return 2
    findings = runner.run(args.paths or None)
    if args.format == "json":
        print(format_json(findings, rules=runner.rules), end="")
    else:
        print(format_text(findings), end="")
    return 1 if findings else 0
