"""The ``repro lint`` subcommand.

Self-contained so :mod:`repro.cli` only needs two hooks:
:func:`add_lint_parser` to declare the subcommand and
:func:`run_lint_command` to execute it.  Exit status: 0 when clean, 1
when findings exist, 2 on usage errors (unknown rule ids, missing paths,
unreadable baselines).

Beyond the original text/JSON report, the command grew three CI-facing
modes with the whole-program engine:

* ``--format sarif`` emits a SARIF 2.1.0 log (GitHub code scanning's
  input format; see :mod:`repro.devtools.sarif`);
* ``--baseline FILE`` subtracts a committed inventory of accepted
  findings, so the exit status gates only *new* findings, and
  ``--write-baseline FILE`` (re)records the current findings as that
  inventory;
* ``--dump-graph`` prints the analysis engine's symbol-table/call-graph/
  effects view as deterministic JSON and exits -- the debugging window
  into what DET001/BAR001/SRV001 reasoned over.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.devtools.registry import all_rules
from repro.devtools.reporters import format_json, format_text
from repro.devtools.runner import LintRunner, default_root

__all__ = ["add_lint_parser", "run_lint_command"]


def add_lint_parser(sub: argparse._SubParsersAction) -> argparse.ArgumentParser:
    lint = sub.add_parser(
        "lint",
        help="check the tree against the paper's RNG/I-O discipline rules",
        description=(
            "AST-based invariant checker: enforces the paper's RNG "
            "discipline (RNG001, DET001), sequential-only refresh I/O "
            "(IO001), commit barrier ordering (BAR001), the serve "
            "read-path contract (SRV001) and friends. See "
            "docs/static_analysis.md."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--root",
        default=None,
        help=(
            "directory treated as the package root for path-scoped rules "
            "(default: the installed repro package)"
        ),
    )
    lint.add_argument(
        "--format",
        default="text",
        choices=("text", "json", "sarif"),
        help="report format",
    )
    lint.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all rules)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "committed baseline of accepted findings; only findings not "
            "in it are reported and gate the exit status"
        ),
    )
    lint.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings as the accepted baseline and exit 0",
    )
    lint.add_argument(
        "--dump-graph",
        action="store_true",
        help=(
            "print the whole-program analysis (symbol table, call graph, "
            "effect sets) as JSON and exit"
        ),
    )
    return lint


def _dump_graph(runner: LintRunner, paths) -> int:
    from repro.devtools.callgraph import analyze_project

    project, diagnostics = runner.build_project(paths)
    analysis = analyze_project(project)
    payload = analysis.to_json_dict()
    if diagnostics:
        payload["diagnostics"] = [f.to_dict() for f in sorted(diagnostics)]
    print(json.dumps(payload, indent=2, sort_keys=False))
    return 0


def run_lint_command(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id:<8} {rule.title}")
        return 0
    rule_ids = (
        [r for r in args.rules.split(",") if r.strip()] if args.rules else None
    )
    missing = [p for p in args.paths or [] if not Path(p).exists()]
    if missing:
        print(
            f"repro lint: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    try:
        runner = LintRunner(
            root=Path(args.root) if args.root else default_root(),
            rules=rule_ids,
        )
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return 2
    if getattr(args, "dump_graph", False):
        return _dump_graph(runner, args.paths or None)
    findings = runner.run(args.paths or None)
    if getattr(args, "write_baseline", None):
        from repro.devtools.baseline import write_baseline

        write_baseline(args.write_baseline, findings)
        print(
            f"repro lint: wrote baseline with {len(findings)} "
            f"finding{'s' if len(findings) != 1 else ''} to "
            f"{args.write_baseline}"
        )
        return 0
    if getattr(args, "baseline", None):
        from repro.devtools.baseline import filter_baselined, load_baseline

        try:
            accepted = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro lint: cannot use baseline: {exc}", file=sys.stderr)
            return 2
        findings = filter_baselined(findings, accepted)
    if args.format == "sarif":
        from repro.devtools.sarif import render_sarif

        print(render_sarif(findings), end="")
    elif args.format == "json":
        print(format_json(findings, rules=runner.rules), end="")
    else:
        print(format_text(findings), end="")
    return 1 if findings else 0
