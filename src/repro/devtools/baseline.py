"""Committed-baseline mode for ``repro lint``.

A baseline is a committed JSON inventory of *accepted* findings: CI fails
only on findings **not** in the baseline, so a new rule can land (with
its existing debt recorded) without blocking every unrelated PR, and the
debt shrinks monotonically -- fixing a finding never breaks the gate,
introducing one always does.

Fingerprinting is content-based, not line-based: a finding is identified
by ``(path, rule_id, message)`` with an occurrence *count* per
fingerprint.  Line numbers are deliberately excluded -- an unrelated
edit above a baselined finding must not un-baseline it -- while the
count keeps the gate honest when a second identical violation appears in
the same file (the count exceeds the baseline and the new one fails).

File shape (``lint_baseline.json``)::

    {
      "version": 1,
      "findings": {"<path>::<rule>::<message>": <count>, ...}
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.devtools.findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "fingerprint",
    "write_baseline",
    "load_baseline",
    "filter_baselined",
]

BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    return f"{finding.path}::{finding.rule_id}::{finding.message}"


def _counts(findings: Iterable[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        key = fingerprint(finding)
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(path: Path | str, findings: Iterable[Finding]) -> None:
    """Record *findings* as the accepted set (sorted, stable on disk)."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": dict(sorted(_counts(findings).items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )


def load_baseline(path: Path | str) -> dict[str, int]:
    """The accepted fingerprint counts from a baseline file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {BASELINE_VERSION}); regenerate with --write-baseline"
        )
    findings = data.get("findings", {})
    if not isinstance(findings, dict):
        raise ValueError(f"malformed baseline {path}: 'findings' must be an object")
    return {str(k): int(v) for k, v in findings.items()}


def filter_baselined(
    findings: Iterable[Finding], accepted: dict[str, int]
) -> list[Finding]:
    """Findings not covered by *accepted* (sorted order preserved).

    Coverage is per-occurrence: with a baseline count of N for a
    fingerprint, the first N matching findings are absorbed and any
    further ones pass through as new.
    """
    remaining = dict(accepted)
    fresh: list[Finding] = []
    for finding in sorted(findings):
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            continue
        fresh.append(finding)
    return fresh
