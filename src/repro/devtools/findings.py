"""Finding: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """A single lint violation.

    Ordered by location so reports are stable regardless of the order in
    which rules ran.
    """

    path: str
    """Path of the offending file, relative to the lint root (posix)."""

    line: int
    """1-based line number."""

    col: int
    """0-based column offset (ast convention)."""

    rule_id: str = field(compare=False)
    """Identifier of the rule that fired (e.g. ``"RNG001"``)."""

    message: str = field(compare=False)
    """Human-readable explanation of the violation."""

    def render(self) -> str:
        """``path:line:col: RULE message`` -- the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
