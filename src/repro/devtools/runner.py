"""Lint driver: walk a tree, parse each file once, dispatch every rule.

The runner owns the expensive work (one ``ast.parse`` per file) and hands
the shared :class:`ModuleContext` to each rule, so adding rules does not
re-read or re-parse anything.  Suppression comments are applied here,
after all rules ran, so individual rules never need to know about them.

Robustness contract: a broken *input* (syntax error, undecodable bytes)
or a broken *rule* (an exception escaping ``check``) must never abort the
whole lint run -- each is converted into a diagnostic finding (``E000``
for inputs, ``E999`` for rules) and the run continues, so one bad file
cannot hide every other finding in the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.findings import Finding
from repro.devtools.registry import ModuleRule, ProjectRule, Rule, resolve_rules
from repro.devtools.suppressions import SuppressionIndex, parse_suppressions

__all__ = ["ModuleContext", "ProjectContext", "LintRunner", "run_lint", "default_root"]

PARSE_ERROR_RULE = "E000"
RULE_ERROR_RULE = "E999"
UNUSED_SUPPRESSION_RULE = "META001"


def default_root() -> Path:
    """The installed ``repro`` package directory (the default lint target)."""
    return Path(__file__).resolve().parents[1]


@dataclass
class ModuleContext:
    """Everything a :class:`~repro.devtools.registry.ModuleRule` may need."""

    root: Path
    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex

    def in_dir(self, *prefixes: str) -> bool:
        """True if this module lives under any of the given root-relative dirs."""
        return any(
            self.rel_path == p or self.rel_path.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )


@dataclass
class ProjectContext:
    """Whole-tree view handed to :class:`~repro.devtools.registry.ProjectRule`.

    Project rules that need the whole-program analysis engine (symbol
    table, call graph, effects) obtain it via
    :func:`repro.devtools.callgraph.analyze_project`, which caches one
    shared :class:`~repro.devtools.callgraph.ProjectAnalysis` here so the
    expensive build happens once per lint run, however many rules use it.
    """

    root: Path
    modules: list[ModuleContext] = field(default_factory=list)
    _analysis: "object | None" = field(default=None, repr=False, compare=False)

    def module(self, rel_path: str) -> ModuleContext | None:
        for ctx in self.modules:
            if ctx.rel_path == rel_path:
                return ctx
        return None


def _iter_python_files(paths: Sequence[Path]) -> list[Path]:
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


class LintRunner:
    """Run a set of rules over one source tree.

    ``root`` is the directory treated as the package root; every reported
    path and every rule's directory scoping is relative to it.  For the
    real tree this is ``src/repro``; tests point it at scratch trees that
    mimic the package layout.
    """

    def __init__(
        self,
        root: Path | str | None = None,
        rules: Iterable[str] | Iterable[Rule] | None = None,
    ) -> None:
        self.root = Path(root).resolve() if root is not None else default_root()
        if rules is not None and all(isinstance(r, Rule) for r in rules):
            self.rules: list[Rule] = list(rules)  # type: ignore[arg-type]
        else:
            self.rules = resolve_rules(rules)  # type: ignore[arg-type]

    def build_project(
        self, paths: Sequence[Path | str] | None = None
    ) -> tuple[ProjectContext, list[Finding]]:
        """Parse every target file once; return the tree view + input diagnostics.

        Unparseable or undecodable files become ``E000`` findings rather
        than exceptions, and are simply absent from the project view.
        """
        targets = [Path(p).resolve() for p in paths] if paths else [self.root]
        diagnostics: list[Finding] = []
        project = ProjectContext(root=self.root)
        for path in _iter_python_files(targets):
            try:
                rel = path.relative_to(self.root).as_posix()
            except ValueError:
                rel = path.as_posix()
            try:
                source = path.read_text(encoding="utf-8")
            except (UnicodeDecodeError, OSError) as exc:
                diagnostics.append(
                    Finding(
                        path=rel,
                        line=1,
                        col=0,
                        rule_id=PARSE_ERROR_RULE,
                        message=f"could not read file: {exc}",
                    )
                )
                continue
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                diagnostics.append(
                    Finding(
                        path=rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        rule_id=PARSE_ERROR_RULE,
                        message=f"could not parse file: {exc.msg}",
                    )
                )
                continue
            project.modules.append(
                ModuleContext(
                    root=self.root,
                    path=path,
                    rel_path=rel,
                    source=source,
                    tree=tree,
                    suppressions=parse_suppressions(source),
                )
            )
        return project, diagnostics

    def run(self, paths: Sequence[Path | str] | None = None) -> list[Finding]:
        project, findings = self.build_project(paths)
        for ctx in project.modules:
            for rule in self.rules:
                if isinstance(rule, ModuleRule):
                    findings.extend(self._checked(rule, ctx.rel_path, rule.check, ctx))
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                findings.extend(
                    self._checked(rule, "<project>", rule.check_project, project)
                )
        kept = self._apply_suppressions(findings, project)
        kept.extend(self._unused_suppressions(project))
        return sorted(kept)

    def _checked(self, rule: Rule, where: str, check, ctx) -> list[Finding]:
        """Run one rule, converting any escaping exception into E999."""
        try:
            return list(check(ctx))
        except Exception as exc:  # noqa: BLE001 - the whole point
            return [
                Finding(
                    path=where,
                    line=1,
                    col=0,
                    rule_id=RULE_ERROR_RULE,
                    message=(
                        f"rule {rule.id or type(rule).__name__} crashed: "
                        f"{type(exc).__name__}: {exc}"
                    ),
                )
            ]

    def _apply_suppressions(
        self, findings: Iterable[Finding], project: ProjectContext
    ) -> list[Finding]:
        by_rel = {ctx.rel_path: ctx.suppressions for ctx in project.modules}
        kept = []
        for finding in findings:
            index = by_rel.get(finding.path)
            if index is not None and index.is_suppressed(finding.rule_id, finding.line):
                continue
            kept.append(finding)
        return kept

    def _unused_suppressions(self, project: ProjectContext) -> list[Finding]:
        """META001: directives that silenced nothing during this run.

        Only rules that actually ran are judged -- a ``disable=TIME001``
        comment is not "unused" during a ``--rules ARG001`` run.  ``all``
        directives are judged only when the run covered the full default
        rule suite, for the same reason.
        """
        if not any(rule.id == UNUSED_SUPPRESSION_RULE for rule in self.rules):
            return []
        from repro.devtools.registry import all_rules

        ran = {rule.id for rule in self.rules}
        full_suite = ran >= set(all_rules())
        findings = []
        for ctx in project.modules:
            for directive in ctx.suppressions.directives:
                named = (directive.rules - {"all"}) & ran
                unused = sorted(named - directive.used)
                if "all" in directive.rules and full_suite and not directive.matched:
                    unused.insert(0, "all")
                if not unused:
                    continue
                finding = Finding(
                    path=ctx.rel_path,
                    line=directive.line,
                    col=directive.col,
                    rule_id=UNUSED_SUPPRESSION_RULE,
                    message=(
                        f"suppression of {', '.join(unused)} matched no finding "
                        "this run: remove the stale directive (or fix its rule "
                        "id / placement)"
                    ),
                )
                # A META001 finding is itself suppressible (one level
                # deep), but never by the very directive it reports on.
                if not ctx.suppressions.is_suppressed(
                    UNUSED_SUPPRESSION_RULE, directive.line, exclude=directive
                ):
                    findings.append(finding)
        return findings


def run_lint(
    root: Path | str | None = None,
    paths: Sequence[Path | str] | None = None,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """One-call entry point: lint *paths* (default: all of *root*)."""
    return LintRunner(root=root, rules=rules).run(paths)
