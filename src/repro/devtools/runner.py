"""Lint driver: walk a tree, parse each file once, dispatch every rule.

The runner owns the expensive work (one ``ast.parse`` per file) and hands
the shared :class:`ModuleContext` to each rule, so adding rules does not
re-read or re-parse anything.  Suppression comments are applied here,
after all rules ran, so individual rules never need to know about them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.findings import Finding
from repro.devtools.registry import ModuleRule, ProjectRule, Rule, resolve_rules
from repro.devtools.suppressions import SuppressionIndex, parse_suppressions

__all__ = ["ModuleContext", "ProjectContext", "LintRunner", "run_lint", "default_root"]

PARSE_ERROR_RULE = "E000"


def default_root() -> Path:
    """The installed ``repro`` package directory (the default lint target)."""
    return Path(__file__).resolve().parents[1]


@dataclass
class ModuleContext:
    """Everything a :class:`~repro.devtools.registry.ModuleRule` may need."""

    root: Path
    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex

    def in_dir(self, *prefixes: str) -> bool:
        """True if this module lives under any of the given root-relative dirs."""
        return any(
            self.rel_path == p or self.rel_path.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )


@dataclass
class ProjectContext:
    """Whole-tree view handed to :class:`~repro.devtools.registry.ProjectRule`."""

    root: Path
    modules: list[ModuleContext] = field(default_factory=list)

    def module(self, rel_path: str) -> ModuleContext | None:
        for ctx in self.modules:
            if ctx.rel_path == rel_path:
                return ctx
        return None


def _iter_python_files(paths: Sequence[Path]) -> list[Path]:
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


class LintRunner:
    """Run a set of rules over one source tree.

    ``root`` is the directory treated as the package root; every reported
    path and every rule's directory scoping is relative to it.  For the
    real tree this is ``src/repro``; tests point it at scratch trees that
    mimic the package layout.
    """

    def __init__(
        self,
        root: Path | str | None = None,
        rules: Iterable[str] | Iterable[Rule] | None = None,
    ) -> None:
        self.root = Path(root).resolve() if root is not None else default_root()
        if rules is not None and all(isinstance(r, Rule) for r in rules):
            self.rules: list[Rule] = list(rules)  # type: ignore[arg-type]
        else:
            self.rules = resolve_rules(rules)  # type: ignore[arg-type]

    def run(self, paths: Sequence[Path | str] | None = None) -> list[Finding]:
        targets = (
            [Path(p).resolve() for p in paths] if paths else [self.root]
        )
        findings: list[Finding] = []
        project = ProjectContext(root=self.root)
        for path in _iter_python_files(targets):
            try:
                rel = path.relative_to(self.root).as_posix()
            except ValueError:
                rel = path.as_posix()
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        path=rel,
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        rule_id=PARSE_ERROR_RULE,
                        message=f"could not parse file: {exc.msg}",
                    )
                )
                continue
            ctx = ModuleContext(
                root=self.root,
                path=path,
                rel_path=rel,
                source=source,
                tree=tree,
                suppressions=parse_suppressions(source),
            )
            project.modules.append(ctx)
            for rule in self.rules:
                if isinstance(rule, ModuleRule):
                    findings.extend(rule.check(ctx))
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                findings.extend(rule.check_project(project))
        return sorted(self._apply_suppressions(findings, project))

    def _apply_suppressions(
        self, findings: Iterable[Finding], project: ProjectContext
    ) -> list[Finding]:
        by_rel = {ctx.rel_path: ctx.suppressions for ctx in project.modules}
        kept = []
        for finding in findings:
            index = by_rel.get(finding.path)
            if index is not None and index.is_suppressed(finding.rule_id, finding.line):
                continue
            kept.append(finding)
        return kept


def run_lint(
    root: Path | str | None = None,
    paths: Sequence[Path | str] | None = None,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """One-call entry point: lint *paths* (default: all of *root*)."""
    return LintRunner(root=root, rules=rules).run(paths)
