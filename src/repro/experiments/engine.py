"""Vectorised cost simulator for the paper's experiments.

The paper's methodology (Sec. 6.1) is to *count* block-level
sequential/random accesses per algorithm and weight them with measured
access times.  The reference implementation in :mod:`repro.core` produces
those counts per element, which is exact but too slow for 100M-insert
sweeps in Python.  This engine produces the same counts at paper scale:

* the **candidate stream is realised exactly**: one uniform per insertion
  against the true acceptance probability ``M/(|R|+i)`` (numpy, chunked);
* **per-refresh block touches are expected values in closed form**, which
  is what the paper's 100-run averages estimate anyway:

  - a sample block of ``e`` elements survives a refresh of ``c``
    candidates untouched with probability ``(1 - e/M)^c``;
  - candidate ``i`` of ``c`` is *final* with probability
    ``(1 - 1/M)^(c-i)``, so a log block is read with probability
    ``1 - prod(1 - p_i)`` over its residents (same for full-log refresh,
    with residents placed at their insert positions).

An integration test pins these formulas against the reference
implementation's realised counts at small scale (they agree to Monte
Carlo noise), so the engine is a fast view of the same model, not a
second model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.api import Instrumentation
from repro.rng.numpy_source import numpy_generator
from repro.storage.cost_model import AccessStats, DiskParameters, PAPER_DISK

__all__ = [
    "MaintenanceCost",
    "candidate_positions",
    "candidate_counts_per_period",
    "immediate_online_cost",
    "log_online_cost",
    "expected_sample_blocks_written",
    "expected_candidate_log_blocks_read",
    "expected_full_log_blocks_read",
    "refresh_offline_cost",
    "geometric_file_cost",
    "simulate_strategy",
]

_CHUNK = 4_000_000  # uniforms drawn per numpy chunk


@dataclass
class MaintenanceCost:
    """Online/offline cost split of one simulated strategy run."""

    online: AccessStats = field(default_factory=AccessStats)
    offline: AccessStats = field(default_factory=AccessStats)
    candidates: int = 0
    refreshes: int = 0

    def online_seconds(self, disk: DiskParameters = PAPER_DISK) -> float:
        return self.online.cost_seconds(disk)

    def offline_seconds(self, disk: DiskParameters = PAPER_DISK) -> float:
        return self.offline.cost_seconds(disk)

    def total_seconds(self, disk: DiskParameters = PAPER_DISK) -> float:
        return self.online_seconds(disk) + self.offline_seconds(disk)


# ---------------------------------------------------------------------------
# Candidate stream realisation
# ---------------------------------------------------------------------------


def candidate_positions(
    rng: np.random.Generator, sample_size: int, initial_dataset: int, inserts: int
) -> np.ndarray:
    """1-based insert ordinals (within the window) that become candidates.

    Element ``i`` (``i = 1..inserts``) is accepted with the exact reservoir
    probability ``M / (initial_dataset + i)``.
    """
    if sample_size <= 0:
        raise ValueError("sample_size must be positive")
    if initial_dataset < sample_size:
        raise ValueError("dataset must be at least as large as the sample")
    if inserts < 0:
        raise ValueError("inserts must be non-negative")
    chunks: list[np.ndarray] = []
    for start in range(0, inserts, _CHUNK):
        stop = min(start + _CHUNK, inserts)
        ordinals = np.arange(start + 1, stop + 1, dtype=np.float64)
        acceptance = sample_size / (initial_dataset + ordinals)
        uniforms = rng.random(stop - start)
        hits = np.flatnonzero(uniforms < acceptance)
        chunks.append((hits + start + 1).astype(np.int64))
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


def candidate_counts_per_period(
    positions: np.ndarray, inserts: int, period: int
) -> np.ndarray:
    """Candidates landing in each refresh period of ``period`` inserts."""
    if period <= 0:
        raise ValueError("period must be positive")
    n_periods = -(-inserts // period)
    edges = np.arange(1, n_periods + 1, dtype=np.int64) * period
    edges[-1] = inserts
    cuts = np.searchsorted(positions, edges, side="right")
    return np.diff(np.concatenate(([0], cuts)))


# ---------------------------------------------------------------------------
# Online cost
# ---------------------------------------------------------------------------


def immediate_online_cost(
    candidates: int,
    sample_size: int | None = None,
    disk: DiskParameters = PAPER_DISK,
) -> AccessStats:
    """Immediate refresh: one random sample write per accepted insert.

    Consecutive candidates landing in the same sample block coalesce into
    one write (the single-block write cache of the reference
    :class:`~repro.storage.files.SampleFile`): with ``B`` sample blocks the
    expected write count is ``1 + (c-1)(1 - 1/B)``.  Negligible at paper
    scale (B = 7813) but exact at any scale; pass ``sample_size=None`` to
    skip the correction.
    """
    c = int(candidates)
    if c <= 0:
        return AccessStats()
    if sample_size is None:
        return AccessStats(random_writes=c)
    blocks = disk.blocks_for_elements(sample_size)
    expected = 1.0 + (c - 1) * (1.0 - 1.0 / blocks)
    return AccessStats(random_writes=int(round(expected)))


def log_online_cost(
    elements_per_period: np.ndarray, disk: DiskParameters = PAPER_DISK
) -> AccessStats:
    """Log-writing cost: per period, ``ceil(e/epb)`` block writes.

    The first block write of a non-empty period is random (the rewind seek
    after the log was truncated by the previous refresh, Sec. 6.2); the
    rest are sequential.
    """
    counts = np.asarray(elements_per_period, dtype=np.int64)
    if np.any(counts < 0):
        raise ValueError("element counts must be non-negative")
    epb = disk.elements_per_block
    blocks = -(-counts // epb)
    nonempty = blocks > 0
    random_writes = int(np.count_nonzero(nonempty))
    seq_writes = int(blocks.sum() - random_writes)
    return AccessStats(seq_writes=seq_writes, random_writes=random_writes)


# ---------------------------------------------------------------------------
# Refresh (offline) cost -- closed-form expected block touches
# ---------------------------------------------------------------------------


def expected_sample_blocks_written(
    sample_size: int, candidates: np.ndarray, disk: DiskParameters = PAPER_DISK
) -> np.ndarray:
    """E[sample blocks containing >= 1 displaced element], per refresh.

    ``P(block of e elements untouched) = (1 - e/M)^c``; the last block may
    be partial.
    """
    c = np.asarray(candidates, dtype=np.float64)
    epb = disk.elements_per_block
    full_blocks, tail = divmod(sample_size, epb)
    expected = full_blocks * (1.0 - np.power(1.0 - epb / sample_size, c))
    if tail:
        expected = expected + (1.0 - np.power(1.0 - tail / sample_size, c))
    return expected


def expected_candidate_log_blocks_read(
    sample_size: int, candidates: np.ndarray, disk: DiskParameters = PAPER_DISK
) -> np.ndarray:
    """E[candidate-log blocks holding >= 1 final candidate], per refresh.

    Candidate ``i`` of ``c`` is final with ``p_i = (1-1/M)^(c-i)``; the
    candidates sit densely in the log, 128 to a block.  Uses a prefix sum
    of ``log(1 - q^k)`` so each block costs O(1).
    """
    counts = np.asarray(candidates, dtype=np.int64)
    if counts.size == 0:
        return np.zeros(0)
    max_c = int(counts.max())
    if max_c == 0:
        return np.zeros(counts.shape)
    epb = disk.elements_per_block
    q = 1.0 - 1.0 / sample_size
    # survive[k] = log P(candidate with k later candidates is NOT final)
    #           = log(1 - q^k); k = 0 gives -inf (the last candidate is
    #           always final), handled by treating its block as read.
    k = np.arange(1, max_c, dtype=np.float64)
    with np.errstate(divide="ignore"):
        survive = np.log1p(-np.power(q, k))
    prefix = np.concatenate(([0.0], np.cumsum(survive)))  # prefix[j] = sum k<j+1

    expected = np.zeros(counts.shape)
    for idx, c in enumerate(counts):
        if c == 0:
            continue
        n_blocks = -(-int(c) // epb)
        # Block b (1-based) holds candidates i in [(b-1)*epb+1, min(b*epb, c)],
        # i.e. k = c - i in [c - min(b*epb, c), c - (b-1)*epb - 1].
        total = 1.0  # last block: contains k = 0, always read
        for b in range(1, n_blocks):
            k_hi = int(c) - (b - 1) * epb - 1
            k_lo = int(c) - b * epb
            log_surv = prefix[k_hi] - prefix[k_lo - 1]
            total += 1.0 - np.exp(log_surv)
        expected[idx] = total
    return expected


def expected_full_log_blocks_read(
    sample_size: int,
    positions_in_period: np.ndarray,
    disk: DiskParameters = PAPER_DISK,
) -> float:
    """E[full-log blocks holding >= 1 final candidate] for one refresh.

    ``positions_in_period`` are 1-based insert positions of this period's
    candidates within its full log.  Candidates are sparse in the full
    log, so final candidates spread over many more blocks (Sec. 5).
    """
    positions = np.asarray(positions_in_period, dtype=np.int64)
    c = positions.size
    if c == 0:
        return 0.0
    epb = disk.elements_per_block
    q = 1.0 - 1.0 / sample_size
    ranks = np.arange(1, c + 1, dtype=np.float64)
    p_final = np.power(q, c - ranks)  # last candidate: p = 1
    blocks = (positions - 1) // epb
    with np.errstate(divide="ignore"):
        weights = np.log1p(-p_final)  # -inf for the final candidate: read for sure
    # Group by block: unique blocks + summed log-survival.
    unique_blocks, inverse = np.unique(blocks, return_inverse=True)
    summed = np.zeros(unique_blocks.size)
    np.add.at(summed, inverse, weights)
    return float(np.sum(1.0 - np.exp(summed)))


def refresh_offline_cost(
    sample_size: int,
    candidates_per_period: np.ndarray,
    disk: DiskParameters = PAPER_DISK,
    cached_fraction: float = 0.0,
    full_log_positions: list[np.ndarray] | None = None,
) -> AccessStats:
    """Deferred refresh cost over all periods (Array/Stack/Nomem -- equal I/O).

    ``Psi`` sequential log-block reads plus ``Psi`` sequential sample-block
    writes, in expectation.  ``cached_fraction`` scales *sample* accesses
    down, modelling the Fig. 14 pinned-prefix memory grant.  When
    ``full_log_positions`` is given (one position array per period) the
    log reads use the sparse full-log layout instead of the dense
    candidate log.
    """
    if not 0.0 <= cached_fraction < 1.0:
        raise ValueError("cached_fraction must be in [0, 1)")
    counts = np.asarray(candidates_per_period, dtype=np.int64)
    sample_writes = expected_sample_blocks_written(sample_size, counts, disk)
    if full_log_positions is None:
        log_reads = expected_candidate_log_blocks_read(sample_size, counts, disk)
        total_reads = float(np.sum(log_reads))
    else:
        if len(full_log_positions) != counts.size:
            raise ValueError("need one position array per period")
        total_reads = sum(
            expected_full_log_blocks_read(sample_size, pos, disk)
            for pos in full_log_positions
        )
    total_writes = float(np.sum(sample_writes)) * (1.0 - cached_fraction)
    return AccessStats(
        seq_reads=int(round(total_reads)),
        seq_writes=int(round(total_writes)),
    )


# ---------------------------------------------------------------------------
# Geometric file cost (Sec. 6.5 mechanics; see baselines.geometric_file)
# ---------------------------------------------------------------------------


def geometric_file_cost(
    sample_size: int,
    candidates: int,
    buffer_capacity: int,
    disk: DiskParameters = PAPER_DISK,
    boundary_ios: int = 2,
    min_segment: int = 16_384,
) -> tuple[AccessStats, int]:
    """Expected GF cost for ``candidates`` accepted inserts; returns (stats, flushes).

    Buffer fills roughly once per ``buffer_capacity`` candidates (the
    buffer-resident victim correction is second-order); each flush pays
    one seek, a sequential segment write, and per-segment boundary
    read/write pairs.  Mirrors
    :class:`repro.baselines.geometric_file.GeometricFile`.
    """
    if buffer_capacity <= 0:
        raise ValueError("buffer_capacity must be positive")
    flushes = candidates // buffer_capacity
    epb = disk.elements_per_block
    segment_elements = max(buffer_capacity, min_segment)
    segments = max(1, round(sample_size / segment_elements))
    per_flush_seq_writes = -(-buffer_capacity // epb)
    ios = segments * boundary_ios
    stats = AccessStats(
        seq_writes=flushes * per_flush_seq_writes,
        random_writes=flushes * (1 + ios),
        random_reads=flushes * ios,
    )
    return stats, flushes


# ---------------------------------------------------------------------------
# Whole-strategy simulation
# ---------------------------------------------------------------------------


def simulate_strategy(
    strategy: str,
    sample_size: int,
    initial_dataset: int,
    inserts: int,
    refresh_period: int | None,
    seed: int = 0,
    disk: DiskParameters = PAPER_DISK,
    cached_fraction: float = 0.0,
    instrumentation: Instrumentation | None = None,
) -> MaintenanceCost:
    """Simulate one maintenance strategy end to end.

    ``strategy`` is ``"immediate"``, ``"candidate"`` or ``"full"``;
    ``refresh_period`` of ``None`` means log-only (the Fig. 6/8 setting,
    no intermediate refresh).  With ``instrumentation``, the run's
    realised candidate/refresh counts and cost split are recorded under
    the ``engine.*`` instruments (labelled by strategy) so experiment
    reports can attach a metrics snapshot per run.
    """
    cost = _simulate(
        strategy,
        sample_size,
        initial_dataset,
        inserts,
        refresh_period,
        seed,
        disk,
        cached_fraction,
    )
    if instrumentation is not None:
        labels = {"strategy": strategy}
        instrumentation.counter("engine.candidates", labels).inc(cost.candidates)
        instrumentation.counter("engine.refreshes", labels).inc(cost.refreshes)
        instrumentation.gauge("engine.online_seconds", labels).set(
            cost.online_seconds(disk)
        )
        instrumentation.gauge("engine.offline_seconds", labels).set(
            cost.offline_seconds(disk)
        )
        instrumentation.emit(
            "engine.simulated",
            strategy=strategy,
            inserts=inserts,
            candidates=cost.candidates,
            refreshes=cost.refreshes,
            online_seconds=cost.online_seconds(disk),
            offline_seconds=cost.offline_seconds(disk),
        )
    return cost


def _simulate(
    strategy: str,
    sample_size: int,
    initial_dataset: int,
    inserts: int,
    refresh_period: int | None,
    seed: int,
    disk: DiskParameters,
    cached_fraction: float,
) -> MaintenanceCost:
    if strategy not in ("immediate", "candidate", "full"):
        raise ValueError(f"unknown strategy: {strategy!r}")
    rng = numpy_generator(seed)
    positions = candidate_positions(rng, sample_size, initial_dataset, inserts)
    cost = MaintenanceCost(candidates=int(positions.size))

    if strategy == "immediate":
        cost.online = immediate_online_cost(positions.size, sample_size, disk)
        return cost

    if refresh_period is None:
        # Log only: one long "period".
        if strategy == "candidate":
            cost.online = log_online_cost([positions.size], disk)
        else:
            cost.online = log_online_cost([inserts], disk)
        return cost

    counts = candidate_counts_per_period(positions, inserts, refresh_period)
    n_periods = counts.size
    cost.refreshes = n_periods
    if strategy == "candidate":
        cost.online = log_online_cost(counts, disk)
        cost.offline = refresh_offline_cost(
            sample_size, counts, disk, cached_fraction
        )
        return cost

    # Full logging: every insert is logged; refresh candidates are sparse
    # within each period's log.
    period_sizes = np.full(n_periods, refresh_period, dtype=np.int64)
    period_sizes[-1] = inserts - refresh_period * (n_periods - 1)
    cost.online = log_online_cost(period_sizes, disk)
    boundaries = np.arange(n_periods, dtype=np.int64) * refresh_period
    splits = np.searchsorted(positions, boundaries[1:], side="right")
    per_period = np.split(positions, splits)
    full_positions = [
        pos - boundaries[idx] for idx, pos in enumerate(per_period)
    ]
    cost.offline = refresh_offline_cost(
        sample_size, counts, disk, cached_fraction, full_log_positions=full_positions
    )
    return cost
