"""Engine-vs-reference validation harness.

The figures are produced by the vectorised engine
(:mod:`repro.experiments.engine`); their credibility rests on the engine
counting the *same* block accesses as the per-element reference
implementation (:mod:`repro.core`).  This module runs both at identical
parameters and reports the agreement -- usable as a library call, from
the CLI (``python -m repro.cli validate``), and by the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.maintenance import SampleMaintainer
from repro.core.policies import PeriodicPolicy
from repro.core.refresh.stack import StackRefresh
from repro.core.reservoir import build_reservoir
from repro.experiments import engine
from repro.rng.random_source import RandomSource
from repro.storage.block_device import SimulatedBlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.files import LogFile, SampleFile
from repro.storage.records import IntRecordCodec

__all__ = ["StrategyAgreement", "ValidationReport", "validate_engine"]


@dataclass(frozen=True)
class StrategyAgreement:
    """Mean costs of one strategy under both implementations."""

    strategy: str
    reference_online: float
    reference_offline: float
    engine_online: float
    engine_offline: float
    trials: int

    @property
    def reference_total(self) -> float:
        return self.reference_online + self.reference_offline

    @property
    def engine_total(self) -> float:
        return self.engine_online + self.engine_offline

    @property
    def relative_error(self) -> float:
        """|engine - reference| / reference on the total cost."""
        if self.reference_total == 0:
            return 0.0 if self.engine_total == 0 else float("inf")
        return abs(self.engine_total - self.reference_total) / self.reference_total


@dataclass(frozen=True)
class ValidationReport:
    """Agreement across all strategies at one parameter point."""

    sample_size: int
    initial_dataset: int
    inserts: int
    refresh_period: int
    agreements: tuple[StrategyAgreement, ...]

    @property
    def worst_relative_error(self) -> float:
        return max(a.relative_error for a in self.agreements)

    def passed(self, tolerance: float = 0.10) -> bool:
        return self.worst_relative_error <= tolerance

    def summary(self) -> str:
        lines = [
            f"engine validation: M={self.sample_size}, |R0|={self.initial_dataset}, "
            f"{self.inserts} inserts, period {self.refresh_period}",
            f"  {'strategy':<10} | {'ref total s':>11} | {'engine total s':>14} "
            f"| {'rel err':>8}",
        ]
        for a in self.agreements:
            lines.append(
                f"  {a.strategy:<10} | {a.reference_total:>11.4f} "
                f"| {a.engine_total:>14.4f} | {a.relative_error:>7.2%}"
            )
        lines.append(
            f"  worst relative error: {self.worst_relative_error:.2%}"
        )
        return "\n".join(lines)


def _reference_run(
    strategy: str,
    sample_size: int,
    initial_dataset: int,
    inserts: int,
    refresh_period: int,
    seed: int,
    scalar: bool = False,
) -> tuple[float, float]:
    rng = RandomSource(seed=seed)
    cost = CostModel()
    codec = IntRecordCodec()
    sample = SampleFile(SimulatedBlockDevice(cost, "sample"), codec, sample_size)
    initial, seen = build_reservoir(range(initial_dataset), sample_size, rng)
    sample.initialize(initial)
    maintainer = SampleMaintainer(
        sample, rng, strategy=strategy, initial_dataset_size=seen,
        log=LogFile(SimulatedBlockDevice(cost, "log"), codec),
        algorithm=StackRefresh(), policy=PeriodicPolicy(refresh_period),
        cost_model=cost,
    )
    maintainer.insert_many(
        range(initial_dataset, initial_dataset + inserts), scalar=scalar
    )
    return (
        maintainer.stats.online.cost_seconds(),
        maintainer.stats.offline.cost_seconds(),
    )


def validate_engine(
    sample_size: int = 256,
    initial_dataset: int = 512,
    inserts: int = 8192,
    refresh_period: int = 1024,
    trials: int = 20,
    seed: int = 0,
    scalar: bool = False,
) -> ValidationReport:
    """Run reference and engine at identical parameters; report agreement.

    Costs are averaged over ``trials`` independent seeds per
    implementation (both are stochastic realisations of the same model).
    The reference runs use the skip-based batch insert path; ``scalar``
    is the escape hatch forcing element-wise inserts (both produce
    bit-identical counts -- the equivalence property tests prove it --
    so this only trades speed).
    """
    agreements = []
    for strategy in ("immediate", "candidate", "full"):
        ref_online = ref_offline = 0.0
        for t in range(trials):
            online, offline = _reference_run(
                strategy, sample_size, initial_dataset, inserts,
                refresh_period, seed=seed + 1000 + t, scalar=scalar,
            )
            ref_online += online
            ref_offline += offline
        eng_online = eng_offline = 0.0
        for t in range(trials):
            cost = engine.simulate_strategy(
                strategy, sample_size, initial_dataset, inserts,
                refresh_period, seed=seed + t,
            )
            eng_online += cost.online_seconds()
            eng_offline += cost.offline_seconds()
        agreements.append(
            StrategyAgreement(
                strategy=strategy,
                reference_online=ref_online / trials,
                reference_offline=ref_offline / trials,
                engine_online=eng_online / trials,
                engine_offline=eng_offline / trials,
                trials=trials,
            )
        )
    return ValidationReport(
        sample_size=sample_size,
        initial_dataset=initial_dataset,
        inserts=inserts,
        refresh_period=refresh_period,
        agreements=tuple(agreements),
    )
