"""Experiment harness regenerating the paper's evaluation (Sec. 6).

* :mod:`~repro.experiments.engine` -- vectorised cost simulator.  It draws
  the candidate stream element-exactly (one Bernoulli per insertion, the
  true ``M/(|R|+1)`` acceptance probabilities) and computes the expected
  block-level access counts of every strategy in closed form, reproducing
  the paper's count-then-weight methodology at 1M/100M paper scale in
  seconds.  An integration test pins the engine against the reference
  (per-element, real-block-device) implementation at small scale.
* :mod:`~repro.experiments.figures` -- one experiment definition per paper
  figure (Figs. 6-14) plus the Sec. 6.1 access-time table.
* :mod:`~repro.experiments.scaling` -- smoke/default/paper scale presets.
* :mod:`~repro.experiments.report` -- series tables and paper-vs-measured
  comparison output.
"""

from repro.experiments.engine import (
    MaintenanceCost,
    candidate_positions,
    immediate_online_cost,
    log_online_cost,
    refresh_offline_cost,
    geometric_file_cost,
    simulate_strategy,
)
from repro.experiments.figures import FIGURES, get_figure
from repro.experiments.report import format_series_table
from repro.experiments.scaling import SCALES, Scale

__all__ = [
    "MaintenanceCost",
    "candidate_positions",
    "immediate_online_cost",
    "log_online_cost",
    "refresh_offline_cost",
    "geometric_file_cost",
    "simulate_strategy",
    "FIGURES",
    "get_figure",
    "format_series_table",
    "SCALES",
    "Scale",
]
