"""Tabular output for regenerated figures.

The paper's figures are line plots; the reproduction prints the same
series as aligned text tables (one row per x value, one column per
algorithm), which is what EXPERIMENTS.md records and what the benchmark
suite echoes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.figures import SeriesResult
    from repro.obs.api import Instrumentation

__all__ = [
    "attach_metrics",
    "format_series_table",
    "format_series_csv",
    "format_series_json",
    "format_value",
]


def attach_metrics(
    result: "SeriesResult", instrumentation: "Instrumentation | None"
) -> "SeriesResult":
    """Store the run's metrics snapshot on the result (``extra["metrics"]``).

    No-op when ``instrumentation`` is None, so experiment drivers can pass
    their optional facade straight through.  The snapshot rides along in
    :func:`format_series_json` and is summarised by
    :func:`format_series_table`'s footer.
    """
    if instrumentation is not None:
        result.extra["metrics"] = instrumentation.snapshot()
    return result


def format_value(value: float) -> str:
    """Engineering-style compact formatting for cost/size values."""
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1_000_000:
        return f"{value / 1_000_000:.3g}M"
    if magnitude >= 1_000:
        return f"{value / 1_000:.3g}k"
    if magnitude >= 1:
        return f"{value:.3g}"
    return f"{value:.2e}"


def format_series_table(result: "SeriesResult") -> str:
    """Render one figure's series as an aligned text table."""
    names = list(result.series)
    header = [result.x_label] + names
    rows = [header]
    for idx, x in enumerate(result.x):
        row = [format_value(x)]
        for name in names:
            row.append(format_value(result.series[name][idx]))
        rows.append(row)
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = [
        f"{result.figure}: {result.title}"
        + (f"  [scale={result.scale}]" if result.scale else "")
    ]
    if result.notes:
        lines.append(f"  ({result.notes})")
    lines.append(
        "  " + " | ".join(h.rjust(w) for h, w in zip(rows[0], widths))
    )
    lines.append("  " + "-+-".join("-" * w for w in widths))
    for row in rows[1:]:
        lines.append("  " + " | ".join(v.rjust(w) for v, w in zip(row, widths)))
    lines.append(f"  (y: {result.y_label})")
    metrics = result.extra.get("metrics")
    if metrics:
        lines.append(
            f"  (metrics snapshot attached: {len(metrics['instruments'])} instruments)"
        )
    return "\n".join(lines)


def format_series_csv(result: "SeriesResult") -> str:
    """Render one figure's series as CSV (header row + one row per x)."""
    names = list(result.series)
    lines = [",".join([_csv_escape(result.x_label)] + [_csv_escape(n) for n in names])]
    for idx, x in enumerate(result.x):
        row = [repr(float(x))]
        row.extend(repr(float(result.series[name][idx])) for name in names)
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def format_series_json(result: "SeriesResult") -> str:
    """Render one figure's full metadata + series as pretty JSON."""
    import json

    payload = {
        "figure": result.figure,
        "title": result.title,
        "scale": result.scale,
        "x_label": result.x_label,
        "y_label": result.y_label,
        "notes": result.notes,
        "x": [float(v) for v in result.x],
        "series": {
            name: [float(v) for v in values]
            for name, values in result.series.items()
        },
    }
    # `extra` may hold arbitrary objects (e.g. calibration results); only
    # the metrics snapshot is guaranteed JSON-ready, so only it rides along.
    if "metrics" in result.extra:
        payload["metrics"] = result.extra["metrics"]
    return json.dumps(payload, indent=2) + "\n"


def _csv_escape(value: str) -> str:
    if any(ch in value for ch in ',"\n'):
        return '"' + value.replace('"', '""') + '"'
    return value
