"""Extension experiments beyond the paper's evaluation.

Two additions the paper's claims invite but its evaluation does not show:

* ``extra-accuracy`` -- estimator accuracy over many refresh cycles.  The
  correctness claim behind all of Sec. 4 is that deferred refresh leaves
  the sample *uniform*; if it silently biased the sample, estimate error
  would drift as refreshes accumulate.  This experiment maintains a
  sample across many refresh windows and tracks the relative error of the
  sample-mean estimator after each refresh: it should fluctuate around
  the theoretical sampling error and show no trend.
* ``extra-bias`` -- the recency profile of biased acceptance (footnote 3).
  With constant acceptance probability ``p``, sampled-element age should
  be geometric with mean ``M/p``; the experiment sweeps the configured
  half-life and compares measured mean age against theory.
* ``extra-serve-policies`` -- query latency under the serving layer's
  refresh-scheduling policies (docs/serving.md).  Deferred maintenance
  trades read latency for amortised write cost; the sweep shows how the
  staleness threshold moves that trade-off for each background policy.
"""

from __future__ import annotations

import math

from repro.core.acceptance import BiasedAcceptance, BiasedCandidateLogger
from repro.core.maintenance import SampleMaintainer
from repro.core.refresh.stack import StackRefresh
from repro.core.reservoir import build_reservoir
from repro.experiments.figures import SeriesResult
from repro.experiments.scaling import Scale, resolve_scale
from repro.rng.random_source import RandomSource
from repro.storage.block_device import SimulatedBlockDevice
from repro.storage.cost_model import CostModel
from repro.storage.files import LogFile, SampleFile
from repro.storage.records import IntRecordCodec

__all__ = ["extra_accuracy", "extra_bias", "extra_serve_policies", "EXTRAS"]


def _accuracy_params(scale: Scale) -> tuple[int, int, int, int]:
    """(sample size, window inserts, windows, trials) per scale."""
    if scale.name == "paper":
        return 5_000, 25_000, 40, 10
    if scale.name == "default":
        return 2_000, 10_000, 30, 10
    return 500, 2_500, 20, 8


def extra_accuracy(scale: "str | Scale" = "default", seed: int = 0) -> SeriesResult:
    """Relative estimate error after each of many refresh cycles."""
    s = resolve_scale(scale)
    m, window, windows, trials = _accuracy_params(s)
    errors = [[] for _ in range(windows)]
    for trial in range(trials):
        rng = RandomSource(seed=seed * 1000 + trial)
        cost = CostModel()
        codec = IntRecordCodec()
        sample = SampleFile(SimulatedBlockDevice(cost, "s"), codec, m)
        initial, seen = build_reservoir(range(2 * m), m, rng)
        sample.initialize(initial)
        maintainer = SampleMaintainer(
            sample, rng, strategy="candidate", initial_dataset_size=seen,
            log=LogFile(SimulatedBlockDevice(cost, "l"), codec),
            algorithm=StackRefresh(), cost_model=cost,
        )
        next_value = 2 * m
        for window_index in range(windows):
            maintainer.insert_many(range(next_value, next_value + window))
            next_value += window
            maintainer.refresh()
            estimate = sum(sample.peek_all()) / m
            truth = (next_value - 1) / 2.0
            errors[window_index].append(abs(estimate - truth) / truth)
    mean_error = [sum(es) / len(es) for es in errors]
    # Theoretical sampling error of the mean of 0..N-1 from an M-sample:
    # sd/mean/sqrt(M) with sd/mean = (1/sqrt(3)) for uniform values, and
    # |error| has mean sqrt(2/pi) * stderr.
    theory = []
    n = 2 * m
    for _ in range(windows):
        n += window
        cv = (1.0 / math.sqrt(3.0))
        theory.append(math.sqrt(2.0 / math.pi) * cv / math.sqrt(m))
    return SeriesResult(
        figure="extra-accuracy",
        title="Estimate error across refresh cycles (extension)",
        x_label="Refresh cycle",
        y_label="mean relative error of the sample-mean estimate",
        x=[float(i + 1) for i in range(windows)],
        series={"measured": mean_error, "theory (uniform sampling)": theory},
        scale=s.name,
        log_log=False,
        notes=f"M={m}, {window} inserts/window, {trials} trials",
    )


def _bias_params(scale: Scale) -> tuple[int, int, int]:
    """(sample size, inserts, trials) per scale."""
    if scale.name == "paper":
        return 2_000, 400_000, 5
    if scale.name == "default":
        return 500, 100_000, 5
    return 100, 20_000, 5


def extra_bias(scale: "str | Scale" = "default", seed: int = 0) -> SeriesResult:
    """Measured vs. theoretical mean age under biased acceptance."""
    s = resolve_scale(scale)
    m, inserts, trials = _bias_params(s)
    half_lives = [m // 2, m, 2 * m, 4 * m, 8 * m]
    measured, theory = [], []
    for half_life in half_lives:
        ages = []
        for trial in range(trials):
            rng = RandomSource(seed=seed * 100 + trial)
            cost = CostModel()
            codec = IntRecordCodec()
            sample = SampleFile(SimulatedBlockDevice(cost, "s"), codec, m)
            sample.initialize(list(range(m)))
            acceptance = BiasedAcceptance.with_half_life(m, half_life)
            logger = BiasedCandidateLogger(
                LogFile(SimulatedBlockDevice(cost, "l"), codec), acceptance, rng
            )
            algorithm = StackRefresh()
            refresh_every = max(1, m)
            for start in range(m, m + inserts, refresh_every):
                for v in range(start, start + refresh_every):
                    logger.insert(v)
                algorithm.refresh(sample, logger.source(), rng)
                logger.after_refresh()
            newest = m + inserts - 1
            ages.extend(
                newest - v for v in sample.peek_all() if v >= m
            )
            theory_mean = m / acceptance.expected_rate
        measured.append(sum(ages) / len(ages))
        theory.append(theory_mean)
    return SeriesResult(
        figure="extra-bias",
        title="Recency bias: mean sampled-element age vs half-life (extension)",
        x_label="configured half-life (arrivals)",
        y_label="mean age of sampled elements (arrivals)",
        x=[float(h) for h in half_lives],
        series={"measured": measured, "theory M/p": theory},
        scale=s.name,
        log_log=False,
        notes=f"M={m}, {inserts} inserts, {trials} trials; footnote-3 scheme",
    )


def _serve_params(scale: Scale) -> tuple[int, int, int]:
    """(events, samples, sample size) per scale."""
    if scale.name == "paper":
        return 2_000, 4, 512
    if scale.name == "default":
        return 800, 3, 256
    return 200, 2, 128


def extra_serve_policies(
    scale: "str | Scale" = "default", seed: int = 0
) -> SeriesResult:
    """Where refresh work lands vs the staleness threshold, per policy.

    Tight thresholds keep maintenance in the background (many small
    refresh jobs, few reads ever forced to refresh); lax thresholds shed
    background work and push refreshes onto the bounded-staleness read
    path.  The background-job series is plotted per policy; the forced
    read-path refreshes are plotted for the FIFO runs (the other policies
    land within a few jobs of it -- a laxer background scheduler leaves
    slightly more for the read path to mop up, never less).
    """
    from repro.serve.sim import SimConfig, run_simulation

    s = resolve_scale(scale)
    events, samples, sample_size = _serve_params(s)
    thresholds = [16, 32, 64, 128, 256]
    policies = ("fifo", "longest-log", "deadline")
    series: dict[str, list[float]] = {
        **{f"background ({p})": [] for p in policies},
        "forced on read path (fifo)": [],
    }
    for threshold in thresholds:
        forced = None
        for policy in policies:
            report = run_simulation(
                SimConfig(
                    seed=seed,
                    events=events,
                    samples=samples,
                    sample_size=sample_size,
                    policy=f"{policy}:{threshold}",
                    staleness_bound=threshold,
                )
            )
            series[f"background ({policy})"].append(float(report.refresh_jobs))
            if forced is None:
                forced = float(report.forced_refreshes)
        series["forced on read path (fifo)"].append(forced)
    return SeriesResult(
        figure="extra-serve-policies",
        title="Refresh placement vs staleness threshold by policy (extension)",
        x_label="staleness threshold / bound (log elements)",
        y_label="refreshes over the run",
        x=[float(t) for t in thresholds],
        series=series,
        scale=s.name,
        log_log=False,
        notes=(
            f"{events} events, {samples} samples of M={sample_size}; "
            "bounded reads share the sweep bound, so lax thresholds trade "
            "background jobs for read-path refreshes and higher served "
            "staleness"
        ),
    )


#: Extension-experiment registry, merged into the CLI next to FIGURES.
EXTRAS = {
    "extra-accuracy": extra_accuracy,
    "extra-bias": extra_bias,
    "extra-serve-policies": extra_serve_policies,
}
