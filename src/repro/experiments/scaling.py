"""Scale presets for the experiments.

The paper's setting is a 1M-element sample receiving 100M insertions.
Every figure definition takes a :class:`Scale` so the same experiment runs
as a quick smoke test, at a laptop-friendly default, or at full paper
scale (the engine handles paper scale in seconds; only the CPU-timing
figure, Fig. 13, is meaningfully slower because it times the real Python
implementations).

All sweeps inside the figures are expressed *relative* to these base
quantities, so shapes are preserved across scales.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Scale", "SCALES", "resolve_scale"]


@dataclass(frozen=True)
class Scale:
    """Base quantities of one experiment scale."""

    name: str
    sample_size: int
    initial_dataset: int
    inserts: int
    refresh_period: int
    #: trials for averaging where the figure needs it
    repetitions: int = 1

    def __post_init__(self) -> None:
        if self.sample_size <= 0 or self.inserts <= 0 or self.refresh_period <= 0:
            raise ValueError("scale quantities must be positive")
        if self.initial_dataset < self.sample_size:
            raise ValueError("initial dataset must hold at least one full sample")


SCALES: dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        sample_size=2_000,
        initial_dataset=2_000,
        inserts=200_000,
        refresh_period=2_000,
    ),
    "default": Scale(
        name="default",
        sample_size=100_000,
        initial_dataset=100_000,
        inserts=10_000_000,
        refresh_period=100_000,
    ),
    "paper": Scale(
        name="paper",
        sample_size=1_000_000,
        initial_dataset=1_000_000,
        inserts=100_000_000,
        refresh_period=1_000_000,
    ),
}


def resolve_scale(scale: "str | Scale") -> Scale:
    """Accept either a preset name or an explicit :class:`Scale`."""
    if isinstance(scale, Scale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)} or pass a Scale"
        ) from None
