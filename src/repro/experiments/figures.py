"""One experiment definition per figure of the paper's evaluation (Sec. 6).

Each ``figN(scale, seed)`` function regenerates the series the paper
plots, at the requested scale, and returns a :class:`SeriesResult`.  The
registry :data:`FIGURES` maps experiment ids (``"fig6"`` .. ``"fig14"``,
plus ``"access-times"``) to their runners; the CLI and the benchmark
suite both dispatch through it.

Conventions: costs are in seconds under the paper's disk parameters
(:data:`repro.storage.cost_model.PAPER_DISK`); the series names match the
paper's legends (``Immediate``, ``Full``, ``Cand.``, plus ``GF`` where it
appears).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.refresh.array import ArrayRefresh
from repro.core.refresh.math import expected_displaced
from repro.core.refresh.nomem import span_of_gaps
from repro.core.refresh.stack import select_final_indexes
from repro.experiments import engine
from repro.experiments.scaling import Scale, resolve_scale
from repro.rng.numpy_source import numpy_generator
from repro.rng.random_source import RandomSource
from repro.storage.cost_model import AccessStats, PAPER_DISK, DiskParameters
from repro.storage.memory import MT19937_STATE_BYTES, INDEX_BYTES

__all__ = ["SeriesResult", "FIGURES", "get_figure"]


@dataclass
class SeriesResult:
    """One figure's regenerated data."""

    figure: str
    title: str
    x_label: str
    y_label: str
    x: list[float]
    series: dict[str, list[float]]
    notes: str = ""
    scale: str = ""
    log_log: bool = True
    extra: dict = field(default_factory=dict)

    def column(self, name: str) -> list[float]:
        return self.series[name]


def _checkpoints(inserts: int) -> list[int]:
    """Log-spaced operation counts, 0.1% .. 100% of the insert volume.

    At paper scale this is the paper's x-axis (0.1M .. 100M operations).
    """
    fractions = [0.001, 0.00316, 0.01, 0.0316, 0.1, 0.316, 1.0]
    return sorted({max(1, int(round(f * inserts))) for f in fractions})


# ---------------------------------------------------------------------------
# Fig. 6 / Fig. 7 -- cost over time
# ---------------------------------------------------------------------------


def fig6(scale: "str | Scale" = "default", seed: int = 0) -> SeriesResult:
    """Online cost over time, no intermediate refresh (Fig. 6)."""
    s = resolve_scale(scale)
    rng = numpy_generator(seed)
    positions = engine.candidate_positions(
        rng, s.sample_size, s.initial_dataset, s.inserts
    )
    epb = PAPER_DISK.elements_per_block
    xs = _checkpoints(s.inserts)
    immediate, full, cand = [], [], []
    for x in xs:
        c = int(np.searchsorted(positions, x, side="right"))
        immediate.append(
            engine.immediate_online_cost(c, s.sample_size).cost_seconds()
        )
        full_blocks = -(-x // epb)
        full.append(
            AccessStats(seq_writes=full_blocks - 1, random_writes=1).cost_seconds()
        )
        cand_blocks = -(-c // epb) if c else 0
        cand.append(
            AccessStats(
                seq_writes=max(0, cand_blocks - 1),
                random_writes=1 if cand_blocks else 0,
            ).cost_seconds()
        )
    return SeriesResult(
        figure="fig6",
        title="Online cost over time",
        x_label="No. of Operations",
        y_label="Online Cost (seconds)",
        x=[float(x) for x in xs],
        series={"Immediate": immediate, "Full": full, "Cand.": cand},
        scale=s.name,
        notes="no intermediate refreshes; cumulative log-phase cost",
    )


def fig7(scale: "str | Scale" = "default", seed: int = 0) -> SeriesResult:
    """Total cost over time, refresh every base period (Fig. 7)."""
    s = resolve_scale(scale)
    rng = numpy_generator(seed)
    positions = engine.candidate_positions(
        rng, s.sample_size, s.initial_dataset, s.inserts
    )
    counts = engine.candidate_counts_per_period(
        positions, s.inserts, s.refresh_period
    )
    n_periods = counts.size
    boundaries = np.arange(n_periods, dtype=np.int64) * s.refresh_period
    splits = np.searchsorted(positions, boundaries[1:], side="right")
    per_period_positions = [
        pos - boundaries[idx]
        for idx, pos in enumerate(np.split(positions, splits))
    ]

    # Per-period costs for each strategy.
    imm_per_period = [
        engine.immediate_online_cost(int(c), s.sample_size).cost_seconds()
        for c in counts
    ]
    cand_per_period = _candidate_period_costs(s, counts)
    period_sizes = np.full(n_periods, s.refresh_period, dtype=np.int64)
    period_sizes[-1] = s.inserts - s.refresh_period * (n_periods - 1)
    full_per_period = _full_period_costs(
        s, counts, per_period_positions, period_sizes
    )

    xs = _checkpoints(s.inserts)
    series = {"Immediate": [], "Full": [], "Cand.": []}
    epb = PAPER_DISK.elements_per_block
    for x in xs:
        done = int(min(n_periods, x // s.refresh_period))
        tail_inserts = x - done * s.refresh_period
        tail_candidates = int(
            np.searchsorted(positions, x, side="right")
        ) - int(np.searchsorted(positions, done * s.refresh_period, side="right"))
        series["Immediate"].append(
            sum(imm_per_period[:done])
            + engine.immediate_online_cost(
                tail_candidates, s.sample_size
            ).cost_seconds()
        )
        series["Full"].append(
            sum(full_per_period[:done])
            + engine.log_online_cost([tail_inserts]).cost_seconds()
        )
        series["Cand."].append(
            sum(cand_per_period[:done])
            + engine.log_online_cost([tail_candidates]).cost_seconds()
        )
    return SeriesResult(
        figure="fig7",
        title="Total cost over time",
        x_label="No. of Operations",
        y_label="Total Cost (seconds)",
        x=[float(x) for x in xs],
        series=series,
        scale=s.name,
        notes=f"refresh every {s.refresh_period} inserts",
    )


def _candidate_period_costs(s: Scale, counts: np.ndarray) -> list[float]:
    online = [
        engine.log_online_cost([int(c)]).cost_seconds() for c in counts
    ]
    log_reads = engine.expected_candidate_log_blocks_read(s.sample_size, counts)
    sample_writes = engine.expected_sample_blocks_written(s.sample_size, counts)
    offline = [
        AccessStats(
            seq_reads=int(round(r)), seq_writes=int(round(w))
        ).cost_seconds()
        for r, w in zip(log_reads, sample_writes)
    ]
    return [a + b for a, b in zip(online, offline)]


def _full_period_costs(
    s: Scale,
    counts: np.ndarray,
    per_period_positions: list[np.ndarray],
    period_sizes: np.ndarray,
) -> list[float]:
    sample_writes = engine.expected_sample_blocks_written(s.sample_size, counts)
    costs = []
    for idx, pos in enumerate(per_period_positions):
        online = engine.log_online_cost([int(period_sizes[idx])]).cost_seconds()
        reads = engine.expected_full_log_blocks_read(s.sample_size, pos)
        offline = AccessStats(
            seq_reads=int(round(reads)), seq_writes=int(round(sample_writes[idx]))
        ).cost_seconds()
        costs.append(online + offline)
    return costs


# ---------------------------------------------------------------------------
# Fig. 8 / Fig. 9 -- cost vs. sample size
# ---------------------------------------------------------------------------


def _sample_size_sweep(s: Scale) -> list[int]:
    return [s.sample_size * k for k in range(1, 11)]


def fig8(scale: "str | Scale" = "default", seed: int = 0) -> SeriesResult:
    """Online cost vs. sample size, no refresh (Fig. 8)."""
    s = resolve_scale(scale)
    xs = _sample_size_sweep(s)
    series = {"Immediate": [], "Full": [], "Cand.": []}
    for idx, m in enumerate(xs):
        initial = max(s.initial_dataset, m)
        cost_imm = engine.simulate_strategy(
            "immediate", m, initial, s.inserts, None, seed=seed + idx
        )
        cost_full = engine.simulate_strategy(
            "full", m, initial, s.inserts, None, seed=seed + idx
        )
        cost_cand = engine.simulate_strategy(
            "candidate", m, initial, s.inserts, None, seed=seed + idx
        )
        series["Immediate"].append(cost_imm.total_seconds())
        series["Full"].append(cost_full.total_seconds())
        series["Cand."].append(cost_cand.total_seconds())
    return SeriesResult(
        figure="fig8",
        title="Online cost and sample sizes",
        x_label="Sample Size",
        y_label="Online Cost (seconds)",
        x=[float(m) for m in xs],
        series=series,
        scale=s.name,
        notes="initial dataset grows with the sample when needed",
        log_log=False,
    )


def fig9(scale: "str | Scale" = "default", seed: int = 0) -> SeriesResult:
    """Total cost vs. sample size, refresh every base period (Fig. 9)."""
    s = resolve_scale(scale)
    xs = _sample_size_sweep(s)
    series = {"Immediate": [], "Full": [], "Cand.": []}
    for idx, m in enumerate(xs):
        initial = max(s.initial_dataset, m)
        for name, strategy in (
            ("Immediate", "immediate"),
            ("Full", "full"),
            ("Cand.", "candidate"),
        ):
            cost = engine.simulate_strategy(
                strategy, m, initial, s.inserts, s.refresh_period, seed=seed + idx
            )
            series[name].append(cost.total_seconds())
    return SeriesResult(
        figure="fig9",
        title="Total cost and sample sizes",
        x_label="Sample Size",
        y_label="Total Cost (seconds)",
        x=[float(m) for m in xs],
        series=series,
        scale=s.name,
        notes=f"refresh every {s.refresh_period} inserts",
        log_log=False,
    )


# ---------------------------------------------------------------------------
# Fig. 10 / Fig. 11 -- cost vs. refresh period
# ---------------------------------------------------------------------------


def _period_sweep(s: Scale) -> list[int]:
    """Periods spanning 1e-5 .. 1e-1 of the insert volume (1k..10M at paper scale)."""
    fractions = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1]
    return sorted({max(1, int(round(f * s.inserts))) for f in fractions})


def fig10(scale: "str | Scale" = "default", seed: int = 0) -> SeriesResult:
    """Online cost vs. refresh period (Fig. 10)."""
    s = resolve_scale(scale)
    xs = _period_sweep(s)
    series = {"Immediate": [], "Full": [], "Cand.": []}
    for idx, period in enumerate(xs):
        for name, strategy in (
            ("Immediate", "immediate"),
            ("Full", "full"),
            ("Cand.", "candidate"),
        ):
            cost = engine.simulate_strategy(
                strategy, s.sample_size, s.initial_dataset, s.inserts, period,
                seed=seed + idx,
            )
            series[name].append(cost.online_seconds())
    return SeriesResult(
        figure="fig10",
        title="Online cost and refresh period",
        x_label="Refresh Period",
        y_label="Online Cost (seconds)",
        x=[float(p) for p in xs],
        series=series,
        scale=s.name,
        notes="log reuse costs one random I/O per refresh (Sec. 6.2)",
    )


def fig11(scale: "str | Scale" = "default", seed: int = 0) -> SeriesResult:
    """Total cost vs. refresh period (Fig. 11)."""
    s = resolve_scale(scale)
    xs = _period_sweep(s)
    series = {"Immediate": [], "Full": [], "Cand.": []}
    for idx, period in enumerate(xs):
        for name, strategy in (
            ("Immediate", "immediate"),
            ("Full", "full"),
            ("Cand.", "candidate"),
        ):
            cost = engine.simulate_strategy(
                strategy, s.sample_size, s.initial_dataset, s.inserts, period,
                seed=seed + idx,
            )
            series[name].append(cost.total_seconds())
    return SeriesResult(
        figure="fig11",
        title="Total cost and refresh period",
        x_label="Refresh Period",
        y_label="Total Cost (seconds)",
        x=[float(p) for p in xs],
        series=series,
        scale=s.name,
    )


# ---------------------------------------------------------------------------
# Fig. 12 / Fig. 13 -- memory and CPU of the refresh implementations
# ---------------------------------------------------------------------------


def _candidate_sweep(s: Scale) -> list[int]:
    fractions = [0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 2.5]
    return sorted({max(1, int(round(f * s.sample_size))) for f in fractions})


def fig12(scale: "str | Scale" = "default", seed: int = 0) -> SeriesResult:
    """Memory consumption vs. number of candidates (Fig. 12).

    Array: ``4M`` bytes always.  Stack: 4 bytes per final candidate
    (``E(Psi)``).  Nomem: one PRNG state.  GF: its buffer must hold the
    deferred candidates as full elements (``E(Psi)`` of them survive
    buffer-internal replacement).
    """
    s = resolve_scale(scale)
    element = PAPER_DISK.element_size
    xs = _candidate_sweep(s)
    array_mb, stack_mb, nomem_mb, gf_mb = [], [], [], []
    for c in xs:
        psi = expected_displaced(s.sample_size, c)
        array_mb.append(s.sample_size * INDEX_BYTES / 1e6)
        stack_mb.append(psi * INDEX_BYTES / 1e6)
        nomem_mb.append(MT19937_STATE_BYTES / 1e6)
        gf_mb.append(psi * element / 1e6)
    return SeriesResult(
        figure="fig12",
        title="Memory consumption",
        x_label="Number of Candidates",
        y_label="Memory Consumption (MB)",
        x=[float(c) for c in xs],
        series={"Array": array_mb, "Stack": stack_mb, "Nomem": nomem_mb, "GF": gf_mb},
        scale=s.name,
        log_log=False,
    )


def fig13(scale: "str | Scale" = "default", seed: int = 0) -> SeriesResult:
    """CPU cost of the refresh precomputation phases (Fig. 13).

    Times the *actual implementations* (Python, so absolute values differ
    from the paper's Java numbers; the ordering is the claim).
    """
    s = resolve_scale(scale)
    xs = _candidate_sweep(s)
    m = s.sample_size
    array_s, stack_s, nomem_s = [], [], []
    for idx, c in enumerate(xs):
        rng = RandomSource(seed=seed + idx)
        start = time.perf_counter()
        array = ArrayRefresh.assign_slots(rng, m, c)
        ArrayRefresh._sort_non_empty(array)
        array_s.append(time.perf_counter() - start)

        rng = RandomSource(seed=seed + idx)
        start = time.perf_counter()
        select_final_indexes(rng, m, c)
        stack_s.append(time.perf_counter() - start)

        rng = RandomSource(seed=seed + idx)
        start = time.perf_counter()
        span_of_gaps(rng, m)  # pass 1
        span_of_gaps(rng, m)  # pass 2 regenerates the same count of draws
        nomem_s.append(time.perf_counter() - start)
    return SeriesResult(
        figure="fig13",
        title="Computational cost",
        x_label="Number of Candidates",
        y_label="CPU Time (seconds)",
        x=[float(c) for c in xs],
        series={"Array": array_s, "Stack": stack_s, "Nomem": nomem_s},
        scale=s.name,
        log_log=False,
        notes="Python timings; paper timed Java -- compare ordering, not values",
    )


# ---------------------------------------------------------------------------
# Fig. 14 -- geometric file buffer fraction vs. total cost
# ---------------------------------------------------------------------------


def fig14(scale: "str | Scale" = "default", seed: int = 0) -> SeriesResult:
    """GF buffer size vs. total cost (Fig. 14).

    Refresh cadence for Full/Cand. equals the GF's flush cadence (every
    ``B`` candidates), and both are granted the same memory to pin a
    sample prefix (cost scaled by ``1 - f``, the paper's own accounting).
    """
    s = resolve_scale(scale)
    rng = numpy_generator(seed)
    positions = engine.candidate_positions(
        rng, s.sample_size, s.initial_dataset, s.inserts
    )
    total_candidates = int(positions.size)
    fractions = [0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08]
    full_s, cand_s, gf_s = [], [], []
    # Segment floor calibrated to the paper's Fig. 14 crossovers (footnote 5
    # fixes the GF segment parameter beta); proportional across scales.
    min_segment = max(1, round(16_384 * s.sample_size / 1_000_000))
    for f in fractions:
        buffer_capacity = max(1, int(round(f * s.sample_size)))
        flushes = max(1, total_candidates // buffer_capacity)
        # Candidate counts per GF-cadence period: B each, remainder last.
        counts = np.full(flushes, buffer_capacity, dtype=np.int64)
        remainder = total_candidates - flushes * buffer_capacity
        if remainder > 0:
            counts = np.concatenate([counts, [remainder]])
        # Candidate strategy.
        cand_online = engine.log_online_cost(counts)
        cand_offline = engine.refresh_offline_cost(
            s.sample_size, counts, cached_fraction=f
        )
        cand_s.append((cand_online + cand_offline).cost_seconds())
        # Full strategy: periods in insert-space bounded by every B-th candidate.
        boundary_idx = np.arange(buffer_capacity, total_candidates, buffer_capacity)
        boundaries = np.concatenate(
            ([0], positions[boundary_idx - 1], [s.inserts])
        ).astype(np.int64)
        period_sizes = np.diff(boundaries)
        splits = np.searchsorted(positions, boundaries[1:-1], side="right")
        per_period = np.split(positions, splits)
        full_pos = [pos - boundaries[i] for i, pos in enumerate(per_period)]
        counts_full = np.array([p.size for p in full_pos], dtype=np.int64)
        full_online = engine.log_online_cost(period_sizes)
        full_offline = engine.refresh_offline_cost(
            s.sample_size, counts_full, cached_fraction=f,
            full_log_positions=full_pos,
        )
        full_s.append((full_online + full_offline).cost_seconds())
        # Geometric file.
        gf_stats, _ = engine.geometric_file_cost(
            s.sample_size, total_candidates, buffer_capacity,
            min_segment=min_segment,
        )
        gf_s.append(gf_stats.cost_seconds())
    return SeriesResult(
        figure="fig14",
        title="GF buffer size & total cost",
        x_label="Buffer Fraction",
        y_label="Total Cost (seconds)",
        x=fractions,
        series={"Full": full_s, "Cand.": cand_s, "GF": gf_s},
        scale=s.name,
        log_log=False,
    )


# ---------------------------------------------------------------------------
# Sec. 6.1 -- access-time calibration table
# ---------------------------------------------------------------------------


def access_times(scale: "str | Scale" = "default", seed: int = 0) -> SeriesResult:
    """The Sec. 6.1 access-time table, re-measured on this machine.

    Falls back to the paper's published values as the reference row; the
    measured row reflects the hardware the reproduction runs on.
    """
    import tempfile
    import os

    from repro.storage.real_disk import calibrate_disk

    s = resolve_scale(scale)
    blocks = {"smoke": 256, "default": 2048, "paper": 16384}.get(s.name, 2048)
    with tempfile.TemporaryDirectory() as tmp:
        result = calibrate_disk(os.path.join(tmp, "calibration.bin"), blocks)
    paper = PAPER_DISK
    return SeriesResult(
        figure="access-times",
        title="Per-block access times (ms)",
        x_label="measurement",
        y_label="milliseconds per block",
        x=[0.0, 1.0],
        series={
            "seq read": [paper.seq_read_ms, result.seq_read_ms],
            "seq write": [paper.seq_write_ms, result.seq_write_ms],
            "random read": [paper.random_read_ms, result.random_read_ms],
            "random write": [paper.random_write_ms, result.random_write_ms],
        },
        scale=s.name,
        log_log=False,
        notes="row 0 = paper's IDE disk; row 1 = this machine",
        extra={"calibration": result},
    )


FIGURES: dict[str, Callable[..., SeriesResult]] = {
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "access-times": access_times,
}


def all_experiments() -> dict[str, Callable[..., SeriesResult]]:
    """Paper figures plus the extension experiments."""
    from repro.experiments.extra import EXTRAS

    combined = dict(FIGURES)
    combined.update(EXTRAS)
    return combined


def get_figure(name: str) -> Callable[..., SeriesResult]:
    experiments = all_experiments()
    try:
        return experiments[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(experiments)}"
        ) from None
