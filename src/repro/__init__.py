"""repro: deferred maintenance of disk-based random samples.

A faithful, self-contained reproduction of Gemulla & Lehner, *Deferred
Maintenance of Disk-Based Random Samples* (EDBT 2006): candidate logging,
the Array/Stack/Nomem deferred refresh algorithms, the full-log adapter,
an immediate-refresh and a Geometric File baseline, plus the simulated
disk substrate and the experiment harness that regenerates every figure
of the paper's evaluation.

Quickstart
----------

>>> from repro import (
...     CostModel, SimulatedBlockDevice, IntRecordCodec, SampleFile, LogFile,
...     RandomSource, build_reservoir, SampleMaintainer, StackRefresh,
...     PeriodicPolicy,
... )
>>> rng = RandomSource(seed=1)
>>> cost = CostModel()
>>> codec = IntRecordCodec()
>>> sample = SampleFile(SimulatedBlockDevice(cost, "sample"), codec, size=100)
>>> initial, seen = build_reservoir(range(1000), 100, rng)
>>> sample.initialize(initial)
>>> maintainer = SampleMaintainer(
...     sample, rng, strategy="candidate", initial_dataset_size=seen,
...     log=LogFile(SimulatedBlockDevice(cost, "log"), codec),
...     algorithm=StackRefresh(), policy=PeriodicPolicy(500), cost_model=cost,
... )
>>> maintainer.insert_many(range(1000, 3000))
2000
>>> maintainer.stats.refreshes
4
"""

from repro.core import (
    ArrayRefresh,
    CandidateLogger,
    CandidateLogSource,
    FullLogger,
    FullLogSource,
    MaintenanceStats,
    ManualPolicy,
    NaiveCandidateRefresh,
    NaiveFullRefresh,
    NomemRefresh,
    PeriodicPolicy,
    RefreshResult,
    ReservoirSampler,
    SampleMaintainer,
    StackRefresh,
    ThresholdPolicy,
    build_reservoir,
)
from repro.obs import Instrumentation, maybe_span
from repro.rng import MT19937, RandomSource
from repro.storage import (
    AccessStats,
    CostModel,
    DiskParameters,
    IntRecordCodec,
    LogFile,
    MemoryReport,
    PAPER_DISK,
    SampleFile,
    SimulatedBlockDevice,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # rng
    "MT19937",
    "RandomSource",
    # observability
    "Instrumentation",
    "maybe_span",
    # storage
    "AccessStats",
    "CostModel",
    "DiskParameters",
    "PAPER_DISK",
    "SimulatedBlockDevice",
    "SampleFile",
    "LogFile",
    "IntRecordCodec",
    "MemoryReport",
    # core
    "ReservoirSampler",
    "build_reservoir",
    "CandidateLogger",
    "FullLogger",
    "CandidateLogSource",
    "FullLogSource",
    "SampleMaintainer",
    "MaintenanceStats",
    "RefreshResult",
    "ArrayRefresh",
    "StackRefresh",
    "NomemRefresh",
    "NaiveCandidateRefresh",
    "NaiveFullRefresh",
    "PeriodicPolicy",
    "ThresholdPolicy",
    "ManualPolicy",
]
