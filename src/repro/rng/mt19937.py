"""Mersenne Twister (MT19937) implemented from scratch.

The paper's Nomem Refresh algorithm (Sec. 4.3) relies on two properties of a
pseudo-random number generator:

1. the state transition is deterministic, so a stored state replays the
   exact same variate sequence, and
2. the state is small ("1 to 1000 words for common generators", citing
   Matsumoto & Nishimura's MT19937 [14]).

We implement MT19937 directly rather than wrapping :mod:`random` so that the
state snapshot/restore mechanics the algorithm depends on are explicit,
portable, and under test.  The generator passes the reference test vectors
of the original C implementation (see ``tests/rng/test_mt19937.py``).

The state is 624 32-bit words plus an index -- about 2.5 KiB, which is the
"negligible" memory footprint the paper attributes to Nomem Refresh.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MT19937", "MTState"]

# MT19937 constants from Matsumoto & Nishimura (1998).
_N = 624
_M = 397
_MATRIX_A = 0x9908B0DF
_UPPER_MASK = 0x80000000
_LOWER_MASK = 0x7FFFFFFF
_MASK32 = 0xFFFFFFFF

# 1 / 2**53, for 53-bit doubles in [0, 1).
_INV_2_53 = 1.0 / 9007199254740992.0


@dataclass(frozen=True)
class MTState:
    """Immutable snapshot of an :class:`MT19937` generator.

    Snapshots are value objects: capturing one never aliases the live
    generator, so a later :meth:`MT19937.setstate` restores exactly the
    captured position in the stream.
    """

    key: tuple[int, ...]
    position: int

    def __post_init__(self) -> None:
        if len(self.key) != _N:
            raise ValueError(f"MT19937 state must have {_N} words, got {len(self.key)}")
        if not 0 <= self.position <= _N:
            raise ValueError(f"state position out of range: {self.position}")


class MT19937:
    """32-bit Mersenne Twister with explicit state snapshot/restore.

    >>> gen = MT19937(seed=5489)
    >>> state = gen.getstate()
    >>> first = [gen.next_uint32() for _ in range(3)]
    >>> gen.setstate(state)
    >>> first == [gen.next_uint32() for _ in range(3)]
    True
    """

    __slots__ = ("_mt", "_index")

    def __init__(self, seed: int = 5489) -> None:
        self._mt = [0] * _N
        self._index = _N
        self.seed(seed)

    def seed(self, seed: int) -> None:
        """Reinitialise the generator from a non-negative integer seed."""
        if seed < 0:
            raise ValueError("seed must be non-negative")
        seed &= _MASK32
        mt = self._mt
        mt[0] = seed
        for i in range(1, _N):
            prev = mt[i - 1]
            mt[i] = (1812433253 * (prev ^ (prev >> 30)) + i) & _MASK32
        self._index = _N

    def seed_by_array(self, init_key: list[int]) -> None:
        """Seed from an array of integers (``init_by_array`` in the C code).

        This is the seeding procedure the reference implementation uses for
        its published test vectors.
        """
        if not init_key:
            raise ValueError("init_key must be non-empty")
        self.seed(19650218)
        mt = self._mt
        i, j = 1, 0
        k = max(_N, len(init_key))
        for _ in range(k):
            mt[i] = (
                (mt[i] ^ ((mt[i - 1] ^ (mt[i - 1] >> 30)) * 1664525)) + init_key[j] + j
            ) & _MASK32
            i += 1
            j += 1
            if i >= _N:
                mt[0] = mt[_N - 1]
                i = 1
            if j >= len(init_key):
                j = 0
        for _ in range(_N - 1):
            mt[i] = ((mt[i] ^ ((mt[i - 1] ^ (mt[i - 1] >> 30)) * 1566083941)) - i) & _MASK32
            i += 1
            if i >= _N:
                mt[0] = mt[_N - 1]
                i = 1
        mt[0] = 0x80000000
        self._index = _N

    # -- state management (the Nomem Refresh prerequisite) ----------------

    def getstate(self) -> MTState:
        """Capture the full generator state as an immutable snapshot."""
        return MTState(key=tuple(self._mt), position=self._index)

    def setstate(self, state: MTState) -> None:
        """Restore a snapshot captured by :meth:`getstate`."""
        if not isinstance(state, MTState):
            raise TypeError(f"expected MTState, got {type(state).__name__}")
        self._mt = list(state.key)
        self._index = state.position

    # -- core generation ---------------------------------------------------

    def _generate_block(self) -> None:
        mt = self._mt
        for i in range(_N):
            y = (mt[i] & _UPPER_MASK) | (mt[(i + 1) % _N] & _LOWER_MASK)
            value = mt[(i + _M) % _N] ^ (y >> 1)
            if y & 1:
                value ^= _MATRIX_A
            mt[i] = value
        self._index = 0

    def next_uint32(self) -> int:
        """Return the next raw 32-bit output word."""
        if self._index >= _N:
            self._generate_block()
        y = self._mt[self._index]
        self._index += 1
        # Tempering.
        y ^= y >> 11
        y ^= (y << 7) & 0x9D2C5680
        y ^= (y << 15) & 0xEFC60000
        y ^= y >> 18
        return y

    def random(self) -> float:
        """Return a uniform float in [0, 1) with 53-bit resolution.

        Uses the standard two-word construction (``genrand_res53``) from the
        reference implementation, so doubles match the C code bit-for-bit.
        """
        a = self.next_uint32() >> 5  # 27 bits
        b = self.next_uint32() >> 6  # 26 bits
        return (a * 67108864.0 + b) * _INV_2_53

    def randrange(self, n: int) -> int:
        """Return a uniform integer in ``[0, n)`` without modulo bias.

        Uses rejection sampling on the raw 32/64-bit stream, mirroring what
        high-quality library generators do.
        """
        if n <= 0:
            raise ValueError("randrange() upper bound must be positive")
        if n == 1:
            return 0
        bits = (n - 1).bit_length()
        if bits <= 32:
            while True:
                value = self.next_uint32() >> (32 - bits)
                if value < n:
                    return value
        if bits > 64:
            raise ValueError("randrange() bound exceeds 64 bits")
        while True:
            value = ((self.next_uint32() << 32) | self.next_uint32()) >> (64 - bits)
            if value < n:
                return value

    def jump_discard(self, count: int) -> None:
        """Advance the stream by discarding ``count`` raw outputs."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            self.next_uint32()
