"""High-level randomness facade used throughout the library.

A :class:`RandomSource` owns one :class:`~repro.rng.mt19937.MT19937`
generator and exposes the handful of variates the paper's algorithms need.
Two design points matter:

* **Snapshot/restore** (:meth:`RandomSource.snapshot`,
  :meth:`RandomSource.restore`) is first-class, because Nomem Refresh
  (Sec. 4.3) and the full-log adapter (Sec. 5) work by replaying a variate
  sequence from a stored PRNG state instead of buffering it in memory.
* **Independent named streams** (:meth:`RandomSource.spawn`): the full-log
  adapter interleaves two replayed sequences (Vitter skips locating
  candidates in the full log, and the refresh algorithm's geometric skips).
  Those must come from *separate* generators or restoring one state would
  corrupt the other stream; ``spawn`` derives a decorrelated child generator
  deterministically from the parent.
"""

from __future__ import annotations

from repro.rng.distributions import geometric_variate, reservoir_skip
from repro.rng.mt19937 import MT19937, MTState

__all__ = ["RandomSource"]

# SplitMix64 constants, used to derive well-separated child seeds.
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _splitmix64(x: int) -> int:
    x = (x + _SPLITMIX_GAMMA) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class RandomSource:
    """Seeded source of the variates the paper's algorithms consume.

    >>> rng = RandomSource(seed=42)
    >>> state = rng.snapshot()
    >>> a = [rng.geometric(0.25) for _ in range(4)]
    >>> rng.restore(state)
    >>> a == [rng.geometric(0.25) for _ in range(4)]
    True
    """

    __slots__ = ("_gen", "_seed", "_spawn_count", "_w")

    def __init__(self, seed: int = 0, _generator: MT19937 | None = None) -> None:
        self._seed = seed
        self._gen = _generator if _generator is not None else MT19937(seed=_mix_seed(seed))
        self._spawn_count = 0
        # Vitter Algorithm Z auxiliary variable, carried between skips.
        self._w: float | None = None

    @property
    def seed(self) -> int:
        """The seed this source was created with."""
        return self._seed

    # -- uniform primitives -------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._gen.random()

    def randrange(self, n: int) -> int:
        """Uniform integer in [0, n) without modulo bias."""
        return self._gen.randrange(n)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        return low + self._gen.randrange(high - low + 1)

    def bernoulli(self, p: float) -> bool:
        """Return True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        return self._gen.random() < p

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self._gen.randrange(i + 1)
            items[i], items[j] = items[j], items[i]

    # -- paper-specific variates ---------------------------------------------

    def geometric(self, p: float) -> int:
        """Failures before first success with success probability ``p``."""
        return geometric_variate(self._gen, p)

    def reservoir_skip(self, sample_size: int, seen: int, method: str = "auto") -> int:
        """Elements to skip before the next reservoir candidate.

        ``seen`` is the number of dataset elements processed so far
        (``t >= sample_size``).  The Algorithm-Z auxiliary variable is
        carried inside this source, so callers just ask for skips.
        """
        skip, self._w = reservoir_skip(self._gen, sample_size, seen, self._w, method)
        return skip

    # -- state management ----------------------------------------------------

    def snapshot(self) -> tuple[MTState, float | None]:
        """Capture the complete replayable state of this source."""
        return self._gen.getstate(), self._w

    def restore(self, state: tuple[MTState, float | None]) -> None:
        """Restore a snapshot captured by :meth:`snapshot`."""
        mt_state, w = state
        self._gen.setstate(mt_state)
        self._w = w

    def spawn(self, label: str = "") -> "RandomSource":
        """Derive a deterministic, decorrelated child source.

        The child's seed mixes the parent seed, a per-parent spawn counter
        and the label, so repeated runs get identical substreams while
        distinct substreams stay independent.
        """
        self._spawn_count += 1
        material = self._seed & _MASK64
        material = _splitmix64(material ^ self._spawn_count)
        for ch in label:
            material = _splitmix64(material ^ ord(ch))
        child = RandomSource.__new__(RandomSource)
        child._seed = material
        child._gen = MT19937(seed=material & 0xFFFFFFFF)
        child._spawn_count = 0
        child._w = None
        return child

    def __repr__(self) -> str:
        return f"RandomSource(seed={self._seed})"


def _mix_seed(seed: int) -> int:
    """Spread small user seeds across the 32-bit seed space."""
    return _splitmix64(seed & _MASK64) & 0xFFFFFFFF
