"""Pseudo-random number substrate.

The Nomem Refresh algorithm (Sec. 4.3 of the paper) depends on a PRNG whose
state can be captured and restored so that the exact same variate sequence
can be generated twice without buffering it.  This subpackage provides:

* :class:`~repro.rng.mt19937.MT19937` -- the Mersenne Twister generator
  ([14] in the paper) implemented from scratch with O(1)-cost state
  snapshot/restore.
* :class:`~repro.rng.random_source.RandomSource` -- the high-level facade
  used throughout the library (uniform variates, integers, geometric
  variates, reservoir skips).
* :mod:`~repro.rng.distributions` -- the variate generators themselves.
* :mod:`~repro.rng.sequential` -- Vitter's 1984 sequential sampling
  (Methods A and D), used by the refresh write phase ([3] in the paper).
"""

from repro.rng.mt19937 import MT19937
from repro.rng.numpy_source import numpy_generator
from repro.rng.random_source import RandomSource
from repro.rng.distributions import (
    geometric_variate,
    reservoir_skip,
    reservoir_skip_z,
)
from repro.rng.sequential import SequentialSampler, sequential_sample

__all__ = [
    "MT19937",
    "RandomSource",
    "numpy_generator",
    "geometric_variate",
    "reservoir_skip",
    "reservoir_skip_z",
    "SequentialSampler",
    "sequential_sample",
]
