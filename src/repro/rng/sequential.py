"""Vitter's sequential sampling (CACM 1984), Methods S, A and D.

The refresh write phase (Sec. 4.2/4.3) must pick which ``k`` of the ``M``
sample positions get displaced while scanning the sample once, front to
back.  The paper does this with the per-position displacement probability
``q_{j,k} = k / (M - j + 1)`` -- which is exactly *selection sampling*
(Method S) -- and notes (footnote 4) that it "can be done efficiently using
the sequential sampling scheme introduced in [3]", i.e. by generating skip
lengths directly (Methods A/D) instead of one Bernoulli trial per position.

We provide all three so the write phase can use whichever fits, and so the
equivalence (identical selection distribution) can be tested:

* :func:`selection_skips_s` / :class:`SequentialSampler` -- Method S,
  one uniform per position, O(M);
* :func:`selection_skips_a` -- Method A, one uniform per *selected*
  position, O(M) time but O(k) variates;
* :func:`selection_skips_d` -- Method D, O(k) time and variates.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.rng.distributions import UniformSource

__all__ = [
    "SequentialSampler",
    "selection_skips_s",
    "selection_skips_a",
    "selection_skips_d",
    "sequential_sample",
]

# Vitter's alpha = 1/13: use Method D only while n < N/13, else A is cheaper.
_ALPHA_INVERSE = 13


def selection_skips_s(rng: UniformSource, n: int, total: int) -> Iterator[int]:
    """Method S: yield skips by per-record Bernoulli trials.

    Selects ``n`` of ``total`` records; yields the number of records skipped
    before each selected record.  This is the literal
    ``q = remaining_selected / remaining_records`` loop of Algorithms 2/3
    in the paper.
    """
    _check_args(n, total)
    skipped = 0
    remaining_records = total
    remaining_selected = n
    while remaining_selected > 0:
        if rng.random() * remaining_records < remaining_selected:
            yield skipped
            skipped = 0
            remaining_selected -= 1
        else:
            skipped += 1
        remaining_records -= 1


def selection_skips_a(rng: UniformSource, n: int, total: int) -> Iterator[int]:
    """Method A: yield skips found by sequential search of the skip CDF.

    One uniform variate per selected record; the search itself is O(skip).
    """
    _check_args(n, total)
    remaining = total
    while n >= 2:
        v = rng.random()
        s = 0
        top = remaining - n
        quot = top / remaining
        while quot > v:
            s += 1
            top -= 1
            remaining -= 1
            quot = (quot * top) / remaining
        remaining -= 1  # account for the selected record
        yield s
        n -= 1
    if n == 1:
        # Last record is uniform over what remains.
        yield int(remaining * rng.random())


def selection_skips_d(rng: UniformSource, n: int, total: int) -> Iterator[int]:
    """Method D: yield skips in O(n) total time via rejection sampling.

    Follows Vitter's published Algorithm D, including the switch to
    Method A once ``n`` is a large fraction of the remaining records
    (``n >= remaining / 13``).
    """
    _check_args(n, total)
    remaining = total
    if n == 0:
        return
    threshold = _ALPHA_INVERSE * n
    vprime = _nth_root_uniform(rng, n)
    qu1 = remaining - n + 1
    while n > 1:
        if threshold >= remaining:
            # Dense regime: Method A is faster and exact.
            yield from selection_skips_a(rng, n, remaining)
            return
        while True:
            # Step D2: candidate skip X from the majorising density.
            while True:
                x = remaining * (1.0 - vprime)
                s = int(x)
                if s < qu1:
                    break
                vprime = _nth_root_uniform(rng, n)
            u = rng.random()
            # Step D3: squeeze acceptance.
            y1 = math.exp(math.log(u * remaining / qu1) / (n - 1))
            vprime = y1 * (1.0 - x / remaining) * (qu1 / (qu1 - s))
            if vprime <= 1.0:
                break
            # Step D4: exact acceptance test.
            y2 = 1.0
            top = remaining - 1
            if n - 1 > s:
                bottom = remaining - n
                limit = remaining - s
            else:
                bottom = remaining - s - 1
                limit = qu1
            t = remaining - 1
            while t >= limit:
                y2 = (y2 * top) / bottom
                top -= 1
                bottom -= 1
                t -= 1
            if remaining / (remaining - x) >= y1 * math.exp(math.log(y2) / (n - 1)):
                vprime = _nth_root_uniform(rng, n - 1)
                break
            vprime = _nth_root_uniform(rng, n)
        yield s
        remaining -= s + 1
        qu1 -= s
        threshold -= _ALPHA_INVERSE
        n -= 1
    # n == 1: the final skip is floor(remaining * V), V uniform.
    yield int(remaining * vprime)


def sequential_sample(rng: UniformSource, n: int, total: int, method: str = "d") -> list[int]:
    """Return ``n`` sorted distinct positions drawn uniformly from ``range(total)``.

    Convenience wrapper over the skip generators.
    """
    generators = {
        "s": selection_skips_s,
        "a": selection_skips_a,
        "d": selection_skips_d,
    }
    if method not in generators:
        raise ValueError(f"unknown sequential sampling method: {method!r}")
    positions: list[int] = []
    cursor = 0
    for skip in generators[method](rng, n, total):
        cursor += skip
        positions.append(cursor)
        cursor += 1
    return positions


class SequentialSampler:
    """Incremental Method-S sampler for the refresh write phase.

    Scans positions ``0 .. total-1``; :meth:`take` reports for each position
    in turn whether it is among the ``n`` selected ones, using the paper's
    ``q_{j,k} = k / (M - j + 1)`` displacement probability.

    >>> rng = _FixedSource([0.0, 0.9, 0.0])
    >>> sampler = SequentialSampler(rng, n=2, total=3)
    >>> [sampler.take() for _ in range(3)]
    [True, False, True]
    """

    __slots__ = ("_rng", "_remaining_selected", "_remaining_records")

    def __init__(self, rng: UniformSource, n: int, total: int) -> None:
        _check_args(n, total)
        self._rng = rng
        self._remaining_selected = n
        self._remaining_records = total

    @property
    def remaining(self) -> int:
        """How many records are still to be selected."""
        return self._remaining_selected

    def take(self) -> bool:
        """Advance one position; return True if it is selected."""
        if self._remaining_records <= 0:
            raise RuntimeError("SequentialSampler scanned past the last record")
        if self._remaining_selected == 0:
            self._remaining_records -= 1
            return False
        # Once every remaining record must be selected, skip the RNG draw:
        # q = k/(M-j+1) = 1.  Saves variates and keeps replay streams short.
        if self._remaining_selected == self._remaining_records:
            selected = True
        else:
            selected = (
                self._rng.random() * self._remaining_records < self._remaining_selected
            )
        self._remaining_records -= 1
        if selected:
            self._remaining_selected -= 1
        return selected


class _FixedSource:
    """Deterministic uniform source for doctests."""

    def __init__(self, values: list[float]) -> None:
        self._values = list(values)

    def random(self) -> float:
        return self._values.pop(0)


def _check_args(n: int, total: int) -> None:
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if not 0 <= n <= total:
        raise ValueError(f"cannot select {n} records from {total}")


def _nth_root_uniform(rng: UniformSource, n: int) -> float:
    """Draw ``U^(1/n)`` with ``U ~ (0, 1]``."""
    u = 1.0 - rng.random()
    return math.exp(math.log(u) / n)
