"""Variate generators used by the sampling and refresh algorithms.

Three distributions drive the whole paper:

* the **geometric** skip of Stack/Nomem Refresh (Sec. 4.2): with ``k`` of
  ``M`` sample slots already claimed, the number of candidate indexes skipped
  before the next final candidate is geometric with success probability
  ``p_k = (M - k) / M``;
* **Vitter's reservoir skip** (Sec. 2 / Sec. 5, [4] in the paper): the number
  of stream elements rejected between two consecutive reservoir candidates.
  Algorithm X computes it by exact sequential search, Algorithm Z by
  rejection and is O(1) amortised once the dataset is much larger than the
  sample;
* the plain **uniform slot choice** of reservoir sampling itself.

All generators draw from a caller-supplied generator object exposing
``random() -> float in [0, 1)`` (e.g. :class:`repro.rng.mt19937.MT19937` or
:class:`repro.rng.random_source.RandomSource`), so PRNG state snapshots taken
by the caller replay these variates exactly -- the property Nomem Refresh
and the full-log adapter (Sec. 5) are built on.
"""

from __future__ import annotations

import math
from typing import Protocol

__all__ = [
    "UniformSource",
    "geometric_variate",
    "reservoir_skip",
    "reservoir_skip_x",
    "reservoir_skip_z",
    "ALGORITHM_Z_THRESHOLD",
]


class UniformSource(Protocol):
    """Anything producing uniform floats in ``[0, 1)``."""

    def random(self) -> float:  # pragma: no cover - protocol
        ...


def geometric_variate(rng: UniformSource, p: float) -> int:
    """Number of failures before the first success, ``P(X=x) = (1-p)^x p``.

    This is the skip law of Stack Refresh (Sec. 4.2): with success
    probability ``p_k = (M-k)/M``, ``X_k`` candidates are skipped before the
    next one is selected.

    Uses the inverse-CDF construction ``floor(ln U / ln(1-p))`` with
    ``U ~ (0, 1]``, which consumes exactly one uniform variate -- important
    because Nomem Refresh replays the uniform stream to regenerate the same
    skips.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError(f"geometric success probability must be in (0, 1], got {p}")
    u = 1.0 - rng.random()  # u in (0, 1], avoids log(0)
    # Exact boundary, not rounding-sensitive math: p == 1.0 is the one
    # value (already range-checked above) where log1p(-p) would be -inf.
    if p == 1.0:  # repro-lint: disable=FLT001
        return 0
    return int(math.log(u) / math.log1p(-p))


# Vitter recommends switching from Algorithm X to Algorithm Z once the
# dataset is ~22x the sample size; below that X's sequential search is cheap.
ALGORITHM_Z_THRESHOLD = 22


def reservoir_skip_x(rng: UniformSource, n: int, t: int) -> int:
    """Vitter's Algorithm X: exact reservoir skip by sequential search.

    Given a reservoir of size ``n`` and ``t >= n`` elements processed so
    far, returns ``S`` such that elements ``t+1 .. t+S`` are rejected and
    element ``t+S+1`` is the next candidate.  Runs in O(S) time but consumes
    a single uniform variate.
    """
    if n <= 0:
        raise ValueError("reservoir size must be positive")
    if t < n:
        raise ValueError(f"stream position t={t} must be >= reservoir size n={n}")
    v = rng.random()
    s = 0
    tt = t + 1
    quot = (tt - n) / tt
    while quot > v:
        s += 1
        tt += 1
        quot *= (tt - n) / tt
    return s


def reservoir_skip_z(rng: UniformSource, n: int, t: int, w: float) -> tuple[int, float]:
    """Vitter's Algorithm Z: reservoir skip via rejection sampling.

    Returns ``(skip, w')`` where ``w`` is Vitter's auxiliary variable
    ``W = U^(-1/n)`` carried between calls.  Expected O(1) uniform variates
    per skip once ``t`` is large, which is what makes candidate logging
    cheap for long streams.

    Falls back to :func:`reservoir_skip_x` when ``t <= ALGORITHM_Z_THRESHOLD
    * n``, as Vitter's hybrid algorithm does.
    """
    if n <= 0:
        raise ValueError("reservoir size must be positive")
    if t < n:
        raise ValueError(f"stream position t={t} must be >= reservoir size n={n}")
    if w <= 1.0:
        raise ValueError(f"auxiliary variable w must exceed 1, got {w}")
    if t <= ALGORITHM_Z_THRESHOLD * n:
        skip = reservoir_skip_x(rng, n, t)
        # Refresh w so later calls keep a valid auxiliary variable.
        return skip, _next_w(rng, n)

    term = t - n + 1
    while True:
        # Step Z2: tentative skip from the majorising density g(x).
        u = rng.random()
        x = t * (w - 1.0)
        s = int(x)
        # Step Z3: squeeze test (cheap acceptance).
        lhs = math.exp(math.log(((u * ((t + 1) / term) ** 2) * (term + s)) / (t + x)) / n)
        rhs = (((t + x) / (term + s)) * term) / t
        if lhs <= rhs:
            w = rhs / lhs
            return s, w
        # Step Z4: full acceptance test against the true ratio f(s)/cg(x).
        y = (((u * (t + 1)) / term) * (t + s + 1)) / (t + x)
        if n < s:
            denom = t
            numer_lim = term + s
        else:
            denom = t - n + s
            numer_lim = t + 1
        numer = t + s
        while numer >= numer_lim:
            y = (y * numer) / denom
            denom -= 1
            numer -= 1
        w_next = _next_w(rng, n)
        if math.exp(math.log(y) / n) <= (t + x) / t:
            return s, w_next
        w = w_next


def _next_w(rng: UniformSource, n: int) -> float:
    """Draw Vitter's auxiliary variable ``W = U^(-1/n) > 1``."""
    u = 1.0 - rng.random()  # (0, 1]
    return math.exp(-math.log(u) / n)


def reservoir_skip(
    rng: UniformSource,
    n: int,
    t: int,
    w: float | None = None,
    method: str = "auto",
) -> tuple[int, float]:
    """Dispatching reservoir-skip generator.

    ``method`` is one of ``"x"``, ``"z"`` or ``"auto"`` (Vitter's hybrid:
    X while ``t <= 22n``, Z afterwards).  Always returns ``(skip, w')`` so
    callers can treat the methods interchangeably.
    """
    if method not in ("x", "z", "auto"):
        raise ValueError(f"unknown skip method: {method!r}")
    if method == "x":
        skip = reservoir_skip_x(rng, n, t)
        return skip, w if w is not None else 2.0
    if w is None or w <= 1.0:
        w = _next_w(rng, n)
    return reservoir_skip_z(rng, n, t, w)
