"""Centralised construction of seeded numpy generators.

The vectorised experiment engine (:mod:`repro.experiments.engine`) uses
numpy's ``Generator`` for bulk uniform draws.  That is fine -- the engine
realises candidate streams in closed form and never replays PRNG state --
but generator *construction* still belongs in :mod:`repro.rng`: keeping
every seeding site in one audited module is what lets the RNG001 lint
rule guarantee that no other module can touch ``numpy.random``'s global
state (which would silently break Nomem Refresh's snapshot/replay
discipline, paper Sec. 4.3).
"""

from __future__ import annotations

import numpy as np

__all__ = ["numpy_generator"]


def numpy_generator(seed: int = 0) -> np.random.Generator:
    """A freshly seeded, self-contained ``numpy.random.Generator``.

    Never seeds or reads numpy's legacy global state; each call returns an
    independent PCG64 generator, so replay-based algorithms elsewhere in
    the library are unaffected.
    """
    return np.random.default_rng(seed)
