"""Durability and fleet scale: two production concerns the paper touches.

1. **Crash safety** (Sec. 6.5 criticises the GF's volatile buffer): this
   library's maintenance state fits a single superblock -- including the
   full PRNG state -- so a recovered maintainer replays post-checkpoint
   insertions *bit-identically* to a run that never crashed. We simulate
   a crash mid-window and verify the recovered sample matches the control.

2. **Many samples** (Sec. 1: "the overall memory consumption increases
   with the number of samples maintained in-memory"): a fleet of samples
   refreshed with Nomem needs a constant ~2.5 kB per sample regardless of
   sample size, where Array Refresh needs 4 bytes per slot.

Run:  python examples/durability_and_fleets.py
"""

from repro import (
    CostModel,
    IntRecordCodec,
    LogFile,
    NomemRefresh,
    ArrayRefresh,
    RandomSource,
    SampleFile,
    SampleMaintainer,
    SimulatedBlockDevice,
    build_reservoir,
)
from repro.core.multi import MultiSampleManager
from repro.storage.superblock import CheckpointStore

M, R0, CRASH_AT, TOTAL, SEED = 500, 1_500, 4_000, 9_000, 77
FLEET_M = 5_000  # per-sample slots in the fleet demo: big enough that
                 # Array's 4-byte-per-slot bill dwarfs a 2.5 kB PRNG state


def build(cost, seed=SEED):
    rng = RandomSource(seed=seed)
    codec = IntRecordCodec()
    sample = SampleFile(SimulatedBlockDevice(cost, "sample"), codec, M)
    initial, seen = build_reservoir(range(R0), M, rng)
    sample.initialize(initial)
    log_device = SimulatedBlockDevice(cost, "log")
    maintainer = SampleMaintainer(
        sample, rng, strategy="candidate", initial_dataset_size=seen,
        log=LogFile(log_device, codec), algorithm=NomemRefresh(),
        cost_model=cost,
    )
    return maintainer, sample, log_device


def crash_recovery_demo() -> None:
    print("== crash recovery ==")
    # Control: never crashes.
    control, control_sample, _ = build(CostModel())
    control.insert_many(range(R0, R0 + TOTAL))
    control.refresh()

    # Crashing run: checkpoint mid-window, then the process "dies".
    cost = CostModel()
    crashing, sample, log_device = build(cost)
    crashing.insert_many(range(R0, R0 + CRASH_AT))
    store = CheckpointStore(SimulatedBlockDevice(cost, "superblock"))
    store.save(crashing.checkpoint_state())
    print(f"checkpoint at insert {CRASH_AT}: "
          f"log holds {crashing.pending_log_elements} candidates, "
          f"superblock = 1 block")
    del crashing  # crash: only device contents survive

    # Recovery: reattach to the surviving devices, replay the tail.
    recovered = SampleMaintainer.from_checkpoint(
        store.load(), sample,
        log=LogFile(log_device, IntRecordCodec()),
        algorithm=NomemRefresh(), cost_model=cost,
    )
    recovered.insert_many(range(R0 + CRASH_AT, R0 + TOTAL))
    recovered.refresh()

    identical = sample.peek_all() == control_sample.peek_all()
    print(f"recovered sample identical to uninterrupted run: {identical}")
    assert identical


def fleet_demo() -> None:
    print()
    print("== fleet refresh memory ==")
    for name, factory in (("array", ArrayRefresh), ("nomem", NomemRefresh)):
        manager = MultiSampleManager()
        root = RandomSource(seed=SEED)
        for idx in range(10):
            rng = root.spawn(f"s{idx}")
            codec = IntRecordCodec()
            sample = SampleFile(
                SimulatedBlockDevice(manager.cost_model, f"sample-{idx}"),
                codec, FLEET_M,
            )
            initial, seen = build_reservoir(range(FLEET_M * 2), FLEET_M, rng)
            sample.initialize(initial)
            manager.add(f"s{idx}", SampleMaintainer(
                sample, rng, strategy="candidate", initial_dataset_size=seen,
                log=LogFile(
                    SimulatedBlockDevice(manager.cost_model, f"log-{idx}"), codec
                ),
                algorithm=factory(), cost_model=manager.cost_model,
            ))
        manager.insert_many(range(FLEET_M * 2, FLEET_M * 2 + 10_000))
        report = manager.refresh_all()
        print(f"  10 samples x {FLEET_M} slots, {name:>5} refresh: "
              f"{report.peak_refresh_memory_bytes:>7} bytes aggregate "
              f"({report.total_displaced} elements displaced)")


if __name__ == "__main__":
    crash_recovery_demo()
    fleet_demo()
