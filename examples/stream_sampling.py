"""Data-stream sampling: high arrival rates, out-of-band refresh.

The paper's streaming motivation (Sec. 1-2, 6): a stream operator must
process arrivals cheaply -- the online cost is what bounds sustainable
throughput -- while the sample refresh can run elsewhere ("the refresh may
be conducted by an independent system which has access to the log file").

This example pushes a bursty stream through a StreamSampleOperator,
defers refreshes to the quiet periods between bursts, and then answers
whole-stream questions from the sample.  It also contrasts the online
I/O bill with what immediate maintenance would have paid.

Run:  python examples/stream_sampling.py
"""

from repro import (
    CostModel,
    IntRecordCodec,
    LogFile,
    RandomSource,
    SampleFile,
    SampleMaintainer,
    NomemRefresh,
    SimulatedBlockDevice,
    build_reservoir,
)
from repro.analysis.estimators import estimate_fraction, estimate_mean
from repro.baselines.immediate import ImmediateMaintainer
from repro.stream.operator import StreamSampleOperator
from repro.stream.source import bursty_stream


SAMPLE_SIZE = 1_000
WARMUP = 5_000
STREAM_LENGTH = 50_000


def build_operator(cost: CostModel, rng: RandomSource) -> StreamSampleOperator:
    codec = IntRecordCodec()
    sample = SampleFile(SimulatedBlockDevice(cost, "sample"), codec, SAMPLE_SIZE)
    initial, seen = build_reservoir(range(WARMUP), SAMPLE_SIZE, rng)
    sample.initialize(initial)
    maintainer = SampleMaintainer(
        sample,
        rng,
        strategy="candidate",
        initial_dataset_size=seen,
        log=LogFile(SimulatedBlockDevice(cost, "log"), codec),
        algorithm=NomemRefresh(),  # zero refresh memory: stream-friendly
        cost_model=cost,
    )
    return StreamSampleOperator(maintainer, refresh_interval=10_000)


def main() -> None:
    rng = RandomSource(seed=7)
    cost = CostModel()
    operator = build_operator(cost, rng)

    # Bursts of back-to-back arrivals separated by quiet periods; the
    # operator only does log-phase work inside a burst and refreshes when
    # the stream goes quiet.
    deferred_refreshes = 0
    last_timestamp = None
    for timestamp, value in bursty_stream(
        rng, STREAM_LENGTH, burst_length=2_000, quiet_length=5_000,
        value_start=WARMUP,
    ):
        quiet_gap = last_timestamp is not None and timestamp - last_timestamp > 1
        if quiet_gap and operator.refresh_due():
            operator.refresh()
            deferred_refreshes += 1
        operator.process(value)
        last_timestamp = timestamp
    operator.refresh()

    maintainer = operator.maintainer
    print(f"stream tuples          : {operator.tuples_processed}")
    print(f"candidates logged      : {maintainer.stats.candidates_logged}")
    print(f"refreshes (quiet time) : {operator.refreshes}")

    online_ms = maintainer.stats.online.cost_seconds() * 1000
    per_tuple_us = online_ms * 1000 / operator.tuples_processed
    print(f"online I/O             : {online_ms:.1f} ms total, "
          f"{per_tuple_us:.3f} us/tuple")

    # What immediate maintenance would have paid for the same stream:
    imm_cost = CostModel()
    imm_rng = RandomSource(seed=7)
    codec = IntRecordCodec()
    imm_sample = SampleFile(SimulatedBlockDevice(imm_cost, "s"), codec, SAMPLE_SIZE)
    initial, seen = build_reservoir(range(WARMUP), SAMPLE_SIZE, imm_rng)
    imm_sample.initialize(initial)
    mark = imm_cost.checkpoint()
    immediate = ImmediateMaintainer(imm_sample, imm_rng, seen)
    immediate.insert_many(range(WARMUP, WARMUP + STREAM_LENGTH))
    imm_ms = imm_cost.since(mark).cost_seconds() * 1000
    print(f"immediate would cost   : {imm_ms:.1f} ms "
          f"({imm_ms / max(online_ms, 1e-9):.0f}x the online bill)")

    # Whole-stream questions answered from the bounded-size sample:
    contents = maintainer.sample.peek_all()
    total = WARMUP + STREAM_LENGTH
    print(f"est. stream mean       : {estimate_mean(contents):,.0f} "
          f"(true {sum(range(total)) / total:,.0f})")
    late = estimate_fraction(contents, lambda v: v >= total * 0.9)
    print(f"est. fraction in last 10% of arrivals: {late:.3f} (true 0.100)")


if __name__ == "__main__":
    main()
