"""Group-by estimation with stratified, deferredly maintained samples.

Sec. 2 of the paper notes that group-by sampling schemes (congressional
samples and friends) build on reservoir sampling and "can be natively
extended to support fast deferred refresh using the techniques presented
in this paper".  This example shows why you want per-group samples in the
first place -- and that each group's sample rides the same candidate-log
machinery.

Workload: a heavily skewed stream (Zipf keys), so one group receives
thousands of elements while the rarest gets a handful.  A single uniform
sample of the whole stream would all but miss the rare groups; per-group
samples answer GROUP BY queries with bounded error for every group.

Run:  python examples/groupby_sampling.py
"""

from collections import Counter

from repro import IntRecordCodec, PeriodicPolicy, RandomSource
from repro.core.stratified import StratifiedSampleManager
from repro.core.reservoir import build_reservoir
from repro.stream.source import zipf_stream

GROUPS = 8
STREAM = 40_000
PER_GROUP = 100


def main() -> None:
    rng = RandomSource(seed=11)
    # Each stream element is (group, value); encode as group*10^6 + value.
    keys = list(zipf_stream(rng, universe=GROUPS, count=STREAM))
    values = [(k * 1_000_000) + (i % 1000) for i, k in enumerate(keys)]
    truth = Counter(keys)

    manager = StratifiedSampleManager(
        group_of=lambda v: v // 1_000_000,
        per_group_size=PER_GROUP,
        codec=IntRecordCodec(),
        rng=RandomSource(seed=12),
        policy_factory=lambda: PeriodicPolicy(1_000),
    )
    manager.insert_many(values)
    manager.refresh_all()

    # Compare against one single uniform sample of the same total budget.
    total_budget = PER_GROUP * len(manager)
    single, _ = build_reservoir(values, total_budget, RandomSource(seed=13))
    single_counts = Counter(v // 1_000_000 for v in single)

    print(f"stream: {STREAM} elements over {GROUPS} Zipf-skewed groups")
    print(f"per-group samples: {len(manager)} x {PER_GROUP} elements "
          f"(same budget as one {total_budget}-element uniform sample)")
    print()
    header = (f"{'group':>5} | {'true size':>9} | {'stratified est.':>15} "
              f"| {'single-sample est.':>18}")
    print(header)
    print("-" * len(header))
    group_sums = manager.estimate_group_sums(lambda v: 1.0)
    for group in sorted(truth):
        single_est = single_counts.get(group, 0) * STREAM / total_budget
        print(f"{group:>5} | {truth[group]:>9} | {group_sums[group]:>15.0f} "
              f"| {single_est:>18.0f}")
    print()
    rare = min(truth, key=truth.get)
    kept = manager.group(rare).sample_size
    print(f"rarest group ({rare}: {truth[rare]} elements) keeps {kept} "
          f"sampled elements in its own stratum; the single uniform sample "
          f"holds {single_counts.get(rare, 0)}.")


if __name__ == "__main__":
    main()
