"""Approximate warehouse queries over a deferredly-maintained join synopsis.

The end-to-end story the paper's introduction sketches: a warehouse fact
table too large to scan per query, a bounded disk-resident synopsis kept
current by deferred maintenance, and ad-hoc queries answered from the
synopsis with confidence intervals.

Schema: ``sales(id, product_id)`` joined to ``products(product_id,
unit_price)``.  The join synopsis (Acharya et al., cited as [10] in the
paper) keeps a uniform sample of the join; a price correction on the
dimension side flows through the Sec. 5 update-log pattern.

Run:  python examples/approximate_queries.py
"""

from repro import CostModel, PeriodicPolicy, RandomSource, StackRefresh
from repro.analysis.query import SampleQuery
from repro.dbms import JoinSynopsis, Table

PRODUCTS = 50
INITIAL_SALES = 20_000
NEW_SALES = 30_000
SYNOPSIS_SIZE = 2_000


def price_of(product_id: int) -> int:
    return 500 + (product_id * 137) % 4500  # cents


def main() -> None:
    rng = RandomSource(seed=21)
    products = Table("products")
    for p in range(PRODUCTS):
        products.insert(p, price_of(p))
    sales = Table("sales")
    for s in range(INITIAL_SALES):
        sales.insert(s, s % PRODUCTS)

    synopsis = JoinSynopsis(
        sales, products, sample_size=SYNOPSIS_SIZE, rng=rng,
        algorithm=StackRefresh(), cost_model=CostModel(),
        policy=PeriodicPolicy(5_000),
    )
    print(f"synopsis: {SYNOPSIS_SIZE} of {INITIAL_SALES} sales rows, joined")

    # The warehouse keeps loading; a price correction lands mid-stream.
    for s in range(INITIAL_SALES, INITIAL_SALES + NEW_SALES):
        sales.insert(s, (s * 13) % PRODUCTS)
    products.update(7, 99)  # big markdown on product 7
    synopsis.refresh()

    rows = synopsis.rows()
    q = SampleQuery(rows, dataset_size=synopsis.fact_table_size)

    # Q1: total revenue.
    revenue = q.sum(lambda r: r.dim_value)
    true_revenue = sum(
        (99 if row.value == 7 else price_of(row.value)) for row in sales.rows()
    )
    print(f"Q1 total revenue : {revenue}  (true {true_revenue:,})")

    # Q2: how many sales of premium products (price > 40.00)?
    premium = q.where(lambda r: r.dim_value > 4000).count()
    true_premium = sum(
        1 for row in sales.rows()
        if (99 if row.value == 7 else price_of(row.value)) > 4000
    )
    print(f"Q2 premium sales : {premium}  (true {true_premium:,})")

    # Q3: average price of product 7's sales -- reflects the markdown.
    marked_down = q.where(lambda r: r.fact_value == 7)
    print(f"Q3 product-7 rows in synopsis: {marked_down.matching_rows}; "
          f"avg price {marked_down.avg(lambda r: r.dim_value).value:.0f} "
          f"(exact 99 after the markdown)")

    for label, estimate, truth in (
        ("Q1", revenue, true_revenue),
        ("Q2", premium, true_premium),
    ):
        inside = estimate.low <= truth <= estimate.high
        print(f"  {label}: truth inside the 95% interval: {inside}, "
              f"relative half-width {estimate.relative_half_width:.1%}")


if __name__ == "__main__":
    main()
