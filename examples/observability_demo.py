"""Observability demo: trace an Array Refresh cycle, prove zero overhead.

Runs the same candidate-logging maintenance cycle twice -- once bare,
once under the :mod:`repro.obs` instrumentation layer -- and shows:

1. per-phase trace spans for the refresh (log flush, in-memory merge,
   log-scan + sample-rewrite) with durations in **cost-model seconds**
   (counted block accesses weighted with the paper's Sec. 6.1 access
   times -- never wall clocks) and per-span block counts;
2. the per-device access histogram: block accesses keyed by
   sequential/random x read/write for each named device;
3. the zero-overhead property: the AccessStats the cost model records
   are bit-identical with and without telemetry attached, because
   instruments are pure in-memory accumulators that never touch a
   block device.

Run:  python examples/observability_demo.py
"""

from repro import (
    ArrayRefresh,
    CostModel,
    Instrumentation,
    IntRecordCodec,
    LogFile,
    RandomSource,
    SampleFile,
    SampleMaintainer,
    SimulatedBlockDevice,
    build_reservoir,
)
from repro.obs.exporters import prometheus_text

SAMPLE_SIZE = 1_000
INITIAL_DATASET = 5_000
INSERTS = 20_000
SEED = 2006


def run_cycle(instrumented: bool):
    """One insert window + one Array Refresh.

    Returns ``(cost_model, instrumentation_or_None)``.  The facade is
    built against the run's own cost model so span durations price the
    exact block accesses this run charges.
    """
    cost = CostModel()
    instrumentation = Instrumentation(cost_model=cost) if instrumented else None
    rng = RandomSource(seed=SEED)
    codec = IntRecordCodec()
    sample = SampleFile(
        SimulatedBlockDevice(cost, "sample-disk", instrumentation),
        codec,
        SAMPLE_SIZE,
    )
    initial, dataset_size = build_reservoir(range(INITIAL_DATASET), SAMPLE_SIZE, rng)
    sample.initialize(initial)
    maintainer = SampleMaintainer(
        sample,
        rng,
        strategy="candidate",
        initial_dataset_size=dataset_size,
        log=LogFile(SimulatedBlockDevice(cost, "log-disk", instrumentation), codec),
        algorithm=ArrayRefresh(),
        cost_model=cost,
        instrumentation=instrumentation,
    )
    maintainer.insert_many(range(INITIAL_DATASET, INITIAL_DATASET + INSERTS))
    maintainer.refresh()
    return cost, instrumentation


def main() -> None:
    bare, _ = run_cycle(instrumented=False)
    traced, facade = run_cycle(instrumented=True)

    # -- 1. per-phase refresh spans ----------------------------------------
    print("refresh trace spans (durations in cost-model seconds):")
    for span in facade.tracer.finished:
        indent = "  " if span.parent is None else "    "
        io = span.io
        print(
            f"{indent}{span.name:<20} {span.duration_seconds * 1000:>9.3f} ms   "
            f"seq r/w {io.seq_reads}/{io.seq_writes}  "
            f"random r/w {io.random_reads}/{io.random_writes}"
        )
    precompute = next(
        s for s in facade.tracer.finished if s.name == "refresh.precompute"
    )
    assert precompute.blocks == 0, "the in-memory merge must do zero block I/O"
    print("  (refresh.precompute touched 0 blocks: the merge is in-memory)")

    # -- 2. per-device sequential/random access histogram ------------------
    print("\nper-device block accesses:")
    print(f"  {'device':<12} {'kind':<6} {'pattern':<8} {'blocks':>7}")
    for counter in facade.registry:
        if counter.name != "device.accesses":
            continue
        labels = dict(counter.labels)
        print(
            f"  {labels['device']:<12} {labels['kind']:<6} "
            f"{labels['pattern']:<8} {counter.value:>7}"
        )

    # -- 3. zero-overhead proof --------------------------------------------
    print("\nzero-overhead check:")
    print(f"  bare run        : {bare.stats}")
    print(f"  instrumented run: {traced.stats}")
    assert bare.stats == traced.stats, "telemetry must never charge I/O"
    print("  identical -- instrumentation adds no block accesses")

    # -- bonus: the same registry, Prometheus-style ------------------------
    print("\nprometheus exposition (excerpt):")
    for line in prometheus_text(facade.registry).splitlines()[:6]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
