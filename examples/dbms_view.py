"""DBMS scenario: the sample as a deferred materialized view (Sec. 5).

A base table receives a mixed insert/update/delete workload.  The sample
view never touches the table after creation -- it sees only the change
stream, exactly as the paper requires ("access to the base data is
disallowed at any time").  Deletions force full logging; updates are
queued in a separate update log and applied after each refresh.

The DBMS's own staging table (the paper's nod to DB2 staging tables and
Oracle materialized-view logs) records the same changes, showing that the
full log the refresh needs is something the database already maintains.

Run:  python examples/dbms_view.py
"""

from repro import CostModel, LogFile, RandomSource, SimulatedBlockDevice, StackRefresh
from repro.analysis.estimators import estimate_sum
from repro.core.policies import PeriodicPolicy
from repro.dbms import SampleView, StagingTable, Table
from repro.dbms.staging import ChangeRecordCodec


def main() -> None:
    rng = RandomSource(seed=5)
    cost = CostModel()

    # -- base table with 5 000 orders (key -> order value in cents) --------
    table = Table("orders")
    for key in range(5_000):
        table.insert(key, 100 + (key * 37) % 900)

    staging = StagingTable(
        table, LogFile(SimulatedBlockDevice(cost, "staging"), ChangeRecordCodec())
    )
    view = SampleView(
        table,
        sample_size=500,
        rng=rng,
        algorithm=StackRefresh(),
        cost_model=cost,
        allow_deletes=True,             # deletions force full logging (Sec. 5)
        policy=PeriodicPolicy(2_000),   # deferred refresh every 2 000 changes
    )
    print(f"view created: {view.sample_size} of {len(table)} rows sampled")

    # -- mixed workload ------------------------------------------------------
    next_key = 5_000
    for day in range(5):
        for _ in range(1_500):                       # new orders
            table.insert(next_key, 100 + (next_key * 37) % 900)
            next_key += 1
        for key in range(day * 300, day * 300 + 300):  # old orders purged
            table.delete(key)
        for key in range(day * 100 + 2000, day * 100 + 2100):  # corrections
            table.update(key, 50)
    view.refresh()

    inserts, updates, deletes = staging.pending()
    print(f"staging table pending since last drain: "
          f"{inserts} inserts, {updates} updates, {deletes} deletes")
    print(f"view refreshes         : {view.refreshes}")
    print(f"view sample size now   : {view.sample_size} "
          f"(shrunk by deletions, per Sec. 5)")
    print(f"dataset size tracked   : {view.dataset_size} "
          f"(table actually holds {len(table)})")

    # -- consistency spot-checks --------------------------------------------
    live = {row.key: row.value for row in table.rows()}
    mismatches = sum(
        1 for row in view.rows()
        if row.key not in live or live[row.key] != row.value
    )
    print(f"rows in view that disagree with the table: {mismatches}")

    # -- estimate total order value from the sample --------------------------
    sampled_values = [row.value for row in view.rows()]
    estimate = estimate_sum(sampled_values, population_size=len(table))
    truth = sum(live.values())
    print(f"estimated total value  : {estimate:,.0f} cents "
          f"(true {truth:,} , error {abs(estimate - truth) / truth:.1%})")


if __name__ == "__main__":
    main()
