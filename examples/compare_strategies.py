"""Head-to-head: every maintenance strategy on the same workload.

Runs immediate maintenance, full logging, candidate logging (with each
refresh algorithm) and the Geometric File over an identical insert stream,
then prints the I/O bill per strategy -- a miniature of the paper's whole
evaluation in one table.

Run:  python examples/compare_strategies.py
"""

from repro import (
    ArrayRefresh,
    CostModel,
    IntRecordCodec,
    LogFile,
    NaiveCandidateRefresh,
    NomemRefresh,
    PeriodicPolicy,
    RandomSource,
    SampleFile,
    SampleMaintainer,
    SimulatedBlockDevice,
    StackRefresh,
    build_reservoir,
)
from repro.baselines import GeometricFile, ImmediateMaintainer

SAMPLE_SIZE = 2_000
INITIAL = 5_000
INSERTS = 40_000
PERIOD = 4_000
SEED = 99


def run_maintainer(strategy, algorithm):
    rng = RandomSource(seed=SEED)
    cost = CostModel()
    codec = IntRecordCodec()
    sample = SampleFile(SimulatedBlockDevice(cost, "sample"), codec, SAMPLE_SIZE)
    initial, seen = build_reservoir(range(INITIAL), SAMPLE_SIZE, rng)
    sample.initialize(initial)
    mark = cost.checkpoint()
    maintainer = SampleMaintainer(
        sample, rng, strategy=strategy, initial_dataset_size=seen,
        log=LogFile(SimulatedBlockDevice(cost, "log"), codec),
        algorithm=algorithm, policy=PeriodicPolicy(PERIOD), cost_model=cost,
    )
    maintainer.insert_many(range(INITIAL, INITIAL + INSERTS))
    maintainer.refresh()
    stats = maintainer.stats
    return (
        stats.online.cost_seconds(),
        stats.offline.cost_seconds(),
        cost.since(mark),
    )


def run_immediate():
    rng = RandomSource(seed=SEED)
    cost = CostModel()
    codec = IntRecordCodec()
    sample = SampleFile(SimulatedBlockDevice(cost, "sample"), codec, SAMPLE_SIZE)
    initial, seen = build_reservoir(range(INITIAL), SAMPLE_SIZE, rng)
    sample.initialize(initial)
    mark = cost.checkpoint()
    maintainer = ImmediateMaintainer(sample, rng, seen)
    maintainer.insert_many(range(INITIAL, INITIAL + INSERTS))
    return cost.since(mark).cost_seconds(), 0.0, cost.since(mark)


def run_geometric_file():
    rng = RandomSource(seed=SEED)
    cost = CostModel()
    initial, seen = build_reservoir(range(INITIAL), SAMPLE_SIZE, rng)
    mark = cost.checkpoint()
    gf = GeometricFile(
        sample_size=SAMPLE_SIZE, buffer_capacity=SAMPLE_SIZE // 25,  # 4%
        rng=rng, cost_model=cost, initial_sample=initial,
        initial_dataset_size=seen,
    )
    gf.insert_many(range(INITIAL, INITIAL + INSERTS))
    gf.flush()
    return 0.0, cost.since(mark).cost_seconds(), cost.since(mark)


def main() -> None:
    contenders = [
        ("immediate", run_immediate),
        ("full log + stack refresh",
         lambda: run_maintainer("full", StackRefresh())),
        ("candidate log + naive refresh",
         lambda: run_maintainer("candidate", NaiveCandidateRefresh())),
        ("candidate log + array refresh",
         lambda: run_maintainer("candidate", ArrayRefresh())),
        ("candidate log + stack refresh",
         lambda: run_maintainer("candidate", StackRefresh())),
        ("candidate log + nomem refresh",
         lambda: run_maintainer("candidate", NomemRefresh())),
        ("geometric file (4% buffer)", run_geometric_file),
    ]
    print(f"workload: {INSERTS} inserts into |R|={INITIAL}, "
          f"M={SAMPLE_SIZE}, refresh every {PERIOD}")
    print()
    header = f"{'strategy':<34} {'online s':>9} {'offline s':>10} {'total s':>9}   accesses"
    print(header)
    print("-" * len(header))
    for name, runner in contenders:
        online, offline, stats = runner()
        print(f"{name:<34} {online:>9.3f} {offline:>10.3f} "
              f"{online + offline:>9.3f}   {stats}")
    print()
    print("(seconds under the paper's disk model: seq 0.094 ms/block, "
          "random read 8.45 ms, random write 5.50 ms)")


if __name__ == "__main__":
    main()
