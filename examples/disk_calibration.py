"""Re-measure the paper's Sec. 6.1 access-time table on this machine.

The paper calibrated its cost model once on a 7 200 RPM IDE disk
(sequential 0.094 ms/block, random read 8.45 ms, random write 5.50 ms)
and weighted all experiments with those constants.  This script runs the
same calibration against a scratch file here and shows how to plug the
measured numbers into the cost model so every figure can be regenerated
under *your* disk's characteristics.

Run:  python examples/disk_calibration.py [scratch-dir]
"""

import os
import sys
import tempfile

from repro.experiments.engine import simulate_strategy
from repro.storage.cost_model import PAPER_DISK
from repro.storage.real_disk import calibrate_disk


def main() -> None:
    scratch = sys.argv[1] if len(sys.argv) > 1 else tempfile.gettempdir()
    path = os.path.join(scratch, "repro-calibration.bin")
    print(f"calibrating against {path} (64 MiB scratch file)...")
    result = calibrate_disk(path, file_blocks=16_384, probes=2_048)
    os.unlink(path)

    print()
    print("per-block access times (ms):      paper (2006 IDE)   this machine")
    rows = [
        ("sequential read", PAPER_DISK.seq_read_ms, result.seq_read_ms),
        ("sequential write", PAPER_DISK.seq_write_ms, result.seq_write_ms),
        ("random read", PAPER_DISK.random_read_ms, result.random_read_ms),
        ("random write", PAPER_DISK.random_write_ms, result.random_write_ms),
    ]
    for name, paper, measured in rows:
        print(f"  {name:<22} {paper:>12.3f} {measured:>16.4f}")

    # Re-run one experiment point under both disk models.
    local_disk = result.as_disk_parameters()
    print()
    print("candidate-log maintenance, M=100k, 1M inserts, refresh every 100k:")
    for label, disk in (("paper disk", PAPER_DISK), ("this machine", local_disk)):
        cost = simulate_strategy(
            "candidate", 100_000, 100_000, 1_000_000, 100_000, seed=1, disk=disk
        )
        print(f"  {label:<14} online {cost.online_seconds(disk):8.3f} s   "
              f"offline {cost.offline_seconds(disk):8.3f} s")
    print()
    print("note: a buffered-I/O calibration on a warm page cache understates "
          "random-access cost; the paper's cold-disk constants remain the "
          "defaults for the published figures.")


if __name__ == "__main__":
    main()
