"""Quickstart: maintain a disk-based random sample with deferred refresh.

Walks the library's happy path end to end:

1. build the initial reservoir sample of a dataset and put it on (simulated)
   disk;
2. attach a SampleMaintainer with candidate logging (Sec. 3.2 of the paper)
   and Stack Refresh (Sec. 4.2), refreshing every 5 000 insertions;
3. stream in new data;
4. query the sample with a couple of estimators and inspect the I/O bill.

Run:  python examples/quickstart.py
"""

from repro import (
    CostModel,
    IntRecordCodec,
    LogFile,
    PeriodicPolicy,
    RandomSource,
    SampleFile,
    SampleMaintainer,
    SimulatedBlockDevice,
    StackRefresh,
    build_reservoir,
)
from repro.analysis.estimators import estimate_mean, estimate_quantile


def main() -> None:
    rng = RandomSource(seed=2006)
    cost = CostModel()  # the paper's disk: 4 KiB blocks, 32 B elements
    codec = IntRecordCodec()

    # -- 1. initial sample -------------------------------------------------
    sample_size = 2_000
    initial_dataset = range(10_000)
    sample = SampleFile(SimulatedBlockDevice(cost, "sample"), codec, sample_size)
    initial, dataset_size = build_reservoir(initial_dataset, sample_size, rng)
    sample.initialize(initial)
    print(f"initial sample: {sample_size} of {dataset_size} elements on disk")

    # -- 2. deferred maintenance -------------------------------------------
    maintainer = SampleMaintainer(
        sample,
        rng,
        strategy="candidate",             # log only accepted elements
        initial_dataset_size=dataset_size,
        log=LogFile(SimulatedBlockDevice(cost, "log"), codec),
        algorithm=StackRefresh(),          # sequential-I/O-only refresh
        policy=PeriodicPolicy(5_000),      # refresh every 5k insertions
        cost_model=cost,
    )

    # -- 3. insertions arrive ----------------------------------------------
    maintainer.insert_many(range(10_000, 60_000))
    maintainer.refresh()  # final refresh so the sample is current

    stats = maintainer.stats
    print(f"inserted {stats.inserts} elements, "
          f"logged {stats.candidates_logged} candidates "
          f"({stats.candidates_logged / stats.inserts:.1%}), "
          f"{stats.refreshes} refreshes")

    # -- 4. query the sample -----------------------------------------------
    contents = sample.peek_all()
    print(f"estimated mean    : {estimate_mean(contents):.0f} "
          f"(true {sum(range(60_000)) / 60_000:.0f})")
    print(f"estimated median  : {estimate_quantile(contents, 0.5):.0f} "
          f"(true {60_000 / 2:.0f})")

    # -- 5. the I/O bill ----------------------------------------------------
    online = stats.online.cost_seconds()
    offline = stats.offline.cost_seconds()
    print(f"online  (log phase)    : {stats.online}  -> {online * 1000:.1f} ms")
    print(f"offline (refresh phase): {stats.offline}  -> {offline * 1000:.1f} ms")
    print(f"total                  : {(online + offline) * 1000:.1f} ms "
          f"(paper disk model)")


if __name__ == "__main__":
    main()
