"""Fig. 6 -- online cost over time (no intermediate refresh).

Paper's reading: immediate refresh is orders of magnitude above both
logging schemes; candidate logging is the cheapest and flattens as the
dataset grows.
"""

from repro.experiments.figures import fig6


def test_fig6_online_cost_over_time(benchmark, scale_name, show):
    result = benchmark(fig6, scale=scale_name, seed=0)
    show(result)
    final = {name: series[-1] for name, series in result.series.items()}
    # Shape: Cand. < Full < Immediate, by orders of magnitude at the top.
    assert final["Cand."] < final["Full"] < final["Immediate"]
    assert final["Immediate"] > 100 * final["Cand."]
    # All series cumulative.
    for series in result.series.values():
        assert series == sorted(series)
