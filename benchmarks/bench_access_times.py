"""Sec. 6.1 -- per-block access-time calibration table.

Regenerates the paper's measurement table (sequential read/write, random
read, random write per 4 KiB block) on this machine's storage, next to the
paper's published IDE-disk numbers.  Absolute values differ by hardware
generation; the invariant the cost model rests on is that block I/O times
are positive and sequential access is not slower than random access.
"""

import os
import tempfile

from repro.storage.real_disk import calibrate_disk


def _calibrate():
    with tempfile.TemporaryDirectory() as tmp:
        return calibrate_disk(
            os.path.join(tmp, "calibration.bin"), file_blocks=1024, probes=256
        )


def test_access_time_calibration(benchmark):
    result = benchmark.pedantic(_calibrate, rounds=3, iterations=1)
    print()
    print("Sec. 6.1 access times (ms/block):  paper        this machine")
    print(f"  sequential read                  0.094        {result.seq_read_ms:.4f}")
    print(f"  sequential write                 0.094        {result.seq_write_ms:.4f}")
    print(f"  random read                      8.450        {result.random_read_ms:.4f}")
    print(f"  random write                     5.500        {result.random_write_ms:.4f}")
    assert result.seq_read_ms > 0
    assert result.seq_write_ms > 0
    assert result.random_read_ms > 0
    assert result.random_write_ms > 0
