"""Fig. 11 -- total cost vs. refresh period.

Paper's reading: deferred refresh beats immediate unless refreshes are
extremely frequent, and the candidate-vs-full gap widens with the period.
"""

from repro.experiments.figures import fig11


def test_fig11_total_cost_vs_refresh_period(benchmark, scale_name, show):
    result = benchmark.pedantic(
        fig11, kwargs={"scale": scale_name, "seed": 0}, rounds=3, iterations=1
    )
    show(result)
    ratios = [
        full / cand
        for full, cand in zip(result.series["Full"], result.series["Cand."])
    ]
    mid = len(ratios) // 2
    assert ratios[-1] > ratios[mid]  # gap widens with the period
    assert result.series["Cand."][-1] < result.series["Immediate"][-1] / 20
