"""Fig. 13 -- CPU cost of the refresh precomputation phases.

Paper's reading (Java timings; we time the Python implementations, so
compare orderings): Stack is the fastest method; Array beats Nomem for
small candidate logs but loses for large ones because of its sort and its
O(|C|) assignment loop; Nomem is ~flat in |C| (it always draws 2(M-1)
geometric variates).
"""

from repro.experiments.figures import fig13
from repro.experiments.scaling import SCALES, Scale

# CPU timing needs a sample big enough that the phases take milliseconds;
# lift the smoke preset to a dedicated size.
_CPU_SCALES = {
    "smoke": Scale("fig13-smoke", 20_000, 20_000, 200_000, 20_000),
    "default": SCALES["default"],
    "paper": SCALES["paper"],
}


def test_fig13_cpu_cost(benchmark, scale_name, show):
    scale = _CPU_SCALES[scale_name]
    result = benchmark.pedantic(
        fig13, kwargs={"scale": scale, "seed": 0}, rounds=1, iterations=1
    )
    show(result)
    stack = result.series["Stack"]
    array = result.series["Array"]
    nomem = result.series["Nomem"]
    for s, n in zip(stack, nomem):
        assert s < n  # Stack never loses to Nomem
    assert stack[-1] < array[-1]  # nor to Array on large logs
    # Fig. 13's crossover: Array degrades relative to Nomem as |C| grows.
    assert array[-1] / nomem[-1] > 2 * (array[0] / nomem[0])
