"""Fig. 14 -- geometric file buffer fraction vs. total cost.

Paper's reading (a paper-scale property; the bench runs the sweep at the
configured scale and additionally pins the crossovers at paper scale):
below ~3 % buffer both full and candidate refresh beat the GF; around
3-4 % the GF passes full but not candidate; above ~4-5 % the GF wins.
"""

from repro.experiments.figures import fig14


def test_fig14_buffer_sweep(benchmark, scale_name, show):
    result = benchmark.pedantic(
        fig14, kwargs={"scale": scale_name, "seed": 0}, rounds=3, iterations=1
    )
    show(result)
    gf = result.series["GF"]
    assert gf == sorted(gf, reverse=True)  # GF strictly improves with memory
    assert gf[0] > result.series["Cand."][0]  # tiny buffer: GF loses


def test_fig14_paper_scale_crossovers(benchmark, show):
    result = benchmark.pedantic(
        fig14, kwargs={"scale": "paper", "seed": 0}, rounds=1, iterations=1
    )
    show(result)
    by_fraction = {
        x: (gf, cand, full)
        for x, gf, cand, full in zip(
            result.x, result.series["GF"], result.series["Cand."],
            result.series["Full"],
        )
    }
    gf, cand, full = by_fraction[0.02]
    assert gf > cand and gf > full          # < 3%: both beat the GF
    gf, cand, full = by_fraction[0.03]
    assert cand < gf < full                 # ~3-4%: GF between the two
    gf, cand, full = by_fraction[0.05]
    assert gf < cand and gf < full          # > 4%: GF wins
