"""Fig. 8 -- online cost vs. sample size (no refresh).

Paper's reading: full-log cost is independent of the sample size;
immediate and candidate costs grow with it; the full log upper-bounds the
candidate log everywhere.
"""

from repro.experiments.figures import fig8


def test_fig8_online_cost_vs_sample_size(benchmark, scale_name, show):
    result = benchmark.pedantic(
        fig8, kwargs={"scale": scale_name, "seed": 0}, rounds=3, iterations=1
    )
    show(result)
    full = result.series["Full"]
    assert max(full) < 1.2 * min(full)  # flat in M
    assert result.series["Immediate"][-1] > 2 * result.series["Immediate"][0]
    assert result.series["Cand."][-1] > 2 * result.series["Cand."][0]
    for cand, flog in zip(result.series["Cand."], full):
        assert cand <= flog * 1.05  # full log is the upper bound
