"""Ablation: Array Refresh with vs. without the optional sort (Sec. 4.1).

The paper sorts array A so the candidate log is read sequentially; without
the sort, log reads happen in slot order, i.e. randomly.  This ablation
quantifies what the sort buys in I/O cost: at the paper's access times one
random read costs ~90 sequential block accesses, so the unsorted variant
should lose by a wide margin once the log spans multiple blocks.
"""

from repro.core.refresh.array import ArrayRefresh
from tests.core.conftest import RefreshHarness


def _refresh_cost(sort: bool, sample_size=128 * 16, candidates=2000, seed=5):
    harness = RefreshHarness(sample_size=sample_size, candidates=candidates, seed=seed)
    harness.run(ArrayRefresh(sort=sort))
    return harness.refresh_stats


def test_sort_ablation(benchmark):
    sorted_stats = benchmark.pedantic(
        _refresh_cost, args=(True,), rounds=3, iterations=1
    )
    unsorted_stats = _refresh_cost(False)
    sorted_cost = sorted_stats.cost_seconds()
    unsorted_cost = unsorted_stats.cost_seconds()
    print()
    print("Array Refresh sort ablation (M=2048, |C|=2000):")
    print(f"  sorted   {sorted_stats}  -> {sorted_cost * 1000:.2f} ms")
    print(f"  unsorted {unsorted_stats}  -> {unsorted_cost * 1000:.2f} ms")
    # The sorted variant does zero random I/O; unsorted pays one random
    # read per final candidate.
    assert sorted_stats.random_reads == 0
    assert unsorted_stats.random_reads > 500
    assert unsorted_cost > 20 * sorted_cost
