"""Micro-benchmarks of the core operations.

Throughput of the primitives every maintenance strategy is built from:
reservoir acceptance, geometric skips, the three refresh precomputations,
and a full refresh against the simulated disk.
"""

from repro.core.logs import CandidateLogSource
from repro.core.refresh.array import ArrayRefresh
from repro.core.refresh.nomem import NomemRefresh, span_of_gaps
from repro.core.refresh.stack import StackRefresh, select_final_indexes
from repro.core.reservoir import ReservoirSampler
from repro.rng.random_source import RandomSource
from tests.core.conftest import RefreshHarness


def test_reservoir_offer_throughput(benchmark):
    def run():
        rng = RandomSource(seed=1)
        sampler = ReservoirSampler(1000, rng, initial_size=100_000)
        accepted = 0
        for v in range(20_000):
            if sampler.offer(v) is not None:
                accepted += 1
        return accepted

    accepted = benchmark(run)
    assert 0 < accepted < 2000


def test_candidate_test_throughput(benchmark):
    def run():
        rng = RandomSource(seed=2)
        sampler = ReservoirSampler(1000, rng, initial_size=100_000)
        return sum(sampler.test(v) for v in range(20_000))

    accepted = benchmark(run)
    assert 0 < accepted < 2000


def test_geometric_draw_throughput(benchmark):
    def run():
        rng = RandomSource(seed=3)
        return sum(rng.geometric(0.25) for _ in range(10_000))

    total = benchmark(run)
    assert total > 0


def test_stack_precompute(benchmark):
    rng = RandomSource(seed=4)
    selected = benchmark(lambda: select_final_indexes(rng, 10_000, 15_000))
    assert len(selected) <= 10_000


def test_array_precompute(benchmark):
    rng = RandomSource(seed=5)

    def run():
        array = ArrayRefresh.assign_slots(rng, 10_000, 15_000)
        ArrayRefresh._sort_non_empty(array)
        return array

    array = benchmark(run)
    assert len(array) == 10_000


def test_nomem_precompute(benchmark):
    rng = RandomSource(seed=6)
    span = benchmark(lambda: span_of_gaps(rng, 10_000))
    assert span >= 9_999


def test_full_refresh_stack(benchmark):
    def run():
        harness = RefreshHarness(sample_size=5_000, candidates=4_000, seed=7)
        return harness.run(StackRefresh()).displaced

    displaced = benchmark(run)
    assert displaced > 0


def test_full_refresh_nomem(benchmark):
    def run():
        harness = RefreshHarness(sample_size=5_000, candidates=4_000, seed=8)
        return harness.run(NomemRefresh()).displaced

    displaced = benchmark(run)
    assert displaced > 0
