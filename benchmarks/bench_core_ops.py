"""Micro-benchmarks of the core operations.

Throughput of the primitives every maintenance strategy is built from:
reservoir acceptance, geometric skips, the three refresh precomputations,
a full refresh against the simulated disk, and -- the paper's headline
scaling claim -- the online insert path, scalar vs. skip-based batch.

The insert benchmarks record ``elements_per_sec`` in their
pytest-benchmark ``extra_info``; CI's ``bench-smoke`` job writes the JSON
report (``BENCH_core_ops.json``) and ``repro bench-compare`` gates the
batch-path numbers against the committed baseline (docs/performance.md).
"""

from repro.core.logs import CandidateLogSource
from repro.core.maintenance import SampleMaintainer
from repro.core.multi import MultiSampleManager
from repro.core.policies import ManualPolicy, PeriodicPolicy
from repro.core.refresh.array import ArrayRefresh
from repro.core.refresh.nomem import NomemRefresh, span_of_gaps
from repro.core.refresh.stack import StackRefresh, select_final_indexes
from repro.core.reservoir import ReservoirSampler
from repro.rng.random_source import RandomSource
from repro.storage.block_device import SimulatedBlockDevice
from repro.storage.bufferpool import BufferPool
from repro.storage.cost_model import CostModel
from repro.storage.files import LogFile, SampleFile
from repro.storage.records import IntRecordCodec
from repro.stream.source import uniform_batches, uniform_stream
from tests.core.conftest import RefreshHarness


def test_reservoir_offer_throughput(benchmark):
    def run():
        rng = RandomSource(seed=1)
        sampler = ReservoirSampler(1000, rng, initial_size=100_000)
        accepted = 0
        for v in range(20_000):
            if sampler.offer(v) is not None:
                accepted += 1
        return accepted

    accepted = benchmark(run)
    assert 0 < accepted < 2000


def test_candidate_test_throughput(benchmark):
    def run():
        rng = RandomSource(seed=2)
        sampler = ReservoirSampler(1000, rng, initial_size=100_000)
        return sum(sampler.test(v) for v in range(20_000))

    accepted = benchmark(run)
    assert 0 < accepted < 2000


def test_geometric_draw_throughput(benchmark):
    def run():
        rng = RandomSource(seed=3)
        return sum(rng.geometric(0.25) for _ in range(10_000))

    total = benchmark(run)
    assert total > 0


def test_stack_precompute(benchmark):
    rng = RandomSource(seed=4)
    selected = benchmark(lambda: select_final_indexes(rng, 10_000, 15_000))
    assert len(selected) <= 10_000


def test_array_precompute(benchmark):
    rng = RandomSource(seed=5)

    def run():
        array = ArrayRefresh.assign_slots(rng, 10_000, 15_000)
        ArrayRefresh._sort_non_empty(array)
        return array

    array = benchmark(run)
    assert len(array) == 10_000


def test_nomem_precompute(benchmark):
    rng = RandomSource(seed=6)
    span = benchmark(lambda: span_of_gaps(rng, 10_000))
    assert span >= 9_999


# -- online insert path: scalar vs. skip-based batch -------------------------
#
# The paper's setting: the dataset is much larger than the sample, so the
# acceptance rate M/|R| is low and skip jumps are long.  The scalar path
# pays one Python-level acceptance test per element; the batch path pays
# O(accepted) -- the gap is the whole point of PR 3.


def _insert_workload(scale) -> tuple[int, int, int]:
    """(sample_size, initial_dataset, inserts) for the insert benchmarks."""
    sample_size = min(scale.sample_size, 10_000)
    return sample_size, 50 * sample_size, max(10_000, scale.inserts // 10)


def _fresh_maintainer(sample_size: int, initial_dataset: int, seed: int):
    cost = CostModel()
    codec = IntRecordCodec()
    rng = RandomSource(seed=seed)
    sample = SampleFile(SimulatedBlockDevice(cost, "sample"), codec, sample_size)
    sample.initialize(list(range(sample_size)))
    return SampleMaintainer(
        sample,
        rng,
        strategy="candidate",
        initial_dataset_size=initial_dataset,
        log=LogFile(SimulatedBlockDevice(cost, "log"), codec),
        algorithm=StackRefresh(),
        policy=ManualPolicy(),
        cost_model=cost,
    )


def _bench_inserts(benchmark, scale, scalar: bool):
    sample_size, initial_dataset, inserts = _insert_workload(scale)
    stream = range(initial_dataset, initial_dataset + inserts)

    def setup():
        return (_fresh_maintainer(sample_size, initial_dataset, seed=11),), {}

    def run(maintainer):
        maintainer.insert_many(stream, scalar=scalar)
        return maintainer.stats.candidates_logged

    accepted = benchmark.pedantic(run, setup=setup, rounds=5, warmup_rounds=1)
    benchmark.extra_info["elements"] = inserts
    benchmark.extra_info["elements_per_sec"] = inserts / benchmark.stats.stats.mean
    assert 0 < accepted < inserts


def test_insert_scalar_throughput(benchmark, scale):
    """The O(n) per-element online path: one acceptance test per insert."""
    _bench_inserts(benchmark, scale, scalar=True)


# -- weighted-kind insert path: one draw + one key per record ----------------
#
# The A-ES weighted kind pays one uniform draw, one log and one float
# compare per arriving record (the exponential jump is deliberately traded
# away for deferred/eager bit-identity -- docs/sample_kinds.md), so its
# online path is inherently O(n) like the scalar uniform path.  Gated by
# ``repro bench-compare`` (select matches ``weighted``) so a regression in
# the kind logger's hot loop fails CI.


def _fresh_weighted_maintainer(sample_size: int, initial_dataset: int, seed: int):
    from repro.core.kinds import make_kind

    cost = CostModel()
    rng = RandomSource(seed=seed)
    kind = make_kind("weighted", sample_size)
    codec = kind.codec(16)
    rows = kind.build_initial(list(range(initial_dataset)), rng)
    sample = SampleFile(SimulatedBlockDevice(cost, "sample"), codec, sample_size)
    sample.initialize(rows)
    return SampleMaintainer(
        sample,
        rng,
        strategy="candidate",
        initial_dataset_size=kind.seen,
        log=LogFile(SimulatedBlockDevice(cost, "log"), codec),
        algorithm=ArrayRefresh(),
        policy=ManualPolicy(),
        cost_model=cost,
        kind=kind,
    )


def test_weighted_insert_throughput(benchmark, scale):
    """Weighted-kind batched inserts: draw, threshold test, bulk append."""
    sample_size, initial_dataset, inserts = _insert_workload(scale)
    # The initial A-ES build draws once per dataset element; keep the
    # dataset bench-sized so setup stays proportionate to the run.
    initial_dataset = min(initial_dataset, 10 * sample_size)
    stream = range(initial_dataset, initial_dataset + inserts)

    def setup():
        return (
            (_fresh_weighted_maintainer(sample_size, initial_dataset, seed=19),),
            {},
        )

    def run(maintainer):
        maintainer.insert_many(stream)
        return maintainer.stats.candidates_logged

    accepted = benchmark.pedantic(run, setup=setup, rounds=5, warmup_rounds=1)
    benchmark.extra_info["elements"] = inserts
    benchmark.extra_info["elements_per_sec"] = inserts / benchmark.stats.stats.mean
    assert 0 < accepted <= inserts


def test_insert_batch_throughput(benchmark, scale):
    """The O(accepted) skip-based batch path (bit-identical to scalar)."""
    _bench_inserts(benchmark, scale, scalar=False)


# -- fleet ingest: MultiSampleManager broadcast, scalar vs. batch ------------
#
# The serving catalog ingests through MultiSampleManager.insert_many, which
# delegates whole batches to each maintainer's skip-based path.  The scalar
# variant is the pre-delegation element-major loop (one Python-level insert
# per element per sample) -- the fleet-sized version of the same gap.

FLEET_SIZE = 4


def _fresh_fleet(sample_size: int, initial_dataset: int, seed: int):
    cost = CostModel()
    manager = MultiSampleManager(cost)
    codec = IntRecordCodec()
    root = RandomSource(seed=seed)
    for index in range(FLEET_SIZE):
        rng = root.spawn(f"sample-{index}")
        sample = SampleFile(
            SimulatedBlockDevice(cost, f"s{index}.sample"), codec, sample_size
        )
        sample.initialize(list(range(sample_size)))
        manager.add(
            f"s{index}",
            SampleMaintainer(
                sample,
                rng,
                strategy="candidate",
                initial_dataset_size=initial_dataset,
                log=LogFile(SimulatedBlockDevice(cost, f"s{index}.log"), codec),
                algorithm=StackRefresh(),
                policy=ManualPolicy(),
                cost_model=cost,
            ),
        )
    return manager


def _bench_fleet_ingest(benchmark, scale, scalar: bool):
    sample_size, initial_dataset, inserts = _insert_workload(scale)
    inserts = max(10_000, inserts // FLEET_SIZE)
    stream = range(initial_dataset, initial_dataset + inserts)

    def setup():
        return (_fresh_fleet(sample_size, initial_dataset, seed=13),), {}

    def run_batch(manager):
        manager.insert_many(stream)
        return sum(manager.get(n).stats.candidates_logged for n in manager.names())

    def run_scalar(manager):
        # The element-major broadcast loop insert_many used before it
        # delegated to the skip-based batch path.
        for element in stream:
            manager.insert(element)
        return sum(manager.get(n).stats.candidates_logged for n in manager.names())

    accepted = benchmark.pedantic(
        run_scalar if scalar else run_batch, setup=setup, rounds=5, warmup_rounds=1
    )
    processed = inserts * FLEET_SIZE
    benchmark.extra_info["elements"] = processed
    benchmark.extra_info["fleet_size"] = FLEET_SIZE
    benchmark.extra_info["elements_per_sec"] = processed / benchmark.stats.stats.mean
    assert 0 < accepted < processed


def test_fleet_ingest_scalar_throughput(benchmark, scale):
    """Element-major fleet broadcast: O(batch x fleet) Python-level work."""
    _bench_fleet_ingest(benchmark, scale, scalar=True)


def test_fleet_ingest_batch_throughput(benchmark, scale):
    """Per-maintainer skip-based delegation: O(accepted) per sample."""
    _bench_fleet_ingest(benchmark, scale, scalar=False)


# -- pool effectiveness: refresh traffic with and without the page cache -----
#
# PR 5's claim: an enabled BufferPool cuts device block accesses on the
# insert -> refresh cycle (log re-reads become frame hits, sample writes
# coalesce behind flush barriers) without touching the data plane.  The
# gated throughput is the pooled cycle; the bare cycle's access count is
# recorded alongside so the report shows the reduction.


def _pool_cycle(pool_capacity: int, sample_size: int, initial: int, inserts: int):
    """One insert->refresh workload; returns total device block accesses."""
    cost = CostModel()
    codec = IntRecordCodec()
    rng = RandomSource(seed=17)

    def device(name):
        dev = SimulatedBlockDevice(cost, name)
        if pool_capacity == 0:
            return dev
        return BufferPool(dev, capacity=pool_capacity, readahead=8)

    sample = SampleFile(device("sample"), codec, sample_size)
    sample.initialize(list(range(sample_size)))
    maintainer = SampleMaintainer(
        sample,
        rng,
        strategy="candidate",
        initial_dataset_size=initial,
        log=LogFile(device("log"), codec),
        algorithm=StackRefresh(),
        policy=PeriodicPolicy(max(1, inserts // 4)),
        cost_model=cost,
    )
    maintainer.insert_many(range(initial, initial + inserts))
    maintainer.refresh()
    return cost.stats.total_accesses


def test_pool_refresh_cycle_throughput(benchmark, scale):
    """Insert->refresh through an enabled pool; gated like the batch path."""
    sample_size, initial_dataset, inserts = _insert_workload(scale)
    bare_accesses = _pool_cycle(0, sample_size, initial_dataset, inserts)

    pooled_accesses = benchmark(
        lambda: _pool_cycle(64, sample_size, initial_dataset, inserts)
    )
    benchmark.extra_info["elements"] = inserts
    benchmark.extra_info["elements_per_sec"] = inserts / benchmark.stats.stats.mean
    benchmark.extra_info["device_accesses_bare"] = bare_accesses
    benchmark.extra_info["device_accesses_pooled"] = pooled_accesses
    benchmark.extra_info["access_reduction"] = 1 - pooled_accesses / bare_accesses
    # The benchmark doubles as the effectiveness check: fewer accesses, always.
    assert pooled_accesses < bare_accesses


def _replicated_cycle(
    sample_size: int, initial: int, inserts: int, lag_budget: float
):
    """The pooled insert->refresh cycle with a replication link attached.

    Mirrors ``_pool_cycle(64, ...)`` exactly, plus capture devices, a
    group commit barrier sealing into the link, and budget-clocked
    shipping to the replica -- the full primary-side replication tax.
    Returns ``(primary_accesses, link)``.
    """
    from repro.replication.link import ReplicationLink
    from repro.storage.group_commit import GroupCommitBarrier

    cost = CostModel()
    codec = IntRecordCodec()
    rng = RandomSource(seed=17)
    link = ReplicationLink(lag_budget=lag_budget)

    def device(name):
        return BufferPool(
            link.attach(SimulatedBlockDevice(cost, name), name),
            capacity=64,
            readahead=8,
        )

    sample_device = device("sample")
    log_device = device("log")
    sample = SampleFile(sample_device, codec, sample_size)
    sample.initialize(list(range(sample_size)))
    maintainer = SampleMaintainer(
        sample,
        rng,
        strategy="candidate",
        initial_dataset_size=initial,
        log=LogFile(log_device, codec),
        algorithm=StackRefresh(),
        policy=PeriodicPolicy(max(1, inserts // 4)),
        cost_model=cost,
        commit_group=GroupCommitBarrier([sample_device, log_device], link=link),
    )
    maintainer.insert_many(range(initial, initial + inserts))
    maintainer.refresh()
    # The post-refresh ship point (a manifest save's group commit in the
    # catalog): the refresh itself is flush-only, so this seal is what
    # turns the accumulated captures into a shippable batch.  Devices are
    # clean after the refresh commit, so it costs no block accesses.
    maintainer.commit_group.commit()
    link.ship_due(cost.cost_seconds())
    link.ship_all()
    return cost.stats.total_accesses, link


def test_replicated_refresh_cycle_throughput(benchmark, scale):
    """Insert->refresh->ship with replication attached; gated like pool.

    The contract under test is PR 8's: capture is free on the primary
    (bit-identical device accesses to the pooled cycle) and the whole
    seal/ship/apply pipeline costs only Python time, which this gate
    keeps bounded.
    """
    sample_size, initial_dataset, inserts = _insert_workload(scale)
    pooled_accesses = _pool_cycle(64, sample_size, initial_dataset, inserts)

    def run():
        return _replicated_cycle(
            sample_size, initial_dataset, inserts, lag_budget=0.0
        )

    replicated_accesses, link = benchmark(run)
    benchmark.extra_info["elements"] = inserts
    benchmark.extra_info["elements_per_sec"] = inserts / benchmark.stats.stats.mean
    benchmark.extra_info["batches_shipped"] = link.batches_shipped
    benchmark.extra_info["bytes_shipped"] = link.bytes_shipped
    # Capture must not charge the primary a single extra block access.
    assert replicated_accesses == pooled_accesses
    assert link.batches_shipped == link.batches_sealed > 0
    assert link.applier.applied_seq == link.batches_shipped


def test_stream_generation_batch(benchmark, scale):
    """Batched stream source: producer-side cost of one refresh period."""
    _, _, count = _insert_workload(scale)

    def run():
        rng = RandomSource(seed=12)
        total = 0
        for batch in uniform_batches(rng, 0, 1 << 30, count, batch_size=8192):
            total += len(batch)
        return total

    total = benchmark(run)
    benchmark.extra_info["elements"] = count
    benchmark.extra_info["elements_per_sec"] = count / benchmark.stats.stats.mean
    assert total == count


def test_stream_generation_scalar(benchmark, scale):
    """Scalar stream source, for the producer-side comparison floor."""
    _, _, count = _insert_workload(scale)

    def run():
        rng = RandomSource(seed=12)
        total = 0
        for _ in uniform_stream(rng, 0, 1 << 30, count):
            total += 1
        return total

    total = benchmark(run)
    benchmark.extra_info["elements"] = count
    benchmark.extra_info["elements_per_sec"] = count / benchmark.stats.stats.mean
    assert total == count


def test_full_refresh_stack(benchmark):
    def run():
        harness = RefreshHarness(sample_size=5_000, candidates=4_000, seed=7)
        return harness.run(StackRefresh()).displaced

    displaced = benchmark(run)
    assert displaced > 0


def test_full_refresh_nomem(benchmark):
    def run():
        harness = RefreshHarness(sample_size=5_000, candidates=4_000, seed=8)
        return harness.run(NomemRefresh()).displaced

    displaced = benchmark(run)
    assert displaced > 0


def test_lint_project_runtime(benchmark):
    """Whole-program lint of the real tree: the analysis-engine guard.

    The engine (symbol table, call graph, effects, CFGs) rebuilds on
    every ``repro lint`` run, so its cost is developer-facing latency
    and a CI tax on every PR.  ``elements_per_sec`` is functions
    analysed per second; ``repro bench-compare`` gates it against the
    committed baseline like the batch and pool paths, so an accidental
    quadratic blow-up in call resolution fails the build instead of
    slowly rotting the edit loop.
    """
    from repro.devtools.callgraph import analyze_project
    from repro.devtools.runner import LintRunner

    project, diagnostics = LintRunner().build_project(None)
    assert diagnostics == []
    functions_analyzed = len(analyze_project(project).functions)

    findings = benchmark(lambda: LintRunner().run())
    benchmark.extra_info["functions"] = functions_analyzed
    benchmark.extra_info["elements_per_sec"] = (
        functions_analyzed / benchmark.stats.stats.mean
    )
    # The run doubles as the cleanliness check at bench time.
    assert findings == []
    assert functions_analyzed > 500


def test_serve_trace_overhead(benchmark, tmp_path):
    """Fully instrumented serve-sim: the observability layer's price tag.

    Runs the serving simulation with every observability feature on --
    span streaming to JSONL, per-block storage spans, SLO tracking and
    time-series sampling -- so the benchmark pays the worst-case
    bookkeeping cost per event.  ``elements_per_sec`` is scheduler
    events per second; ``repro bench-compare`` gates it (the default
    select matches ``trace``) so a regression in the span or SLO hot
    path fails CI rather than quietly taxing every traced run.
    """
    from repro.obs import Instrumentation
    from repro.serve.sim import SimConfig, run_simulation

    events = 200
    config = SimConfig(
        seed=7,
        samples=2,
        events=events,
        sample_size=128,
        policy="deadline:128",
        pool_capacity=32,
        slos=("latency:0.2:0.9", "shed_rate:0.05"),
        timeseries_interval=0.5,
        trace_path=str(tmp_path / "bench-trace.jsonl"),
    )

    def run():
        return run_simulation(config, instrumentation=Instrumentation())

    report = benchmark(run)
    benchmark.extra_info["elements"] = events
    benchmark.extra_info["elements_per_sec"] = events / benchmark.stats.stats.mean
    assert report.events == events
    assert report.slo["objectives"]


def test_serve_event_loop_throughput(benchmark):
    """Uninstrumented scheduler event loop: the fleet's per-shard hot path.

    The fleet router runs one DeterministicScheduler per shard with no
    instrumentation attached, so the uninstrumented event loop -- heap
    pop, backlog bisect, admission, dispatch -- is multiplied by the
    shard count in every full-engine fleet run.  The config exercises
    the defer path too (re-queues stress the sorted backlog mirror).
    ``elements_per_sec`` is scheduler events per second;
    ``repro bench-compare`` gates it (select matches ``event_loop``).
    """
    from repro.serve.sim import SimConfig, run_simulation

    events = 800
    config = SimConfig(
        seed=4,
        samples=6,
        events=events,
        max_queue_depth=6,
        overload_action="defer",
    )

    report = benchmark(lambda: run_simulation(config))
    benchmark.extra_info["elements"] = events
    benchmark.extra_info["elements_per_sec"] = events / benchmark.stats.stats.mean
    assert report.queries_answered > 0


def test_fleet_fanout_throughput(benchmark):
    """Vectorised fleet model: ops per second at fleet scale.

    Runs the model engine at 8 shards / 2k samples with ~220k simulated
    ops (base events plus fan-out sub-queries, hedging on) -- a scaled-
    down version of the CI fleet-smoke sweep.  ``elements_per_sec`` is
    simulated ops per second; ``repro bench-compare`` gates it (select
    matches ``fleet``) so a regression in the placement, quota or merge
    vector paths fails CI before it turns the smoke step into a crawl.
    """
    from repro.fleet.sim import FleetConfig, run_fleet_simulation

    config = FleetConfig(
        seed=3,
        shards=8,
        samples=2_000,
        events=200_000,
        fanout_queries=5_000,
        mean_gap_seconds=0.002,
        hedge_multiplier=2.0,
        engine="model",
    )

    report = benchmark(lambda: run_fleet_simulation(config))
    ops = report.fleet["ops"]
    benchmark.extra_info["elements"] = ops
    benchmark.extra_info["elements_per_sec"] = ops / benchmark.stats.stats.mean
    assert report.fanout["answered"] == 5_000
