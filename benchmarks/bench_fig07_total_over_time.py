"""Fig. 7 -- total cost over time (refresh every base period).

Paper's reading: deferred refresh is significantly faster than immediate;
candidate maintenance stays below full because its log is cheaper to write.
"""

from repro.experiments.figures import fig7


def test_fig7_total_cost_over_time(benchmark, scale_name, show):
    result = benchmark(fig7, scale=scale_name, seed=0)
    show(result)
    final = {name: series[-1] for name, series in result.series.items()}
    assert final["Cand."] <= final["Full"] < final["Immediate"]
    assert final["Immediate"] > 20 * final["Full"]
    for series in result.series.values():
        assert series == sorted(series)
