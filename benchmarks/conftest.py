"""Benchmark configuration.

Each ``bench_figNN`` module regenerates one figure of the paper, times the
regeneration with pytest-benchmark, prints the series table (the repo's
equivalent of the paper's plot), and asserts the figure's shape claims.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke`` (default; seconds),
``default`` (laptop, ~a minute) or ``paper`` (the paper's 1M/100M setting).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.report import format_series_table
from repro.experiments.scaling import SCALES


def pytest_report_header(config):
    return f"repro bench scale: {_scale_name()}"


def _scale_name() -> str:
    name = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    if name not in SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE={name!r} unknown; choose from {sorted(SCALES)}"
        )
    return name


@pytest.fixture(scope="session")
def scale_name() -> str:
    return _scale_name()


@pytest.fixture(scope="session")
def scale():
    return SCALES[_scale_name()]


@pytest.fixture
def show():
    """Print a regenerated figure table beneath the benchmark output."""

    def _show(result):
        print()
        print(format_series_table(result))

    return _show
