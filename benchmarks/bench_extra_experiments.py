"""Extension experiments: accuracy stability and recency bias.

Beyond the paper's figures (see DESIGN.md "Ablations"): estimator error
must not drift as refreshes accumulate, and the footnote-3 biased
acceptance must produce its theoretical recency profile.
"""

from repro.experiments.extra import extra_accuracy, extra_bias


def test_extra_accuracy_stability(benchmark, scale_name, show):
    result = benchmark.pedantic(
        extra_accuracy, kwargs={"scale": scale_name, "seed": 0},
        rounds=1, iterations=1,
    )
    show(result)
    measured = result.series["measured"]
    theory = result.series["theory (uniform sampling)"][0]
    overall = sum(measured) / len(measured)
    assert theory / 2.5 < overall < theory * 2.5
    quarter = max(1, len(measured) // 4)
    early = sum(measured[:quarter]) / quarter
    late = sum(measured[-quarter:]) / quarter
    assert late < 3 * early  # no drift


def test_extra_bias_profile(benchmark, scale_name, show):
    result = benchmark.pedantic(
        extra_bias, kwargs={"scale": scale_name, "seed": 0},
        rounds=1, iterations=1,
    )
    show(result)
    for measured, theory in zip(
        result.series["measured"], result.series["theory M/p"]
    ):
        assert measured == theory or abs(measured - theory) / theory < 0.25
