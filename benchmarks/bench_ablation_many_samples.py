"""Ablation: refresh memory across a fleet of maintained samples.

Sec. 1/2 of the paper argue that per-sample memory is what kills
in-memory designs at fleet scale ("each maintained sample requires its
own buffer, the GF does not scale well with the number of samples").
This ablation maintains fleets of candidate-logged samples and compares
the aggregate refresh-memory bill of Array vs. Stack vs. Nomem Refresh.
"""

from repro.core.maintenance import SampleMaintainer
from repro.core.multi import MultiSampleManager
from repro.core.refresh.array import ArrayRefresh
from repro.core.refresh.nomem import NomemRefresh
from repro.core.refresh.stack import StackRefresh
from repro.core.reservoir import build_reservoir
from repro.rng.random_source import RandomSource
from repro.storage.block_device import SimulatedBlockDevice
from repro.storage.files import LogFile, SampleFile
from repro.storage.records import IntRecordCodec

SAMPLE_SIZE = 2_000
FLEETS = (1, 4, 16)


def build_fleet(algorithm_factory, count, seed=3):
    manager = MultiSampleManager()
    root = RandomSource(seed=seed)
    for idx in range(count):
        rng = root.spawn(f"s{idx}")
        codec = IntRecordCodec()
        sample = SampleFile(
            SimulatedBlockDevice(manager.cost_model, f"sample-{idx}"),
            codec, SAMPLE_SIZE,
        )
        initial, seen = build_reservoir(range(SAMPLE_SIZE * 2), SAMPLE_SIZE, rng)
        sample.initialize(initial)
        manager.add(
            f"s{idx}",
            SampleMaintainer(
                sample, rng, strategy="candidate", initial_dataset_size=seen,
                log=LogFile(
                    SimulatedBlockDevice(manager.cost_model, f"log-{idx}"), codec
                ),
                algorithm=algorithm_factory(), cost_model=manager.cost_model,
            ),
        )
    return manager


def run_fleet(algorithm_factory, count):
    manager = build_fleet(algorithm_factory, count)
    manager.insert_many(range(10_000, 14_000))
    return manager.refresh_all().peak_refresh_memory_bytes


def test_fleet_memory_scaling(benchmark):
    results = {}
    for name, factory in (
        ("array", ArrayRefresh), ("stack", StackRefresh), ("nomem", NomemRefresh)
    ):
        results[name] = [run_fleet(factory, count) for count in FLEETS]
    benchmark.pedantic(run_fleet, args=(NomemRefresh, 4), rounds=1, iterations=1)

    print()
    print(f"aggregate refresh memory (bytes), M={SAMPLE_SIZE} per sample:")
    print(f"  {'fleet size':>10} | {'array':>9} | {'stack':>9} | {'nomem':>9}")
    for idx, count in enumerate(FLEETS):
        print(f"  {count:>10} | {results['array'][idx]:>9} "
              f"| {results['stack'][idx]:>9} | {results['nomem'][idx]:>9}")

    # Array: exactly 4*M bytes per sample, linear in the fleet.
    assert results["array"] == [4 * SAMPLE_SIZE * count for count in FLEETS]
    # Stack: below Array (Psi < M), still linear-ish.
    for stack_v, array_v in zip(results["stack"], results["array"]):
        assert stack_v < array_v
    # Nomem: a constant PRNG state per sample -- independent of M, and the
    # cheapest once samples are non-trivial.
    assert results["nomem"][-1] < results["array"][-1]
    per_sample = results["nomem"][0]
    assert results["nomem"] == [per_sample * count for count in FLEETS]
