"""Ablation: sensitivity of the cost model to the block size.

The paper fixes 4 KiB blocks with 128 32-byte elements.  Larger blocks
pack more elements, so fewer block accesses move the same data -- but a
refresh touches a *larger fraction* of blocks (any block with >= 1
displaced element is written).  This ablation sweeps elements-per-block
and shows the refresh cost is non-monotone in block size only through the
per-block time; with a fixed per-block time the block count falls.
"""

import numpy as np

from repro.experiments.engine import (
    expected_candidate_log_blocks_read,
    expected_sample_blocks_written,
)
from repro.storage.cost_model import DiskParameters


def _sweep():
    m, c = 100_000, 20_000
    rows = []
    for block_size in (1024, 4096, 16384, 65536):
        disk = DiskParameters(block_size=block_size, element_size=32)
        writes = float(
            expected_sample_blocks_written(m, np.array([c]), disk)[0]
        )
        reads = float(
            expected_candidate_log_blocks_read(m, np.array([c]), disk)[0]
        )
        fraction = writes / disk.blocks_for_elements(m)
        rows.append((block_size, disk.elements_per_block, reads, writes, fraction))
    return rows


def test_block_size_ablation(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=3, iterations=1)
    print()
    print("block size | elems/block | E[log blocks read] | E[sample blocks written] | touched fraction")
    for block_size, epb, reads, writes, fraction in rows:
        print(
            f"  {block_size:>8} | {epb:>11} | {reads:>18.1f} | {writes:>24.1f} "
            f"| {fraction:>8.3f}"
        )
    # Bigger blocks -> fewer block accesses ...
    writes = [row[3] for row in rows]
    assert writes == sorted(writes, reverse=True)
    # ... but a larger fraction of the sample file gets touched.
    fractions = [row[4] for row in rows]
    assert fractions == sorted(fractions)
