"""Fig. 10 -- online cost vs. refresh period.

Paper's reading: immediate cost ignores the period; logging costs drop as
refreshes (and their log-rewind seeks) become rarer; candidate logging is
always at or below full logging.
"""

from repro.experiments.figures import fig10


def test_fig10_online_cost_vs_refresh_period(benchmark, scale_name, show):
    result = benchmark.pedantic(
        fig10, kwargs={"scale": scale_name, "seed": 0}, rounds=3, iterations=1
    )
    show(result)
    immediate = result.series["Immediate"]
    assert max(immediate) < 1.05 * min(immediate)  # flat
    for name in ("Full", "Cand."):
        series = result.series[name]
        assert series[-1] < series[0]  # longer period, cheaper online
    for cand, full in zip(result.series["Cand."], result.series["Full"]):
        assert cand <= full * 1.05
