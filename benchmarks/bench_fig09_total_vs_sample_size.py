"""Fig. 9 -- total cost vs. sample size (refresh every base period).

Paper's reading: total cost grows with the sample size ("the sample size
has only a linear effect on the refresh costs"); deferred refresh keeps
beating immediate at every size.
"""

from repro.experiments.figures import fig9


def test_fig9_total_cost_vs_sample_size(benchmark, scale_name, show):
    result = benchmark.pedantic(
        fig9, kwargs={"scale": scale_name, "seed": 0}, rounds=3, iterations=1
    )
    show(result)
    for name in ("Full", "Cand."):
        for deferred, immediate in zip(
            result.series[name], result.series["Immediate"]
        ):
            assert deferred < immediate
    # Roughly linear growth: the 10x sample costs within ~[2x, 30x] of 1x.
    cand = result.series["Cand."]
    assert 2 * cand[0] < cand[-1] < 30 * cand[0]
