"""Fig. 12 -- memory consumption of the refresh implementations.

Paper's reading: Array is flat at 4M bytes; Stack grows with the final
candidates; Nomem holds only PRNG state; the GF's buffer must store the
deferred candidates as full elements.
"""

import pytest

from repro.experiments.figures import fig12
from repro.experiments.scaling import SCALES


def test_fig12_memory_consumption(benchmark, scale_name, show):
    result = benchmark(fig12, scale=scale_name, seed=0)
    show(result)
    m = SCALES[scale_name].sample_size
    assert all(
        v == pytest.approx(4 * m / 1e6) for v in result.series["Array"]
    )
    stack = result.series["Stack"]
    assert stack == sorted(stack)
    assert all(v < 0.01 for v in result.series["Nomem"])
    for gf, stack_v in zip(result.series["GF"], stack):
        assert gf == pytest.approx(stack_v * 8)  # 32-byte elements vs 4-byte indexes
