"""Ablation: Vitter Algorithm X vs. Algorithm Z skip generation.

Candidate logging's online CPU cost is dominated by skip generation.
Algorithm X is exact but O(skip) per draw; Algorithm Z is O(1) amortised
once the dataset dwarfs the sample.  This ablation times both at a
dataset-to-sample ratio where skips are long (t = 200 * n).
"""

from repro.rng.random_source import RandomSource


def _draw_skips(method: str, n=50, t=10_000, draws=3000):
    rng = RandomSource(seed=9)
    total = 0
    for _ in range(draws):
        total += rng.reservoir_skip(n, t, method=method)
    return total


def test_skip_sampler_ablation(benchmark):
    import time

    benchmark.pedantic(
        _draw_skips, args=("z",), rounds=3, iterations=1
    )
    start = time.perf_counter()
    _draw_skips("z")
    z_time = time.perf_counter() - start
    start = time.perf_counter()
    _draw_skips("x")
    x_time = time.perf_counter() - start
    print()
    print(f"3000 skips at t=200n: Algorithm Z {z_time * 1000:.1f} ms, "
          f"Algorithm X {x_time * 1000:.1f} ms "
          f"(X/Z ratio {x_time / z_time:.1f}x)")
    # X walks every skipped element; Z must win clearly in this regime.
    assert z_time < x_time


def test_both_algorithms_same_mean(benchmark):
    z_total = benchmark.pedantic(
        _draw_skips, args=("z",), kwargs={"draws": 4000}, rounds=1, iterations=1
    )
    x_total = _draw_skips("x", draws=4000)
    z_mean = z_total / 4000
    x_mean = x_total / 4000
    print()
    print(f"mean skip: Z {z_mean:.1f}, X {x_mean:.1f}")
    assert abs(z_mean - x_mean) / x_mean < 0.1
